#include "pipetune/ft/fault_injector.hpp"

#include <string>

namespace pipetune::ft {

FaultInjector::FaultInjector(FaultInjectorConfig config)
    : config_(config), rng_(config.seed) {
    if (config_.obs != nullptr) {
        // Register eagerly so the series appear in --metrics-out even when
        // the schedule injects nothing.
        obs_failures_ = &config_.obs->metrics().counter(
            "pipetune_ft_injected_epoch_failures_total", {},
            "Epoch failures injected by ft::FaultInjector");
        obs_crashes_ = &config_.obs->metrics().counter(
            "pipetune_ft_injected_crashes_total", {},
            "Simulated crashes injected by ft::FaultInjector");
        obs_stalls_ = &config_.obs->metrics().counter(
            "pipetune_ft_injected_stalls_total", {},
            "Slow-node stalls injected by ft::FaultInjector");
    }
}

void FaultInjector::before_epoch(const workload::Workload& workload,
                                 const workload::HyperParams& /*hyper*/, std::size_t epoch,
                                 const workload::SystemParams& /*system*/) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++epochs_seen_;
    if (config_.crash_after_epochs != 0 && epochs_seen_ >= config_.crash_after_epochs) {
        ++crashes_;
        if (obs_crashes_ != nullptr) obs_crashes_->inc();
        throw SimulatedCrash("injected crash at observed epoch " +
                             std::to_string(epochs_seen_) + " (" + workload.name + " epoch " +
                             std::to_string(epoch) + ")");
    }
    if (config_.epoch_failure_rate > 0.0 && rng_.bernoulli(config_.epoch_failure_rate)) {
        ++epoch_failures_;
        if (obs_failures_ != nullptr) obs_failures_->inc();
        throw InjectedEpochFailure("injected epoch failure (" + workload.name + " epoch " +
                                   std::to_string(epoch) + ")");
    }
}

void FaultInjector::after_epoch(const workload::Workload& /*workload*/, std::size_t /*epoch*/,
                                workload::EpochResult& result) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.slow_node_rate > 0.0 && rng_.bernoulli(config_.slow_node_rate)) {
        ++stalls_;
        if (obs_stalls_ != nullptr) obs_stalls_->inc();
        result.duration_s *= config_.slow_node_factor;
    }
}

std::uint64_t FaultInjector::epochs_seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epochs_seen_;
}
std::uint64_t FaultInjector::injected_epoch_failures() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_failures_;
}
std::uint64_t FaultInjector::injected_crashes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return crashes_;
}
std::uint64_t FaultInjector::injected_stalls() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stalls_;
}

}  // namespace pipetune::ft
