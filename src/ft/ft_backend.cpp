#include "pipetune/ft/ft_backend.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "pipetune/util/logging.hpp"

namespace pipetune::ft {

using workload::EpochResult;
using workload::HyperParams;
using workload::SystemParams;
using workload::TrialSession;
using workload::Workload;

// ---------------------------------------------------------------------------
// FaultTolerantBackend

class FaultTolerantSession final : public TrialSession {
public:
    FaultTolerantSession(std::unique_ptr<TrialSession> inner, FaultTolerantBackend& owner,
                         std::uint64_t jitter_seed)
        : inner_(std::move(inner)), owner_(owner), rng_(jitter_seed) {}

    EpochResult run_epoch(const SystemParams& system) override {
        const RetryPolicy& policy = owner_.config_.retry;
        std::size_t failures = 0;
        double backoff_charge_s = 0.0;
        for (;;) {
            try {
                EpochResult result = inner_->run_epoch(system);
                if (failures > 0) {
                    owner_.recoveries_.fetch_add(1);
                    if (owner_.obs_recoveries_ != nullptr) owner_.obs_recoveries_->inc();
                }
                result.duration_s += backoff_charge_s;
                return result;
            } catch (const TransientFailure& failure) {
                ++failures;
                // The deadline is measured in the same (virtual or wall)
                // seconds the backoff is charged in.
                if (!policy.should_retry(failures, backoff_charge_s)) {
                    owner_.gave_up_.fetch_add(1);
                    if (owner_.obs_gave_up_ != nullptr) owner_.obs_gave_up_->inc();
                    PT_LOG_WARN("ft")
                        .field("workload", inner_->workload().name)
                        .field("failures", failures)
                        << "epoch retry budget exhausted: " << failure.what();
                    throw;
                }
                owner_.retries_.fetch_add(1);
                if (owner_.obs_retries_ != nullptr) owner_.obs_retries_->inc();
                const double backoff_s = policy.backoff_s(failures, rng_);
                if (owner_.config_.charge_backoff_to_duration) {
                    backoff_charge_s += backoff_s;
                } else {
                    std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
                    backoff_charge_s += backoff_s;
                }
            }
            // SimulatedCrash and anything else non-transient propagates.
        }
    }

    std::size_t epochs_done() const override { return inner_->epochs_done(); }
    const Workload& workload() const override { return inner_->workload(); }
    const HyperParams& hyperparams() const override { return inner_->hyperparams(); }

private:
    std::unique_ptr<TrialSession> inner_;
    FaultTolerantBackend& owner_;
    util::Rng rng_;
};

FaultTolerantBackend::FaultTolerantBackend(workload::Backend& inner,
                                           FaultTolerantBackendConfig config)
    : inner_(inner), config_(config) {
    if (config_.obs != nullptr) {
        obs_retries_ = &config_.obs->metrics().counter(
            "pipetune_ft_retries_total", {}, "Transient epoch failures caught and retried");
        obs_recoveries_ = &config_.obs->metrics().counter(
            "pipetune_ft_recoveries_total", {}, "Epochs that succeeded after >=1 retry");
        obs_gave_up_ = &config_.obs->metrics().counter(
            "pipetune_ft_gave_up_total", {}, "Epochs whose retry budget was exhausted");
    }
}

std::unique_ptr<TrialSession> FaultTolerantBackend::start_trial(const Workload& workload,
                                                                const HyperParams& hyper) {
    const std::uint64_t jitter_seed =
        config_.seed ^ (0x9e3779b97f4a7c15ULL * (session_seq_.fetch_add(1) + 1));
    return std::make_unique<FaultTolerantSession>(inner_.start_trial(workload, hyper), *this,
                                                  jitter_seed);
}

// ---------------------------------------------------------------------------
// ReseedingBackend

ReseedingBackend::ReseedingBackend(Factory factory, std::uint64_t initial_seed)
    : factory_(std::move(factory)) {
    begin_job(initial_seed);
}

std::uint64_t ReseedingBackend::job_seed(std::uint64_t base_seed, std::uint64_t job_id) {
    std::uint64_t state = base_seed ^ (job_id + 0x9e3779b97f4a7c15ULL);
    return util::splitmix64(state);
}

void ReseedingBackend::begin_job(std::uint64_t seed) {
    inner_ = factory_(seed);
    current_seed_ = seed;
}

std::unique_ptr<TrialSession> ReseedingBackend::start_trial(const Workload& workload,
                                                            const HyperParams& hyper) {
    return inner_->start_trial(workload, hyper);
}

// ---------------------------------------------------------------------------
// ResumableBackend

class ResumableSession final : public TrialSession {
public:
    ResumableSession(ResumableBackend& owner, Workload workload, HyperParams hyper,
                     TrialCheckpoint checkpoint)
        : owner_(owner),
          workload_(std::move(workload)),
          hyper_(std::move(hyper)),
          checkpoint_(std::move(checkpoint)),
          replay_limit_(checkpoint_.epochs.size()) {
        for (const EpochResult& recorded : checkpoint_.epochs)
            if (best_metric_ < 0.0 || recorded.duration_s < best_metric_) {
                best_metric_ = recorded.duration_s;
                checkpoint_.best_system = recorded.system;
            }
    }

    EpochResult run_epoch(const SystemParams& system) override {
        // Phase 1 — replay: hand back recorded results without touching the
        // substrate. The inner session does not exist yet. Bounded by the
        // SNAPSHOT length, not checkpoint_.epochs.size(): live epochs append
        // to that same vector, and re-reading them here would hand every
        // epoch back twice.
        if (replay_cursor_ < replay_limit_) {
            EpochResult result = checkpoint_.epochs[replay_cursor_];
            ++replay_cursor_;
            owner_.replays_.fetch_add(1);
            return result;
        }
        // Phase 2 — live: on the first live epoch, create the inner session
        // and catch it up by re-running the recorded prefix under the
        // recorded system params (deterministic substrates land in the exact
        // state an uninterrupted run would be in; see DESIGN.md §10 for why
        // this recompute is the honest option without weight serialization).
        if (inner_ == nullptr) {
            inner_ = owner_.inner_.start_trial(workload_, hyper_);
            for (const EpochResult& recorded : checkpoint_.epochs)
                (void)inner_->run_epoch(recorded.system);
        }
        EpochResult result = inner_->run_epoch(system);
        checkpoint_.epochs.push_back(result);
        checkpoint_.probe_cursor = checkpoint_.epochs.size();
        if (best_metric_ < 0.0 || result.duration_s < best_metric_) {
            best_metric_ = result.duration_s;
            checkpoint_.best_system = system;
        }
        auto saved = owner_.store_.save(checkpoint_);
        if (!saved)
            PT_LOG_WARN("ft").field("trial", checkpoint_.trial_id)
                << "checkpoint save failed: " << saved.error();
        else
            owner_.saves_.fetch_add(1);
        return result;
    }

    std::size_t epochs_done() const override {
        return inner_ != nullptr ? checkpoint_.epochs.size() : replay_cursor_;
    }
    const Workload& workload() const override { return workload_; }
    const HyperParams& hyperparams() const override { return hyper_; }

private:
    ResumableBackend& owner_;
    Workload workload_;
    HyperParams hyper_;
    TrialCheckpoint checkpoint_;
    std::size_t replay_limit_ = 0;  ///< snapshot epochs at construction
    std::size_t replay_cursor_ = 0;
    double best_metric_ = -1.0;
    std::unique_ptr<TrialSession> inner_;
};

ResumableBackend::ResumableBackend(workload::Backend& inner, CheckpointStore& store,
                                   std::uint64_t job_id)
    : inner_(inner), store_(store), job_id_(job_id) {}

void ResumableBackend::begin_job(std::uint64_t job_id) {
    job_id_ = job_id;
    next_trial_id_ = 0;
}

std::unique_ptr<TrialSession> ResumableBackend::start_trial(const Workload& workload,
                                                            const HyperParams& hyper) {
    const std::uint64_t trial_id = next_trial_id_++;
    TrialCheckpoint checkpoint;
    if (auto existing = store_.load(job_id_, trial_id)) checkpoint = std::move(*existing);
    checkpoint.job_id = job_id_;
    checkpoint.trial_id = trial_id;
    return std::make_unique<ResumableSession>(*this, workload, hyper, std::move(checkpoint));
}

}  // namespace pipetune::ft
