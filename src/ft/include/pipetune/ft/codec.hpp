#pragma once
// JSON codecs for the workload types the fault-tolerance layer persists
// (journal payloads, trial checkpoints). Kept in one place so the journal
// writer, the recovery reader and the checkpoint store cannot drift apart on
// field names.

#include "pipetune/util/json.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::ft {

util::Json system_to_json(const workload::SystemParams& system);
workload::SystemParams system_from_json(const util::Json& json);

/// Full EpochResult round-trip, counters included — checkpointed epochs must
/// replay bit-identically (doubles serialize with %.17g, see util/json.cpp).
util::Json epoch_result_to_json(const workload::EpochResult& result);
workload::EpochResult epoch_result_from_json(const util::Json& json);

}  // namespace pipetune::ft
