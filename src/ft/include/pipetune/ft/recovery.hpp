#pragma once
// ft::Recovery — turn a (possibly truncated) journal into a consistent resume
// plan (DESIGN.md §10). The invariant is job-granular atomicity:
//
//   - a job with a job_completed record contributes its ground-truth
//     mutations (gt_record) to the recovered state;
//   - a job with a job_failed record is terminal and is not re-run;
//   - a job with neither (it was queued or mid-flight at the crash) is a
//     pending job: its partial gt_record/epoch records are DROPPED and the
//     job re-runs deterministically from scratch on resume.
//
// Dropping the partial mutations is what makes kill-and-resume equivalent to
// an uninterrupted run: a deterministic re-run regenerates exactly the
// observations the crash threw away, without double-recording any of them.

#include <cstdint>
#include <string>
#include <vector>

#include "pipetune/ft/journal.hpp"
#include "pipetune/util/result.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::ft {

/// One ground-truth record() call journaled by a completed job.
struct RecoveredGtMutation {
    std::uint64_t job_id = 0;
    std::vector<double> features;
    workload::SystemParams best_system;
    double metric = 0.0;
};

/// One job's journaled lifecycle.
struct RecoveredJob {
    std::uint64_t job_id = 0;
    std::string label;
    std::string workload;  ///< workload name (resolvable via find_workload)
    util::Json submit;     ///< full job_submitted payload (config, seed, ...)
    bool completed = false;
    bool failed = false;
    std::string error;              ///< failure reason when failed
    std::size_t epochs_logged = 0;  ///< epoch_completed records seen
    std::size_t trials_finished = 0;
};

struct RecoveryPlan {
    std::vector<RecoveredJob> jobs;  ///< in submission (journal) order
    /// Ground-truth state to seed a resumed service with: mutations of
    /// completed jobs only, in journal order.
    std::vector<RecoveredGtMutation> ground_truth;
    std::size_t records_read = 0;
    bool truncated_tail = false;
    std::size_t lines_dropped = 0;

    /// Jobs that must re-run (no terminal record), in submission order.
    std::vector<RecoveredJob> pending_jobs() const;
    std::size_t completed_count() const;
    std::size_t failed_count() const;
};

class Recovery {
public:
    /// Read + fold the journal at `journal_path`. Fails exactly when
    /// Journal::read does (missing/unreadable file, or a non-empty file with
    /// no valid record); an empty journal yields an empty plan.
    static util::Result<RecoveryPlan> analyze(const std::string& journal_path);
};

}  // namespace pipetune::ft
