#pragma once
// Backend decorators of the fault-tolerance layer. All three wrap any
// workload::Backend (sim or real) behind the same interface, so they compose
// with each other and slot under every tuner unchanged:
//
//   FaultTolerantBackend — epoch-level retry: catches ft::TransientFailure
//       from run_epoch, retries per RetryPolicy, charges the backoff into the
//       epoch's duration (virtual time) or sleeps it (wall time). A
//       SimulatedCrash is NOT transient and always propagates.
//   ReseedingBackend — rebuilds its inner backend from a factory per job
//       (begin_job(seed)), giving each job an id-derived trial-seed stream.
//       This is what makes a resumed run bit-equal to an uninterrupted one:
//       without it, jobs draw trial seeds from one shared cursor and a
//       skipped (already-completed) job would shift every later job's draws.
//   ResumableBackend — trial checkpoint/resume over a CheckpointStore: each
//       session snapshots its completed epochs after every epoch; a restarted
//       process replays the snapshot (recorded results, no recompute) and
//       lazily catches the inner session up before the first live epoch.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "pipetune/ft/checkpoint.hpp"
#include "pipetune/ft/errors.hpp"
#include "pipetune/ft/retry_policy.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/util/rng.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::ft {

struct FaultTolerantBackendConfig {
    RetryPolicy retry{};
    /// true (default): add each backoff to the retried epoch's duration_s —
    /// the virtual-time convention every bench uses. false: actually sleep.
    bool charge_backoff_to_duration = true;
    std::uint64_t seed = 7;  ///< jitter stream
    /// Telemetry (pipetune_ft_retries/recoveries/gave_up_total). Not owned.
    obs::ObsContext* obs = nullptr;
};

class FaultTolerantBackend final : public workload::Backend {
public:
    FaultTolerantBackend(workload::Backend& inner, FaultTolerantBackendConfig config = {});

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override;
    std::string name() const override { return "ft(" + inner_.name() + ")"; }

    /// TransientFailures caught and retried.
    std::uint64_t retries_total() const { return retries_.load(); }
    /// Epochs that succeeded after at least one retry.
    std::uint64_t recoveries_total() const { return recoveries_.load(); }
    /// Epochs whose retry budget was exhausted (failure rethrown).
    std::uint64_t gave_up_total() const { return gave_up_.load(); }

private:
    friend class FaultTolerantSession;

    workload::Backend& inner_;
    FaultTolerantBackendConfig config_;
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> recoveries_{0};
    std::atomic<std::uint64_t> gave_up_{0};
    std::atomic<std::uint64_t> session_seq_{0};
    obs::Counter* obs_retries_ = nullptr;
    obs::Counter* obs_recoveries_ = nullptr;
    obs::Counter* obs_gave_up_ = nullptr;
};

class ReseedingBackend final : public workload::Backend {
public:
    /// The factory builds a fresh inner backend for a given seed; begin_job
    /// tears the previous one down and installs the new one. Trials started
    /// before a begin_job stay valid only as long as their backend — callers
    /// (serial services, the CLI drivers) begin a job, run it to completion,
    /// then begin the next.
    using Factory = std::function<std::unique_ptr<workload::Backend>(std::uint64_t seed)>;

    explicit ReseedingBackend(Factory factory, std::uint64_t initial_seed = 1);

    /// Deterministic per-job seed derivation (splitmix of base ^ job id) —
    /// one definition so the reference run and the resumed run agree.
    static std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t job_id);

    void begin_job(std::uint64_t seed);
    std::uint64_t current_seed() const { return current_seed_; }

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override;
    std::string name() const override { return "reseeding(" + inner_->name() + ")"; }

private:
    Factory factory_;
    std::unique_ptr<workload::Backend> inner_;
    std::uint64_t current_seed_ = 0;
};

class ResumableBackend final : public workload::Backend {
public:
    /// Sessions are keyed (job_id, trial_id) with trial ids assigned in
    /// start_trial order — deterministic for a serial tuner, so the resumed
    /// process hands the same trial the same snapshot. Call begin_job when
    /// the owning job changes.
    ResumableBackend(workload::Backend& inner, CheckpointStore& store,
                     std::uint64_t job_id = 0);

    void begin_job(std::uint64_t job_id);
    std::uint64_t checkpoints_saved() const { return saves_.load(); }
    std::uint64_t epochs_replayed() const { return replays_.load(); }

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override;
    std::string name() const override { return "resumable(" + inner_.name() + ")"; }

private:
    friend class ResumableSession;

    workload::Backend& inner_;
    CheckpointStore& store_;
    std::uint64_t job_id_ = 0;
    std::uint64_t next_trial_id_ = 0;
    std::atomic<std::uint64_t> saves_{0};
    std::atomic<std::uint64_t> replays_{0};
};

}  // namespace pipetune::ft
