#pragma once
// Failure taxonomy of the fault-tolerance layer (DESIGN.md §10). The split
// mirrors what retry logic needs to know and nothing more:
//
//   TransientFailure      — "try again and it may work": injected epoch
//                           faults, flaky I/O. FaultTolerantBackend and the
//                           scheduler's retry path catch exactly this type.
//   InjectedEpochFailure  — the FaultInjector's epoch-level fault (transient).
//   SimulatedCrash        — a process-death stand-in. Deliberately NOT a
//                           TransientFailure: nothing in-process may swallow
//                           it; it unwinds to the test/CLI driver, which then
//                           exercises the journal-recovery path.

#include <stdexcept>
#include <string>

namespace pipetune::ft {

/// Base class for failures that are worth retrying.
class TransientFailure : public std::runtime_error {
public:
    explicit TransientFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by FaultInjector::before_epoch: the epoch failed before any session
/// state advanced, so re-running the same epoch is exact.
class InjectedEpochFailure : public TransientFailure {
public:
    explicit InjectedEpochFailure(const std::string& what) : TransientFailure(what) {}
};

/// Simulated process crash (kill -9 stand-in). Retry layers must let this
/// propagate; recovery happens out-of-process via ft::Recovery.
class SimulatedCrash : public std::runtime_error {
public:
    explicit SimulatedCrash(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace pipetune::ft
