#pragma once
// Write-ahead journal (DESIGN.md §10): the durable record of what a tuning
// service has promised and observed. Every record is one JSON line
//
//   {"seq":12,"type":"epoch_completed","crc":"9f3a...","payload":{...}}
//
// appended with util::append_file_durable (write + fsync), so once append()
// returns success the record survives a crash at any later instant. seq is a
// strictly increasing sequence number; crc is an FNV-1a checksum of
// type+payload, so a torn or bit-rotted line is detected on read.
//
// Reading tolerates exactly the failure the format is designed for: a crash
// mid-append leaves a partial (or checksum-failing) last line, which read()
// drops while keeping the valid prefix. Corruption that is *followed* by more
// valid records is still treated as the end of the usable prefix — a journal
// is only ever appended to, so anything after a bad record has an unknown
// causal history and ft::Recovery refuses to reason about it.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "pipetune/util/json.hpp"
#include "pipetune/util/result.hpp"

namespace pipetune::ft {

/// Record type vocabulary. Payload schemas are documented in DESIGN.md §10;
/// ft::Recovery is the one consumer.
namespace record_type {
inline constexpr const char* kJobSubmitted = "job_submitted";
inline constexpr const char* kJobCompleted = "job_completed";
inline constexpr const char* kJobFailed = "job_failed";
inline constexpr const char* kTrialStarted = "trial_started";
inline constexpr const char* kEpochCompleted = "epoch_completed";
inline constexpr const char* kTrialFinished = "trial_finished";
inline constexpr const char* kGtRecord = "gt_record";
}  // namespace record_type

struct JournalRecord {
    std::uint64_t seq = 0;
    std::string type;
    util::Json payload;
};

/// Result of reading a journal file: the valid record prefix plus what (if
/// anything) was dropped from the tail.
struct JournalReadResult {
    std::vector<JournalRecord> records;
    bool truncated_tail = false;   ///< a partial/corrupt line was dropped
    std::size_t lines_dropped = 0; ///< lines discarded after the valid prefix
    /// Byte length of the valid prefix — the file offset just past the last
    /// accepted record's newline. Journal's constructor truncates the file
    /// back to this point so a resumed run's appends stay readable.
    std::size_t valid_prefix_bytes = 0;
};

class Journal {
public:
    /// Opens (or creates on first append) the journal at `path`. If the file
    /// already holds records, appends continue from the last valid seq — so
    /// a resumed service extends the same journal it recovered from.
    explicit Journal(std::string path);

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    const std::string& path() const { return path_; }

    /// Durably append one record; thread-safe. On failure the journal is
    /// unchanged (the record may occupy a partial line on disk, which a later
    /// read() drops as a truncated tail).
    util::Result<void> append(const std::string& type, util::Json payload);

    /// Records appended so far by this handle plus what existed at open.
    std::uint64_t last_seq() const;

    /// Parse the journal at `path` into its valid record prefix. Fails only
    /// when the file is missing/unreadable or holds no valid record while
    /// being non-empty (an empty file reads as zero records).
    static util::Result<JournalReadResult> read(const std::string& path);

    /// FNV-1a 64 over the canonical record body (exposed for tests).
    static std::uint64_t checksum(std::uint64_t seq, const std::string& type,
                                  const std::string& payload_dump);

private:
    std::string path_;
    mutable std::mutex mutex_;
    std::uint64_t next_seq_ = 1;
};

}  // namespace pipetune::ft
