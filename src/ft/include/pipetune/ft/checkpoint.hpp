#pragma once
// Trial checkpointing: a crash-safe per-(job, trial) snapshot of the epochs a
// trial has completed, so an interrupted trial resumes at its last completed
// epoch instead of epoch 1 (DESIGN.md §10). Snapshots are whole-file JSON
// written with util::try_write_file_atomic — a crash mid-save leaves the
// previous snapshot intact.
//
// best_system / probe_cursor are operator-facing summaries (what the trial
// had converged on when it stopped); the tuning policy itself does not read
// them back — PipeTunePolicy::choose() is a pure function of the epoch
// history, so replaying the checkpointed epochs reconstructs the policy's
// plan exactly (same probe schedule, same cursor) without serializing any
// policy internals.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pipetune/util/json.hpp"
#include "pipetune/util/result.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::ft {

struct TrialCheckpoint {
    std::uint64_t job_id = 0;
    std::uint64_t trial_id = 0;
    /// Completed epochs in order, full results (counters included) so a
    /// resumed trial replays bit-identical observations.
    std::vector<workload::EpochResult> epochs;
    workload::SystemParams best_system{};  ///< config of the best epoch so far
    std::size_t probe_cursor = 0;          ///< resume point (epochs completed)

    util::Json to_json() const;
    static util::Result<TrialCheckpoint> from_json(const util::Json& json);
};

class CheckpointStore {
public:
    /// Snapshots live as `<dir>/job<J>_trial<T>.ckpt.json`; the directory is
    /// created on first save.
    explicit CheckpointStore(std::string dir);

    const std::string& dir() const { return dir_; }
    std::string path_for(std::uint64_t job_id, std::uint64_t trial_id) const;

    util::Result<void> save(const TrialCheckpoint& checkpoint);
    /// Missing file -> nullopt; a corrupt snapshot also resumes from scratch
    /// (nullopt, with a warning) rather than wedging the trial.
    std::optional<TrialCheckpoint> load(std::uint64_t job_id, std::uint64_t trial_id) const;
    util::Result<void> remove(std::uint64_t job_id, std::uint64_t trial_id);
    /// Snapshot files currently on disk.
    std::size_t count() const;

private:
    std::string dir_;
};

}  // namespace pipetune::ft
