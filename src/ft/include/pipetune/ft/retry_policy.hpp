#pragma once
// RetryPolicy: the one bounded-retry/backoff vocabulary shared by the
// epoch-level retry wrapper (ft::FaultTolerantBackend) and the job-level
// requeue path (sched::ClusterScheduler). Exponential backoff with
// multiplicative jitter; an optional per-job deadline caps the total time a
// job may spend being retried (DESIGN.md §10).

#include <cstddef>
#include <cstdint>

#include "pipetune/util/rng.hpp"

namespace pipetune::ft {

struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying entirely).
    std::size_t max_retries = 3;
    double initial_backoff_s = 0.05;
    double backoff_multiplier = 2.0;
    double max_backoff_s = 2.0;
    /// Backoff is scaled by a factor drawn uniformly from
    /// [1 - jitter_fraction, 1 + jitter_fraction].
    double jitter_fraction = 0.1;
    /// Per-job retry budget in seconds (0 = unbounded): once a job has spent
    /// this long across attempts + backoffs, the next failure is terminal.
    double deadline_s = 0.0;

    bool enabled() const { return max_retries > 0; }

    /// May attempt number `attempt` (0-based count of completed failures) be
    /// retried, given `elapsed_s` already spent on the job?
    bool should_retry(std::size_t failures, double elapsed_s) const {
        if (failures > max_retries) return false;
        if (deadline_s > 0.0 && elapsed_s >= deadline_s) return false;
        return max_retries > 0;
    }

    /// Backoff before retry number `retry` (1-based), jittered via `rng`.
    double backoff_s(std::size_t retry, util::Rng& rng) const;
};

}  // namespace pipetune::ft
