#pragma once
// Deterministic fault injection (DESIGN.md §10). FaultInjector implements the
// workload::EpochObserver seam that SimBackend/RealBackend expose, so the
// same injector drives chaos against either substrate:
//
//   - epoch failures: before_epoch throws InjectedEpochFailure with
//     probability epoch_failure_rate (the epoch never ran — retryable);
//   - worker crashes: the Nth observed epoch throws SimulatedCrash, which no
//     retry layer may catch (kill -9 stand-in; recovery goes via the journal);
//   - slow-node stalls: after_epoch multiplies duration_s by
//     slow_node_factor with probability slow_node_rate (the epoch succeeded,
//     just on a straggler).
//
// All draws come from one seeded util::Rng, so a given seed injects an
// identical fault schedule run after run. Thread-safe (one mutex around the
// RNG and counters) so the concurrent scheduler's workers can share one
// injector.

#include <cstdint>
#include <mutex>

#include "pipetune/ft/errors.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/util/rng.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::ft {

struct FaultInjectorConfig {
    double epoch_failure_rate = 0.0;  ///< P(InjectedEpochFailure) per before_epoch
    double slow_node_rate = 0.0;      ///< P(stall) per completed epoch
    double slow_node_factor = 4.0;    ///< duration multiplier on a stall
    /// Throw SimulatedCrash on the Nth before_epoch (0 = never). Counts every
    /// observed epoch across all trials — "the process dies N epochs in".
    std::size_t crash_after_epochs = 0;
    std::uint64_t seed = 42;
    /// Telemetry (pipetune_ft_injected_*_total). Not owned; may be null.
    obs::ObsContext* obs = nullptr;
};

class FaultInjector final : public workload::EpochObserver {
public:
    explicit FaultInjector(FaultInjectorConfig config = {});

    void before_epoch(const workload::Workload& workload, const workload::HyperParams& hyper,
                      std::size_t epoch, const workload::SystemParams& system) override;
    void after_epoch(const workload::Workload& workload, std::size_t epoch,
                     workload::EpochResult& result) override;

    std::uint64_t epochs_seen() const;
    std::uint64_t injected_epoch_failures() const;
    std::uint64_t injected_crashes() const;
    std::uint64_t injected_stalls() const;

private:
    FaultInjectorConfig config_;
    mutable std::mutex mutex_;
    util::Rng rng_;
    std::uint64_t epochs_seen_ = 0;
    std::uint64_t epoch_failures_ = 0;
    std::uint64_t crashes_ = 0;
    std::uint64_t stalls_ = 0;
    obs::Counter* obs_failures_ = nullptr;
    obs::Counter* obs_crashes_ = nullptr;
    obs::Counter* obs_stalls_ = nullptr;
};

}  // namespace pipetune::ft
