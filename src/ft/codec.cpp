#include "pipetune/ft/codec.hpp"

namespace pipetune::ft {

util::Json system_to_json(const workload::SystemParams& system) {
    util::Json json = util::Json::object();
    json["cores"] = system.cores;
    json["memory_gb"] = system.memory_gb;
    json["frequency_ghz"] = system.frequency_ghz;
    return json;
}

workload::SystemParams system_from_json(const util::Json& json) {
    workload::SystemParams system;
    system.cores = static_cast<std::size_t>(json.get_number("cores", system.cores));
    system.memory_gb = static_cast<std::size_t>(json.get_number("memory_gb", system.memory_gb));
    system.frequency_ghz = json.get_number("frequency_ghz", system.frequency_ghz);
    return system;
}

util::Json epoch_result_to_json(const workload::EpochResult& result) {
    util::Json json = util::Json::object();
    json["epoch"] = result.epoch;
    json["train_loss"] = result.train_loss;
    json["accuracy"] = result.accuracy;
    json["duration_s"] = result.duration_s;
    json["energy_j"] = result.energy_j;
    json["system"] = system_to_json(result.system);
    std::vector<double> counters(result.counters.begin(), result.counters.end());
    json["counters"] = util::Json::array_of(counters);
    return json;
}

workload::EpochResult epoch_result_from_json(const util::Json& json) {
    workload::EpochResult result;
    result.epoch = static_cast<std::size_t>(json.get_number("epoch", 0.0));
    result.train_loss = json.get_number("train_loss", 0.0);
    result.accuracy = json.get_number("accuracy", 0.0);
    result.duration_s = json.get_number("duration_s", 0.0);
    result.energy_j = json.get_number("energy_j", 0.0);
    if (json.contains("system")) result.system = system_from_json(json.at("system"));
    if (json.contains("counters")) {
        const std::vector<double> counters = json.at("counters").as_double_vector();
        const std::size_t n = std::min(counters.size(), result.counters.size());
        for (std::size_t i = 0; i < n; ++i) result.counters[i] = counters[i];
    }
    return result;
}

}  // namespace pipetune::ft
