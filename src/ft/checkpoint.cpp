#include "pipetune/ft/checkpoint.hpp"

#include <filesystem>
#include <system_error>

#include "pipetune/ft/codec.hpp"
#include "pipetune/util/fs.hpp"
#include "pipetune/util/logging.hpp"

namespace pipetune::ft {

util::Json TrialCheckpoint::to_json() const {
    util::Json json = util::Json::object();
    json["job_id"] = job_id;
    json["trial_id"] = trial_id;
    json["best_system"] = system_to_json(best_system);
    json["probe_cursor"] = probe_cursor;
    util::Json epoch_array = util::Json::array();
    for (const workload::EpochResult& epoch : epochs)
        epoch_array.push_back(epoch_result_to_json(epoch));
    json["epochs"] = std::move(epoch_array);
    return json;
}

util::Result<TrialCheckpoint> TrialCheckpoint::from_json(const util::Json& json) {
    if (!json.is_object() || !json.contains("job_id") || !json.contains("trial_id") ||
        !json.contains("epochs"))
        return util::Result<TrialCheckpoint>::failure(
            "checkpoint: missing job_id/trial_id/epochs");
    TrialCheckpoint checkpoint;
    checkpoint.job_id = static_cast<std::uint64_t>(json.at("job_id").as_number());
    checkpoint.trial_id = static_cast<std::uint64_t>(json.at("trial_id").as_number());
    if (json.contains("best_system"))
        checkpoint.best_system = system_from_json(json.at("best_system"));
    checkpoint.probe_cursor = static_cast<std::size_t>(json.get_number("probe_cursor", 0.0));
    if (!json.at("epochs").is_array())
        return util::Result<TrialCheckpoint>::failure("checkpoint: epochs is not an array");
    for (const util::Json& epoch : json.at("epochs").as_array())
        checkpoint.epochs.push_back(epoch_result_from_json(epoch));
    return checkpoint;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointStore::path_for(std::uint64_t job_id, std::uint64_t trial_id) const {
    return dir_ + "/job" + std::to_string(job_id) + "_trial" + std::to_string(trial_id) +
           ".ckpt.json";
}

util::Result<void> CheckpointStore::save(const TrialCheckpoint& checkpoint) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return util::Result<void>::failure("checkpoint: cannot create " + dir_ + ": " +
                                           ec.message());
    return util::try_write_file_atomic(path_for(checkpoint.job_id, checkpoint.trial_id),
                                       checkpoint.to_json().dump(2));
}

std::optional<TrialCheckpoint> CheckpointStore::load(std::uint64_t job_id,
                                                     std::uint64_t trial_id) const {
    const std::string path = path_for(job_id, trial_id);
    auto loaded = util::Json::try_load_file(path);
    if (!loaded) return std::nullopt;  // no snapshot: start from scratch
    auto parsed = TrialCheckpoint::from_json(loaded.value());
    if (!parsed) {
        PT_LOG_WARN("ft").field("path", path)
            << "corrupt checkpoint ignored: " << parsed.error();
        return std::nullopt;
    }
    return std::move(parsed.value());
}

util::Result<void> CheckpointStore::remove(std::uint64_t job_id, std::uint64_t trial_id) {
    std::error_code ec;
    std::filesystem::remove(path_for(job_id, trial_id), ec);
    if (ec) return util::Result<void>::failure("checkpoint: remove failed: " + ec.message());
    return util::Result<void>::success();
}

std::size_t CheckpointStore::count() const {
    std::error_code ec;
    std::size_t n = 0;
    for (std::filesystem::directory_iterator it(dir_, ec), end; !ec && it != end;
         it.increment(ec))
        if (it->path().native().ends_with(".ckpt.json")) ++n;
    return n;
}

}  // namespace pipetune::ft
