#include "pipetune/ft/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "pipetune/util/fs.hpp"
#include "pipetune/util/logging.hpp"

namespace pipetune::ft {

namespace {

std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return std::string(buf);
}

/// Parse one journal line into a record; returns false (with a reason) on any
/// structural or checksum mismatch.
bool parse_line(const std::string& line, JournalRecord& out, std::string& why) {
    auto parsed = util::Json::try_parse(line);
    if (!parsed) {
        why = parsed.error();
        return false;
    }
    const util::Json& json = parsed.value();
    if (!json.is_object() || !json.contains("seq") || !json.contains("type") ||
        !json.contains("crc") || !json.contains("payload")) {
        why = "missing seq/type/crc/payload";
        return false;
    }
    // A record line is exactly one canonical compact dump. A lenient parser
    // would accept a torn line whose closing braces are missing (the payload
    // and crc can both be intact); requiring the round-trip keeps the
    // "whole line or nothing" contract.
    if (json.dump() != line) {
        why = "torn line (not a canonical record)";
        return false;
    }
    out.seq = static_cast<std::uint64_t>(json.at("seq").as_number());
    out.type = json.at("type").as_string();
    out.payload = json.at("payload");
    const std::string expect = hex64(Journal::checksum(out.seq, out.type, out.payload.dump()));
    if (json.at("crc").as_string() != expect) {
        why = "checksum mismatch";
        return false;
    }
    return true;
}

}  // namespace

std::uint64_t Journal::checksum(std::uint64_t seq, const std::string& type,
                                const std::string& payload_dump) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](const char* data, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= static_cast<unsigned char>(data[i]);
            hash *= 0x100000001b3ULL;
        }
    };
    char seq_buf[32];
    const int seq_len =
        std::snprintf(seq_buf, sizeof(seq_buf), "%llu", static_cast<unsigned long long>(seq));
    mix(seq_buf, static_cast<std::size_t>(seq_len));
    mix("|", 1);
    mix(type.data(), type.size());
    mix("|", 1);
    mix(payload_dump.data(), payload_dump.size());
    return hash;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
    // Continue the seq of whatever valid prefix already exists; a fresh or
    // unreadable file starts at 1 (recovery decides what the old bytes mean).
    auto existing = read(path_);
    if (!existing) return;
    if (!existing.value().records.empty())
        next_seq_ = existing.value().records.back().seq + 1;
    if (existing.value().truncated_tail) {
        // Chop the torn tail off before the first append: new records must
        // land on a clean line boundary inside the valid prefix, or every
        // record the resumed run writes would sit behind the corruption and
        // be dropped by the next read.
        std::error_code ec;
        std::filesystem::resize_file(path_, existing.value().valid_prefix_bytes, ec);
        if (ec)
            PT_LOG_WARN("ft").field("path", path_)
                << "cannot truncate torn journal tail: " << ec.message();
        else
            PT_LOG_WARN("ft")
                    .field("path", path_)
                    .field("kept_bytes", existing.value().valid_prefix_bytes)
                << "dropped torn journal tail before reuse";
    }
}

util::Result<void> Journal::append(const std::string& type, util::Json payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string payload_dump = payload.dump();
    util::Json record = util::Json::object();
    record["seq"] = next_seq_;
    record["type"] = type;
    record["crc"] = hex64(checksum(next_seq_, type, payload_dump));
    record["payload"] = std::move(payload);
    auto written = util::append_file_durable(path_, record.dump() + "\n");
    if (!written)
        return util::Result<void>::failure("journal append (" + type + "): " + written.error());
    ++next_seq_;
    return util::Result<void>::success();
}

std::uint64_t Journal::last_seq() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_seq_ - 1;
}

util::Result<JournalReadResult> Journal::read(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return util::Result<JournalReadResult>::failure("journal: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    JournalReadResult result;
    std::size_t total_lines = 0;
    std::size_t pos = 0;
    bool stopped = false;
    std::string first_reason;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        const std::string line =
            text.substr(pos, (eol == std::string::npos ? text.size() : eol) - pos);
        const bool terminated = eol != std::string::npos;
        pos = terminated ? eol + 1 : text.size();
        if (line.empty()) continue;
        ++total_lines;
        if (stopped) {
            ++result.lines_dropped;
            continue;
        }
        JournalRecord record;
        std::string why;
        // An unterminated final line is a torn append even when its content
        // happens to be a whole record: accepting it would let the next
        // append glue onto it (no trailing '\n'), corrupting BOTH records.
        if (!terminated || !parse_line(line, record, why) ||
            (!result.records.empty() && record.seq <= result.records.back().seq)) {
            // End of the usable prefix: a torn tail, bit rot, or a seq that
            // ran backwards. Everything after it is causally suspect.
            stopped = true;
            if (why.empty())
                why = terminated ? "sequence number not increasing" : "unterminated line";
            first_reason = why;
            ++result.lines_dropped;
            continue;
        }
        result.records.push_back(std::move(record));
        result.valid_prefix_bytes = pos;
    }
    result.truncated_tail = result.lines_dropped > 0;
    if (result.records.empty() && total_lines > 0)
        return util::Result<JournalReadResult>::failure(
            "journal: no valid records in " + path + " (first line: " + first_reason + ")");
    if (result.truncated_tail)
        PT_LOG_WARN("ft").field("path", path).field("dropped", result.lines_dropped)
            << "journal tail dropped: " << first_reason;
    return result;
}

}  // namespace pipetune::ft
