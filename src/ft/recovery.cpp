#include "pipetune/ft/recovery.hpp"

#include <map>

#include "pipetune/ft/codec.hpp"

namespace pipetune::ft {

std::vector<RecoveredJob> RecoveryPlan::pending_jobs() const {
    std::vector<RecoveredJob> pending;
    for (const RecoveredJob& job : jobs)
        if (!job.completed && !job.failed) pending.push_back(job);
    return pending;
}

std::size_t RecoveryPlan::completed_count() const {
    std::size_t n = 0;
    for (const RecoveredJob& job : jobs) n += job.completed ? 1 : 0;
    return n;
}

std::size_t RecoveryPlan::failed_count() const {
    std::size_t n = 0;
    for (const RecoveredJob& job : jobs) n += job.failed ? 1 : 0;
    return n;
}

util::Result<RecoveryPlan> Recovery::analyze(const std::string& journal_path) {
    auto read = Journal::read(journal_path);
    if (!read) return util::Result<RecoveryPlan>::failure(read.error());

    RecoveryPlan plan;
    plan.records_read = read.value().records.size();
    plan.truncated_tail = read.value().truncated_tail;
    plan.lines_dropped = read.value().lines_dropped;

    std::map<std::uint64_t, std::size_t> job_index;  // job_id -> plan.jobs slot
    // gt mutations buffered per job; promoted into the plan only once the
    // owning job's job_completed record is seen.
    std::map<std::uint64_t, std::vector<RecoveredGtMutation>> buffered_gt;

    // Slots auto-create on first reference: with concurrent workers a job's
    // lifecycle records can overtake its job_submitted record in the file,
    // and losing a job_completed that way would re-run the job on resume
    // (double-recording its ground truth).
    auto job_slot = [&](std::uint64_t job_id) -> RecoveredJob* {
        auto it = job_index.find(job_id);
        if (it == job_index.end()) {
            RecoveredJob job;
            job.job_id = job_id;
            it = job_index.emplace(job_id, plan.jobs.size()).first;
            plan.jobs.push_back(std::move(job));
        }
        return &plan.jobs[it->second];
    };

    for (const JournalRecord& record : read.value().records) {
        const util::Json& payload = record.payload;
        const std::uint64_t job_id =
            static_cast<std::uint64_t>(payload.get_number("job_id", 0.0));
        if (record.type == record_type::kJobSubmitted) {
            RecoveredJob* job = job_slot(job_id);
            job->label = payload.get_string("label", "");
            job->workload = payload.get_string("workload", "");
            job->submit = payload;
        } else if (record.type == record_type::kJobCompleted) {
            if (RecoveredJob* job = job_slot(job_id)) {
                job->completed = true;
                auto buffered = buffered_gt.find(job_id);
                if (buffered != buffered_gt.end()) {
                    for (RecoveredGtMutation& mutation : buffered->second)
                        plan.ground_truth.push_back(std::move(mutation));
                    buffered_gt.erase(buffered);
                }
            }
        } else if (record.type == record_type::kJobFailed) {
            if (RecoveredJob* job = job_slot(job_id)) {
                job->failed = true;
                job->error = payload.get_string("error", "unknown");
            }
        } else if (record.type == record_type::kGtRecord) {
            RecoveredGtMutation mutation;
            mutation.job_id = job_id;
            if (payload.contains("features"))
                mutation.features = payload.at("features").as_double_vector();
            if (payload.contains("best_system"))
                mutation.best_system = system_from_json(payload.at("best_system"));
            mutation.metric = payload.get_number("metric", 0.0);
            buffered_gt[job_id].push_back(std::move(mutation));
        } else if (record.type == record_type::kEpochCompleted) {
            if (RecoveredJob* job = job_slot(job_id)) ++job->epochs_logged;
        } else if (record.type == record_type::kTrialFinished) {
            if (RecoveredJob* job = job_slot(job_id)) ++job->trials_finished;
        }
        // Unknown record types are skipped: an older pipetune reading a newer
        // journal recovers what it understands.
    }
    return plan;
}

}  // namespace pipetune::ft
