#include "pipetune/ft/retry_policy.hpp"

#include <algorithm>
#include <cmath>

namespace pipetune::ft {

double RetryPolicy::backoff_s(std::size_t retry, util::Rng& rng) const {
    if (retry == 0) return 0.0;
    const double exponent = static_cast<double>(retry - 1);
    double backoff = initial_backoff_s * std::pow(backoff_multiplier, exponent);
    backoff = std::min(backoff, max_backoff_s);
    if (jitter_fraction > 0.0)
        backoff *= rng.uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
    return std::max(0.0, backoff);
}

}  // namespace pipetune::ft
