#include "pipetune/util/build_info.hpp"

namespace pipetune::util {

std::string version_string() { return std::string("pipetune ") + kVersion; }

std::string compiler_string() {
#if defined(__clang__)
    return "clang " + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

std::string build_banner() {
#ifdef NDEBUG
    const char* build_type = "release";
#else
    const char* build_type = "debug";
#endif
    return version_string() + " (" + compiler_string() + ", " + build_type + ")";
}

}  // namespace pipetune::util
