#include "pipetune/util/json.hpp"

#include "pipetune/util/fs.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pipetune::util {

Json Json::array_of(const std::vector<double>& values) {
    JsonArray arr;
    arr.reserve(values.size());
    for (double v : values) arr.emplace_back(v);
    return Json(std::move(arr));
}

Json::Type Json::type() const {
    switch (value_.index()) {
        case 0: return Type::kNull;
        case 1: return Type::kBool;
        case 2: return Type::kNumber;
        case 3: return Type::kString;
        case 4: return Type::kArray;
        default: return Type::kObject;
    }
}

namespace {
[[noreturn]] void type_error(const char* expected) {
    throw std::runtime_error(std::string("Json: expected ") + expected);
}
}  // namespace

bool Json::as_bool() const {
    if (auto* b = std::get_if<bool>(&value_)) return *b;
    type_error("bool");
}

double Json::as_number() const {
    if (auto* d = std::get_if<double>(&value_)) return *d;
    type_error("number");
}

std::int64_t Json::as_int() const {
    return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
    if (auto* s = std::get_if<std::string>(&value_)) return *s;
    type_error("string");
}

const JsonArray& Json::as_array() const {
    if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
    type_error("array");
}

JsonArray& Json::as_array() {
    if (auto* a = std::get_if<JsonArray>(&value_)) return *a;
    type_error("array");
}

const JsonObject& Json::as_object() const {
    if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
    type_error("object");
}

JsonObject& Json::as_object() {
    if (auto* o = std::get_if<JsonObject>(&value_)) return *o;
    type_error("object");
}

std::vector<double> Json::as_double_vector() const {
    const auto& arr = as_array();
    std::vector<double> out;
    out.reserve(arr.size());
    for (const auto& v : arr) out.push_back(v.as_number());
    return out;
}

const Json& Json::at(const std::string& key) const {
    const auto& obj = as_object();
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("Json: missing key '" + key + "'");
    return it->second;
}

bool Json::contains(const std::string& key) const {
    if (!is_object()) return false;
    return as_object().count(key) > 0;
}

double Json::get_number(const std::string& key, double fallback) const {
    return contains(key) && at(key).is_number() ? at(key).as_number() : fallback;
}

std::string Json::get_string(const std::string& key, const std::string& fallback) const {
    return contains(key) && at(key).is_string() ? at(key).as_string() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
    return contains(key) && at(key).is_bool() ? at(key).as_bool() : fallback;
}

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = JsonObject{};
    return as_object()[key];
}

void Json::push_back(Json value) {
    if (is_null()) value_ = JsonArray{};
    as_array().push_back(std::move(value));
}

std::size_t Json::size() const {
    if (is_array()) return as_array().size();
    if (is_object()) return as_object().size();
    return 0;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void format_number(double d, std::string& out) {
    if (std::isnan(d) || std::isinf(d)) {
        out += "null";  // JSON has no NaN/Inf; persisted metrics treat them as missing
        return;
    }
    const double rounded = std::nearbyint(d);
    if (rounded == d && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(rounded));
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
    }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    const std::string pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
    const std::string closing_pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
    const char* nl = indent >= 0 ? "\n" : "";
    switch (type()) {
        case Type::kNull: out += "null"; break;
        case Type::kBool: out += as_bool() ? "true" : "false"; break;
        case Type::kNumber: format_number(as_number(), out); break;
        case Type::kString: escape_string(as_string(), out); break;
        case Type::kArray: {
            const auto& arr = as_array();
            if (arr.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            out += nl;
            for (std::size_t i = 0; i < arr.size(); ++i) {
                out += pad;
                arr[i].dump_to(out, indent, depth + 1);
                if (i + 1 < arr.size()) out += ',';
                out += nl;
            }
            out += closing_pad;
            out += ']';
            break;
        }
        case Type::kObject: {
            const auto& obj = as_object();
            if (obj.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            out += nl;
            std::size_t i = 0;
            for (const auto& [key, value] : obj) {
                out += pad;
                escape_string(key, out);
                out += indent >= 0 ? ": " : ":";
                value.dump_to(out, indent, depth + 1);
                if (++i < obj.size()) out += ',';
                out += nl;
            }
            out += closing_pad;
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json parse() {
        Json value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return value;
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& why) {
        throw std::runtime_error("Json parse error at offset " + std::to_string(pos_) + ": " + why);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    char advance() {
        char c = peek();
        ++pos_;
        return c;
    }

    void expect(char c) {
        if (advance() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }

    bool consume_literal(const char* literal) {
        std::size_t len = 0;
        while (literal[len]) ++len;
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (consume_literal("true")) return Json(true);
                fail("bad literal");
            case 'f':
                if (consume_literal("false")) return Json(false);
                fail("bad literal");
            case 'n':
                if (consume_literal("null")) return Json(nullptr);
                fail("bad literal");
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        JsonObject obj;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(obj));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = parse_value();
            skip_ws();
            const char c = advance();
            if (c == '}') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or '}'");
            }
        }
        return Json(std::move(obj));
    }

    Json parse_array() {
        expect('[');
        JsonArray arr;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            const char c = advance();
            if (c == ']') break;
            if (c != ',') {
                --pos_;
                fail("expected ',' or ']'");
            }
        }
        return Json(std::move(arr));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            char c = advance();
            if (c == '"') break;
            if (c == '\\') {
                const char esc = advance();
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = advance();
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                            else fail("bad hex digit in \\u escape");
                        }
                        // UTF-8 encode (BMP only; surrogate pairs not needed for our data).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                       text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                                       text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected value");
        try {
            std::size_t consumed = 0;
            const std::string token = text_.substr(start, pos_ - start);
            const double d = std::stod(token, &consumed);
            if (consumed != token.size()) fail("bad number");
            return Json(d);
        } catch (const std::exception&) {
            fail("bad number");
        }
    }
};

}  // namespace

Result<Json> Json::try_parse(const std::string& text) {
    try {
        return Parser(text).parse();
    } catch (const std::exception& e) {
        return Result<Json>::failure(e.what());
    }
}

Json Json::parse(const std::string& text) { return std::move(try_parse(text)).value(); }

void Json::save_file(const std::string& path) const {
    // Temp-file + rename so a crash mid-write cannot corrupt persisted state
    // (ground_truth.json / metrics.json are rewritten after every job).
    write_file_atomic(path, dump(2) + "\n");
}

Result<Json> Json::try_load_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Result<Json>::failure("Json::load_file: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = try_parse(buffer.str());
    if (!parsed) return Result<Json>::failure(path + ": " + parsed.error());
    return parsed;
}

Json Json::load_file(const std::string& path) { return std::move(try_load_file(path)).value(); }

bool Json::operator==(const Json& other) const { return value_ == other.value_; }

}  // namespace pipetune::util
