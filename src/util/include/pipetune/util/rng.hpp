#pragma once
// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (synthetic datasets, search
// algorithms, the cluster simulator, measurement-noise models) draw from
// pipetune::util::Rng so that a fixed seed yields a bit-identical run.
// The generator is xoshiro256** seeded via SplitMix64, which has good
// statistical quality and is trivially portable (no libstdc++ distribution
// dependence: we implement the distributions ourselves so results do not
// change across standard libraries).

#include <array>
#include <cstdint>
#include <vector>

namespace pipetune::util {

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic, seedable random generator (xoshiro256**).
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next_u64(); }

    /// Uniform double in [0, 1).
    double uniform();
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
    /// Standard normal via Box-Muller (cached pair).
    double normal();
    /// Normal with given mean / stddev.
    double normal(double mean, double stddev);
    /// Exponential with given rate (lambda).
    double exponential(double rate);
    /// log-uniform in [lo, hi], lo > 0.
    double log_uniform(double lo, double hi);
    /// Bernoulli trial.
    bool bernoulli(double p);
    /// Index in [0, n) with uniform probability. n must be > 0.
    std::size_t index(std::size_t n);
    /// Index drawn from unnormalized non-negative weights. Falls back to
    /// uniform if all weights are zero.
    std::size_t weighted_index(const std::vector<double>& weights);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        if (v.empty()) return;
        for (std::size_t i = v.size() - 1; i > 0; --i) {
            const std::size_t j = index(i + 1);
            using std::swap;
            swap(v[i], v[j]);
        }
    }

    /// Fork a statistically independent child generator; used to give each
    /// trial / node / worker its own stream while staying deterministic.
    Rng fork();

private:
    std::array<std::uint64_t, 4> state_{};
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

}  // namespace pipetune::util
