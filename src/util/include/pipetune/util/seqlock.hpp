#pragma once
// Seqlock: wait-free reads of a small trivially-copyable snapshot
// (DESIGN.md §12). Writers serialize on a mutex, bump the sequence to odd,
// publish the new value, and bump back to even; readers copy the value and
// retry if the sequence changed (or was odd) around the copy. Reads never
// block writers and never take a lock, which is exactly the shape of the
// scheduler/cluster-state hot path: many readers polling a few words that a
// single writer updates occasionally.
//
// The payload is stored as a word array of relaxed atomics (not a raw T), so
// the torn reads the protocol tolerates are *not* data races under the C++
// memory model — the implementation is clean under ThreadSanitizer.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <type_traits>

namespace pipetune::util {

template <typename T>
class Seqlock {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Seqlock payloads are published by memcpy");

public:
    Seqlock() { store_words(T{}); }
    explicit Seqlock(const T& initial) { store_words(initial); }

    Seqlock(const Seqlock&) = delete;
    Seqlock& operator=(const Seqlock&) = delete;

    /// Lock-free consistent snapshot. Retries while a write is in flight.
    T read() const {
        for (;;) {
            const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
            if (s1 & 1) continue;  // writer in critical section
            std::array<std::uint64_t, kWords> buf;
            for (std::size_t i = 0; i < kWords; ++i)
                buf[i] = words_[i].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (seq_.load(std::memory_order_relaxed) == s1) {
                T value;
                // void* casts: T is trivially copyable but may be non-trivial
                // (default member initializers) — the memcpy is well-defined.
                std::memcpy(static_cast<void*>(&value), buf.data(), sizeof(T));
                return value;
            }
        }
    }

    /// Publish a whole new value. Writers serialize on an internal mutex.
    void write(const T& value) {
        std::lock_guard<std::mutex> lock(writer_mutex_);
        publish(value);
    }

    /// Read-modify-write under the writer mutex: fn(T&) mutates a scratch
    /// copy which is then published atomically w.r.t. readers.
    template <typename Fn>
    void update(Fn&& fn) {
        std::lock_guard<std::mutex> lock(writer_mutex_);
        T value = read();  // no concurrent writer: first read attempt wins
        fn(value);
        publish(value);
    }

private:
    static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

    void publish(const T& value) {
        seq_.fetch_add(1, std::memory_order_relaxed);  // odd: write in flight
        std::atomic_thread_fence(std::memory_order_release);
        std::array<std::uint64_t, kWords> buf{};
        std::memcpy(buf.data(), static_cast<const void*>(&value), sizeof(T));
        for (std::size_t i = 0; i < kWords; ++i)
            words_[i].store(buf[i], std::memory_order_relaxed);
        seq_.fetch_add(1, std::memory_order_release);  // even: published
    }

    void store_words(const T& value) {
        std::array<std::uint64_t, kWords> buf{};
        std::memcpy(buf.data(), static_cast<const void*>(&value), sizeof(T));
        for (std::size_t i = 0; i < kWords; ++i)
            words_[i].store(buf[i], std::memory_order_relaxed);
    }

    std::atomic<std::uint64_t> seq_{0};
    std::array<std::atomic<std::uint64_t>, kWords> words_{};
    std::mutex writer_mutex_;
};

}  // namespace pipetune::util
