#pragma once
// Small statistics toolbox shared by the profiling, energy and evaluation
// code: summary statistics, percentiles, trapezoidal integration (the paper's
// energy estimator, §3.2), online accumulators and z-score standardization.

#include <cstddef>
#include <vector>

namespace pipetune::util {

double mean(const std::vector<double>& v);
/// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(const std::vector<double>& v);
double stddev(const std::vector<double>& v);
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);
double sum(const std::vector<double>& v);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> v, double p);
double median(const std::vector<double>& v);

/// Trapezoidal integral of irregularly sampled (t, y) points.
/// This mirrors how the paper integrates 1 Hz PDU power samples into energy.
double trapezoid(const std::vector<double>& t, const std::vector<double>& y);

/// Pearson correlation; returns 0 when either side has zero variance.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance between equal-length vectors.
double euclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Online mean/variance accumulator (Welford).
class RunningStats {
public:
    void add(double x);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;  ///< sample variance
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    void merge(const RunningStats& other);

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Exponential moving average with configurable smoothing factor.
class Ema {
public:
    explicit Ema(double alpha) : alpha_(alpha) {}
    double update(double x);
    double value() const { return value_; }
    bool initialized() const { return initialized_; }

private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

/// Z-score standardizer fit on a matrix of row vectors: (x - mean) / std per
/// column. Constant columns pass through centred (std treated as 1) so k-means
/// on profiles never divides by zero.
class Standardizer {
public:
    void fit(const std::vector<std::vector<double>>& rows);
    std::vector<double> transform(const std::vector<double>& row) const;
    std::vector<std::vector<double>> transform(const std::vector<std::vector<double>>& rows) const;
    bool fitted() const { return !means_.empty(); }
    const std::vector<double>& means() const { return means_; }
    const std::vector<double>& stds() const { return stds_; }

private:
    std::vector<double> means_;
    std::vector<double> stds_;
};

}  // namespace pipetune::util
