#pragma once
// CSV writer used by the benches to dump raw series next to the printed
// tables, so figures can be re-plotted outside the harness.

#include <fstream>
#include <string>
#include <vector>

#include "pipetune/util/result.hpp"

namespace pipetune::util {

class CsvWriter {
public:
    /// Opens (truncates) the file and writes the header row; throws
    /// std::runtime_error when the file cannot be opened (benches treat a
    /// missing dump directory as fatal). try_open is the Result-returning
    /// primitive underneath.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);
    static Result<CsvWriter> try_open(const std::string& path,
                                      const std::vector<std::string>& header);

    CsvWriter(CsvWriter&&) = default;
    CsvWriter& operator=(CsvWriter&&) = default;
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    void add_row(const std::vector<std::string>& cells);
    void add_row(const std::vector<double>& cells);

    /// Flush and close; also invoked by the destructor.
    void close();
    ~CsvWriter();

private:
    struct Unchecked {};  // tag: try_open validated the stream already
    CsvWriter(Unchecked, std::ofstream out, std::size_t columns);

    static std::string escape(const std::string& cell);
    std::ofstream out_;
    std::size_t columns_;
};

}  // namespace pipetune::util
