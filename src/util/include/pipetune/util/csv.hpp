#pragma once
// CSV writer used by the benches to dump raw series next to the printed
// tables, so figures can be re-plotted outside the harness.

#include <fstream>
#include <string>
#include <vector>

namespace pipetune::util {

class CsvWriter {
public:
    /// Opens (truncates) the file and writes the header row.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    void add_row(const std::vector<std::string>& cells);
    void add_row(const std::vector<double>& cells);

    /// Flush and close; also invoked by the destructor.
    void close();
    ~CsvWriter();

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

private:
    static std::string escape(const std::string& cell);
    std::ofstream out_;
    std::size_t columns_;
};

}  // namespace pipetune::util
