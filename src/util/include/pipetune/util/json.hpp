#pragma once
// Minimal JSON value with a recursive-descent parser and serializer.
//
// Used for the persistence surfaces of the library: the ground-truth model
// store (core/), the metrics database (metricsdb/) and bench result dumps.
// Supports the full JSON grammar except exotic number edge cases; numbers are
// stored as double (adequate: persisted values are metrics and counters).

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "pipetune/util/result.hpp"

namespace pipetune::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(unsigned i) : value_(static_cast<double>(i)) {}
    Json(long i) : value_(static_cast<double>(i)) {}
    Json(unsigned long i) : value_(static_cast<double>(i)) {}
    Json(long long i) : value_(static_cast<double>(i)) {}
    Json(unsigned long long i) : value_(static_cast<double>(i)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    static Json array() { return Json(JsonArray{}); }
    static Json object() { return Json(JsonObject{}); }
    /// Convenience: array of doubles.
    static Json array_of(const std::vector<double>& values);

    Type type() const;
    bool is_null() const { return type() == Type::kNull; }
    bool is_bool() const { return type() == Type::kBool; }
    bool is_number() const { return type() == Type::kNumber; }
    bool is_string() const { return type() == Type::kString; }
    bool is_array() const { return type() == Type::kArray; }
    bool is_object() const { return type() == Type::kObject; }

    /// Typed accessors; throw std::runtime_error on type mismatch.
    bool as_bool() const;
    double as_number() const;
    std::int64_t as_int() const;
    const std::string& as_string() const;
    const JsonArray& as_array() const;
    JsonArray& as_array();
    const JsonObject& as_object() const;
    JsonObject& as_object();
    /// Array-of-numbers to vector<double>.
    std::vector<double> as_double_vector() const;

    /// Object field access. at() throws if missing; get() returns fallback.
    const Json& at(const std::string& key) const;
    bool contains(const std::string& key) const;
    double get_number(const std::string& key, double fallback) const;
    std::string get_string(const std::string& key, const std::string& fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;

    /// Object field write access (creates object if null).
    Json& operator[](const std::string& key);
    /// Array append (creates array if null).
    void push_back(Json value);
    std::size_t size() const;

    /// Serialize. indent < 0 means compact single-line.
    std::string dump(int indent = -1) const;

    /// Parse from text. try_parse returns value-or-error (with offset in the
    /// error text); parse is the throwing wrapper over it.
    static Result<Json> try_parse(const std::string& text);
    static Json parse(const std::string& text);

    /// File helpers; save throws on I/O failure. try_load_file returns
    /// value-or-error for missing/bad files; load_file throws the same text.
    void save_file(const std::string& path) const;
    static Result<Json> try_load_file(const std::string& path);
    static Json load_file(const std::string& path);

    bool operator==(const Json& other) const;

private:
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;

    void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace pipetune::util
