#pragma once
// Small filesystem helpers shared by everything that persists state. The one
// that matters is write_file_atomic: state files (ground_truth.json,
// metrics.json, journal segments, bench CSVs) must never be observable
// half-written, so writes go to a temp file in the same directory followed by
// an atomic rename. Durability matters too: the temp file is fsync'd before
// the rename and the parent directory is fsync'd after it, so a power cut
// immediately after a reported success cannot lose the new contents (a rename
// alone only orders the data against the metadata on some filesystems).

#include <string>

#include "pipetune/util/result.hpp"

namespace pipetune::util {

/// Write `contents` to `path` crash-safely: the data lands in a unique temp
/// file next to the destination, is flushed, fsync'd and closed, then renamed
/// over `path` (atomic within a filesystem), and finally the parent directory
/// is fsync'd so the rename itself is durable. A crash mid-write leaves the
/// old file intact; a crash after success cannot roll the new file back.
/// Returns the failure reason instead of throwing (callers that want the old
/// throwing behaviour go through write_file_atomic_or_throw).
Result<void> try_write_file_atomic(const std::string& path, const std::string& contents);

/// Throwing wrapper over try_write_file_atomic (std::runtime_error carrying
/// the same message).
void write_file_atomic(const std::string& path, const std::string& contents);

/// Append `data` to the file at `path` (creating it if needed) and fsync it
/// before returning — the write-ahead-journal primitive: once this reports
/// success the record survives a crash. Returns the failure reason on error.
Result<void> append_file_durable(const std::string& path, const std::string& data);

/// fsync the directory containing `path` so a previously renamed/created
/// entry is durable. No-op success when the platform cannot open directories.
Result<void> fsync_parent_dir(const std::string& path);

}  // namespace pipetune::util
