#pragma once
// Small filesystem helpers shared by everything that persists state. The one
// that matters is write_file_atomic: state files (ground_truth.json,
// metrics.json, bench CSVs) must never be observable half-written, so writes
// go to a temp file in the same directory followed by an atomic rename.

#include <string>

namespace pipetune::util {

/// Write `contents` to `path` crash-safely: the data lands in a unique temp
/// file next to the destination, is flushed and closed, and only then renamed
/// over `path` (atomic within a filesystem). A crash mid-write leaves the old
/// file intact; the stray temp file is removed on the next successful write
/// only if it reuses the same name (unique suffixes make collisions between
/// concurrent writers impossible). Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& contents);

}  // namespace pipetune::util
