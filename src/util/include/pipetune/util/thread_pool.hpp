#pragma once
// Fixed-size thread pool used by the data-parallel trainer (nn::Trainer splits
// each minibatch across N workers and synchronizes gradients, which is the
// mechanism behind the paper's cores-vs-batch-size interaction, Fig 3b) and by
// parallel trial execution in the HPT runner.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pipetune::util {

class ThreadPool {
public:
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return pool_size_; }

    /// Graceful teardown. `drain = true` (the destructor's behavior) lets the
    /// workers finish every queued task before joining; `drain = false`
    /// discards still-queued tasks (their futures report broken_promise) and
    /// joins as soon as in-flight tasks return. Idempotent; submit() after
    /// shutdown throws.
    void shutdown(bool drain = true);

    /// Submit a task; returns a future for its result.
    template <typename F>
    auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
        using Result = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
        std::future<Result> future = packaged->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
            tasks_.emplace([packaged] { (*packaged)(); });
        }
        cv_.notify_one();
        return future;
    }

    /// Run fn(i) for i in [0, count) across the pool and wait for completion.
    /// Exceptions from tasks propagate (first one rethrown).
    void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t pool_size_ = 0;
    bool stopping_ = false;
};

}  // namespace pipetune::util
