#pragma once
// Result<T>: the library's one value-or-error convention for fallible loading
// paths. Before it, loaders mixed three styles — bool returns (CSV), optional
// (ground-truth lookups), and exceptions (JSON persistence) — and every
// caller had to know which one it was holding. A Result carries either a T or
// a human-readable error string; the throwing convenience wrappers
// (Json::parse, GroundTruth::load, ...) are thin shells over the try_*
// Result-returning primitives, so the error text is identical either way.
//
//   auto parsed = util::Json::try_parse(text);
//   if (!parsed) return Result<Config>::failure("config: " + parsed.error());
//   use(parsed.value());

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace pipetune::util {

template <typename T>
class [[nodiscard]] Result {
public:
    /// Implicit success: `return some_t;` works inside a try_* loader.
    Result(T value) : value_(std::move(value)) {}

    static Result failure(std::string message) {
        Result result;
        result.error_ = std::move(message);
        if (result.error_.empty()) result.error_ = "unknown error";
        return result;
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /// Error text; empty on success.
    const std::string& error() const { return error_; }

    /// Accessing the value of a failed Result throws the error as a
    /// runtime_error — the bridge that lets throwing wrappers be one line.
    T& value() & {
        require();
        return *value_;
    }
    const T& value() const& {
        require();
        return *value_;
    }
    T&& value() && {
        require();
        return std::move(*value_);
    }

    T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

private:
    Result() = default;

    void require() const {
        if (!ok()) throw std::runtime_error(error_);
    }

    std::optional<T> value_;
    std::string error_;
};

/// Result<void>: success/failure with no payload (e.g. a validated write).
template <>
class [[nodiscard]] Result<void> {
public:
    static Result success() { return Result(); }
    static Result failure(std::string message) {
        Result result;
        result.failed_ = true;
        result.error_ = std::move(message);
        if (result.error_.empty()) result.error_ = "unknown error";
        return result;
    }

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }
    const std::string& error() const { return error_; }

private:
    Result() = default;
    bool failed_ = false;
    std::string error_;
};

}  // namespace pipetune::util
