#pragma once
// ASCII table rendering for the benchmark harness. Every figure/table bench
// prints its series as aligned tables (the closest terminal analogue to the
// paper's plots), so alignment lives in one place.

#include <string>
#include <vector>

namespace pipetune::util {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Append a row; it may be shorter than the header (padded with "").
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with fixed precision.
    static std::string num(double value, int precision = 2);

    /// Render with column alignment and a header separator.
    std::string render() const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Print a titled section banner around bench output.
std::string section(const std::string& title);

}  // namespace pipetune::util
