#pragma once
// Minimal leveled logger. Thread-safe, writes to stderr, globally filterable.
// Kept deliberately tiny: the library's observable outputs are the metrics DB
// and bench tables, not logs; logging exists for debugging runs.
//
// Two observability hooks on top of the basics:
//  - LogLine can attach structured key=value fields, rendered after the
//    message body ("job 3 done  workload=lenet-mnist slots=4").
//  - A process-wide observer sees every record (level, component, rendered
//    message) BEFORE the threshold filter, so obs::ObsContext can mirror
//    warn/error counts into a MetricsRegistry regardless of verbosity.

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace pipetune::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped (but still observed).
void set_log_level(LogLevel level);
LogLevel log_level();

/// One structured field attached to a record.
struct LogField {
    std::string key;
    std::string value;
};

/// Render fields as "  k=v k=v" (empty string for no fields).
std::string format_fields(const std::vector<LogField>& fields);

/// Emit one log record (already formatted body, plus optional fields).
void log(LogLevel level, const std::string& component, const std::string& message,
         const std::vector<LogField>& fields = {});

/// Observer invoked (under the log mutex) for every record, including ones
/// below the threshold. Installing returns a token; the observer stays active
/// until clear_log_observer() is called with that token (a newer install
/// replaces it). Used by obs::ObsContext::mirror_logs().
using LogObserver =
    std::function<void(LogLevel, const std::string& component, const std::string& message)>;
std::uint64_t set_log_observer(LogObserver observer);
/// Remove the observer if `token` still identifies the active one.
void clear_log_observer(std::uint64_t token);

/// Stream-style helper with structured fields:
///   LogLine(kInfo, "hpt").field("trial", id) << "trial done";
class LogLine {
public:
    LogLine(LogLevel level, std::string component)
        : level_(level), component_(std::move(component)) {}
    ~LogLine();
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

    /// Attach one key=value field (value stringified via operator<<).
    template <typename T>
    LogLine& field(std::string key, const T& value) {
        std::ostringstream ss;
        ss << value;
        fields_.push_back({std::move(key), ss.str()});
        return *this;
    }

private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
    std::vector<LogField> fields_;
};

#define PT_LOG_DEBUG(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kDebug, component)
#define PT_LOG_INFO(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kInfo, component)
#define PT_LOG_WARN(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kWarn, component)
#define PT_LOG_ERROR(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kError, component)

}  // namespace pipetune::util
