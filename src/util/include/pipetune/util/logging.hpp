#pragma once
// Minimal leveled logger. Thread-safe, writes to stderr, globally filterable.
// Kept deliberately tiny: the library's observable outputs are the metrics DB
// and bench tables, not logs; logging exists for debugging runs.

#include <sstream>
#include <string>

namespace pipetune::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log record (already formatted body).
void log(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: LogLine(kInfo, "hpt") << "trial " << id << " done";
class LogLine {
public:
    LogLine(LogLevel level, std::string component)
        : level_(level), component_(std::move(component)) {}
    ~LogLine();
    LogLine(const LogLine&) = delete;
    LogLine& operator=(const LogLine&) = delete;

    template <typename T>
    LogLine& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
};

#define PT_LOG_DEBUG(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kDebug, component)
#define PT_LOG_INFO(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kInfo, component)
#define PT_LOG_WARN(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kWarn, component)
#define PT_LOG_ERROR(component) ::pipetune::util::LogLine(::pipetune::util::LogLevel::kError, component)

}  // namespace pipetune::util
