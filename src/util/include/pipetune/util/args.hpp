#pragma once
// Minimal command-line argument parser for the bundled tools: one positional
// command followed by --key=value / --key value options and --flag switches.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pipetune::util {

class Args {
public:
    /// Parse argv (excluding argv[0]); throws std::invalid_argument on
    /// malformed input (an option without a name).
    static Args parse(int argc, const char* const* argv);
    static Args parse(const std::vector<std::string>& tokens);

    /// First positional token ("" when absent).
    const std::string& command() const { return command_; }
    /// Positional tokens after the command.
    const std::vector<std::string>& positionals() const { return positionals_; }

    bool has(const std::string& key) const;
    /// Value of --key; empty optional when absent or used as a bare flag.
    std::optional<std::string> get(const std::string& key) const;
    std::string get_or(const std::string& key, const std::string& fallback) const;
    double get_number_or(const std::string& key, double fallback) const;
    std::uint64_t get_uint_or(const std::string& key, std::uint64_t fallback) const;
    bool get_flag(const std::string& key) const { return has(key); }

    /// Keys that were provided but never queried — typo detection for tools.
    std::vector<std::string> unused_keys() const;

private:
    std::string command_;
    std::vector<std::string> positionals_;
    std::map<std::string, std::string> options_;  ///< "" for bare flags
    mutable std::map<std::string, bool> queried_;
};

}  // namespace pipetune::util
