#pragma once
// Build identity: one version string for the whole repo plus the compiler
// that produced the running binary. Surfaced by `pipetune --version` and by
// the pipetune_build_info metric (obs/build_info.hpp), so an operator
// scraping /metrics can tell WHICH build is behind the numbers — the first
// question in any perf-trajectory comparison across BENCH_*.json files.

#include <string>

namespace pipetune::util {

/// Repo-level semantic version; bumped when a PR changes a served surface.
inline constexpr const char* kVersion = "0.6.0";

/// "pipetune <version>".
std::string version_string();

/// Human-readable compiler id, e.g. "gcc 12.2.0" or "clang 17.0.1".
std::string compiler_string();

/// One-line build banner: "pipetune <version> (<compiler>, <build type>)".
std::string build_banner();

}  // namespace pipetune::util
