#include "pipetune/util/table.hpp"

#include <cstdio>
#include <sstream>

namespace pipetune::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string>& cells, std::ostringstream& out) {
        out << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : std::string();
            out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        out << "\n";
    };

    std::ostringstream out;
    render_row(headers_, out);
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) out << std::string(widths[c] + 2, '-') << "|";
    out << "\n";
    for (const auto& row : rows_) render_row(row, out);
    return out.str();
}

std::string section(const std::string& title) {
    const std::string bar(title.size() + 8, '=');
    return bar + "\n==  " + title + "  ==\n" + bar + "\n";
}

}  // namespace pipetune::util
