#include "pipetune/util/thread_pool.hpp"

#include <algorithm>

namespace pipetune::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
    num_threads = std::max<std::size_t>(1, num_threads);
    pool_size_ = num_threads;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(true); }

void ThreadPool::shutdown(bool drain) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        if (!drain) {
            // Dropping the queued packaged_tasks breaks their promises; any
            // caller blocked on the corresponding future gets a future_error.
            std::queue<std::function<void()>> discard;
            tasks_.swap(discard);
        }
    }
    cv_.notify_all();
    for (auto& worker : workers_)
        if (worker.joinable()) worker.join();
    workers_.clear();
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(submit([&fn, i] { fn(i); }));
    std::exception_ptr first_error;
    for (auto& future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pipetune::util
