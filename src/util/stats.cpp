#include "pipetune/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pipetune::util {

double mean(const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
    if (v.size() < 2) return 0.0;
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v) acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min_of(const std::vector<double>& v) {
    if (v.empty()) throw std::invalid_argument("min_of: empty vector");
    return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
    if (v.empty()) throw std::invalid_argument("max_of: empty vector");
    return *std::max_element(v.begin(), v.end());
}

double sum(const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
}

double percentile(std::vector<double> v, double p) {
    if (v.empty()) throw std::invalid_argument("percentile: empty vector");
    if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of [0,100]");
    std::sort(v.begin(), v.end());
    if (v.size() == 1) return v[0];
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

double median(const std::vector<double>& v) { return percentile(v, 50.0); }

double trapezoid(const std::vector<double>& t, const std::vector<double>& y) {
    if (t.size() != y.size()) throw std::invalid_argument("trapezoid: size mismatch");
    if (t.size() < 2) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        const double dt = t[i] - t[i - 1];
        if (dt < 0) throw std::invalid_argument("trapezoid: time not monotonic");
        acc += 0.5 * (y[i] + y[i - 1]) * dt;
    }
    return acc;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("pearson: size mismatch");
    if (a.size() < 2) return 0.0;
    const double ma = mean(a), mb = mean(b);
    double num = 0.0, da = 0.0, db = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma) * (a[i] - ma);
        db += (b[i] - mb) * (b[i] - mb);
    }
    if (da == 0.0 || db == 0.0) return 0.0;
    return num / std::sqrt(da * db);
}

double euclidean(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("euclidean: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
    m2_ += other.m2_ + delta * delta * n * m / (n + m);
    mean_ = (n * mean_ + m * other.mean_) / (n + m);
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Ema::update(double x) {
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
}

void Standardizer::fit(const std::vector<std::vector<double>>& rows) {
    if (rows.empty()) throw std::invalid_argument("Standardizer::fit: no rows");
    const std::size_t dims = rows.front().size();
    means_.assign(dims, 0.0);
    stds_.assign(dims, 0.0);
    for (const auto& row : rows) {
        if (row.size() != dims) throw std::invalid_argument("Standardizer::fit: ragged rows");
        for (std::size_t d = 0; d < dims; ++d) means_[d] += row[d];
    }
    for (double& m : means_) m /= static_cast<double>(rows.size());
    for (const auto& row : rows)
        for (std::size_t d = 0; d < dims; ++d) {
            const double delta = row[d] - means_[d];
            stds_[d] += delta * delta;
        }
    for (double& s : stds_) {
        s = std::sqrt(s / static_cast<double>(rows.size()));
        if (s < 1e-12) s = 1.0;  // constant column: centre only
    }
}

std::vector<double> Standardizer::transform(const std::vector<double>& row) const {
    if (row.size() != means_.size())
        throw std::invalid_argument("Standardizer::transform: dimension mismatch");
    std::vector<double> out(row.size());
    for (std::size_t d = 0; d < row.size(); ++d) out[d] = (row[d] - means_[d]) / stds_[d];
    return out;
}

std::vector<std::vector<double>> Standardizer::transform(
    const std::vector<std::vector<double>>& rows) const {
    std::vector<std::vector<double>> out;
    out.reserve(rows.size());
    for (const auto& row : rows) out.push_back(transform(row));
    return out;
}

}  // namespace pipetune::util
