#include "pipetune/util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pipetune::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;
LogObserver g_observer;             // guarded by g_mutex
std::uint64_t g_observer_token = 0; // guarded by g_mutex

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        default: return "?????";
    }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

std::string format_fields(const std::vector<LogField>& fields) {
    if (fields.empty()) return {};
    std::string out;
    for (const LogField& field : fields) {
        out += out.empty() ? "  " : " ";
        out += field.key;
        out += '=';
        out += field.value;
    }
    return out;
}

std::uint64_t set_log_observer(LogObserver observer) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_observer = std::move(observer);
    return ++g_observer_token;
}

void clear_log_observer(std::uint64_t token) {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (token == g_observer_token) g_observer = nullptr;
}

void log(LogLevel level, const std::string& component, const std::string& message,
         const std::vector<LogField>& fields) {
    const std::string rendered = message + format_fields(fields);
    std::lock_guard<std::mutex> lock(g_mutex);
    // Observed before the threshold filter: error counters must not depend on
    // how chatty stderr is configured to be.
    if (g_observer) g_observer(level, component, rendered);
    if (static_cast<int>(level) < g_level.load()) return;
    std::cerr << "[" << level_name(level) << "][" << component << "] " << rendered << "\n";
}

LogLine::~LogLine() { log(level_, component_, stream_.str(), fields_); }

}  // namespace pipetune::util
