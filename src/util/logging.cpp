#include "pipetune/util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pipetune::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        default: return "?????";
    }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log(LogLevel level, const std::string& component, const std::string& message) {
    if (static_cast<int>(level) < g_level.load()) return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::cerr << "[" << level_name(level) << "][" << component << "] " << message << "\n";
}

LogLine::~LogLine() { log(level_, component_, stream_.str()); }

}  // namespace pipetune::util
