#include "pipetune/util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace pipetune::util {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 random bits into [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % span);
    std::uint64_t x = next_u64();
    while (x >= limit) x = next_u64();
    return lo + static_cast<std::int64_t>(x % span);
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
    if (rate <= 0) throw std::invalid_argument("exponential: rate must be > 0");
    return -std::log(1.0 - uniform()) / rate;
}

double Rng::log_uniform(double lo, double hi) {
    if (lo <= 0 || hi < lo) throw std::invalid_argument("log_uniform: need 0 < lo <= hi");
    return std::exp(uniform(std::log(lo), std::log(hi)));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("index: n must be > 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
    if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0) throw std::invalid_argument("weighted_index: negative weight");
        total += w;
    }
    if (total <= 0.0) return index(weights.size());
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0) return i;
    }
    return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace pipetune::util
