#include "pipetune/util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace pipetune::util {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// write(2) the whole buffer, retrying short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

std::string parent_of(const std::string& path) {
    const std::string dir = std::filesystem::path(path).parent_path().string();
    return dir.empty() ? std::string(".") : dir;
}

}  // namespace

Result<void> fsync_parent_dir(const std::string& path) {
    const std::string dir = parent_of(path);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        // Directories that cannot be opened for reading (exotic platforms /
        // permissions) degrade to the pre-fsync behaviour rather than fail
        // the write that already landed.
        return Result<void>::success();
    }
    const bool ok = ::fsync(fd) == 0;
    const std::string error = ok ? std::string() : errno_text();
    ::close(fd);
    if (!ok) return Result<void>::failure("fsync " + dir + ": " + error);
    return Result<void>::success();
}

Result<void> try_write_file_atomic(const std::string& path, const std::string& contents) {
    if (path.empty()) return Result<void>::failure("write_file_atomic: empty path");
    // Unique per process-lifetime counter so concurrent writers targeting the
    // same destination never share a temp file.
    static std::atomic<std::uint64_t> sequence{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return Result<void>::failure("write_file_atomic: cannot open " + tmp + ": " +
                                     errno_text());
    auto fail = [&](const std::string& what) {
        const std::string error = errno_text();
        ::close(fd);
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return Result<void>::failure("write_file_atomic: " + what + " " + tmp + ": " + error);
    };
    if (!write_all(fd, contents.data(), contents.size())) return fail("write failed for");
    // Data must be on stable storage before the rename makes it reachable;
    // otherwise a crash could leave the new name pointing at garbage.
    if (::fsync(fd) != 0) return fail("fsync failed for");
    if (::close(fd) != 0) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return Result<void>::failure("write_file_atomic: close failed for " + tmp);
    }

    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code rm_ec;
        std::filesystem::remove(tmp, rm_ec);
        return Result<void>::failure("write_file_atomic: rename to " + path +
                                     " failed: " + ec.message());
    }
    // The rename is a directory mutation: without this fsync a crash right
    // after "success" can resurrect the old file (or nothing at all).
    return fsync_parent_dir(path);
}

void write_file_atomic(const std::string& path, const std::string& contents) {
    const auto result = try_write_file_atomic(path, contents);
    if (!result) throw std::runtime_error(result.error());
}

Result<void> append_file_durable(const std::string& path, const std::string& data) {
    if (path.empty()) return Result<void>::failure("append_file_durable: empty path");
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return Result<void>::failure("append_file_durable: cannot open " + path + ": " +
                                     errno_text());
    if (!write_all(fd, data.data(), data.size())) {
        const std::string error = errno_text();
        ::close(fd);
        return Result<void>::failure("append_file_durable: write failed for " + path + ": " +
                                     error);
    }
    const bool synced = ::fsync(fd) == 0;
    const std::string error = synced ? std::string() : errno_text();
    ::close(fd);
    if (!synced)
        return Result<void>::failure("append_file_durable: fsync failed for " + path + ": " +
                                     error);
    return Result<void>::success();
}

}  // namespace pipetune::util
