#include "pipetune/util/fs.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace pipetune::util {

void write_file_atomic(const std::string& path, const std::string& contents) {
    if (path.empty()) throw std::runtime_error("write_file_atomic: empty path");
    // Unique per process-lifetime counter so concurrent writers targeting the
    // same destination never share a temp file.
    static std::atomic<std::uint64_t> sequence{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out) throw std::runtime_error("write_file_atomic: cannot open " + tmp);
        out << contents;
        out.flush();
        if (!out) {
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            throw std::runtime_error("write_file_atomic: write failed for " + tmp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code rm_ec;
        std::filesystem::remove(tmp, rm_ec);
        throw std::runtime_error("write_file_atomic: rename to " + path +
                                 " failed: " + ec.message());
    }
}

}  // namespace pipetune::util
