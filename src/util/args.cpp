#include "pipetune/util/args.hpp"

#include <stdexcept>

namespace pipetune::util {

Args Args::parse(int argc, const char* const* argv) {
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
    return parse(tokens);
}

Args Args::parse(const std::vector<std::string>& tokens) {
    Args args;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token.rfind("--", 0) == 0) {
            const std::string body = token.substr(2);
            if (body.empty()) throw std::invalid_argument("Args: empty option name");
            const auto eq = body.find('=');
            if (eq != std::string::npos) {
                args.options_[body.substr(0, eq)] = body.substr(eq + 1);
            } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
                args.options_[body] = tokens[++i];
            } else {
                args.options_[body] = "";  // bare flag
            }
        } else if (args.command_.empty()) {
            args.command_ = token;
        } else {
            args.positionals_.push_back(token);
        }
    }
    return args;
}

bool Args::has(const std::string& key) const {
    queried_[key] = true;
    return options_.count(key) > 0;
}

std::optional<std::string> Args::get(const std::string& key) const {
    queried_[key] = true;
    auto it = options_.find(key);
    if (it == options_.end() || it->second.empty()) return std::nullopt;
    return it->second;
}

std::string Args::get_or(const std::string& key, const std::string& fallback) const {
    const auto value = get(key);
    return value ? *value : fallback;
}

double Args::get_number_or(const std::string& key, double fallback) const {
    const auto value = get(key);
    if (!value) return fallback;
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(*value, &consumed);
        if (consumed != value->size()) throw std::invalid_argument("trailing characters");
        return parsed;
    } catch (const std::exception&) {
        throw std::invalid_argument("Args: --" + key + " expects a number, got '" + *value + "'");
    }
}

std::uint64_t Args::get_uint_or(const std::string& key, std::uint64_t fallback) const {
    const double parsed = get_number_or(key, static_cast<double>(fallback));
    if (parsed < 0) throw std::invalid_argument("Args: --" + key + " must be non-negative");
    return static_cast<std::uint64_t>(parsed);
}

std::vector<std::string> Args::unused_keys() const {
    std::vector<std::string> unused;
    for (const auto& [key, _] : options_)
        if (!queried_.count(key)) unused.push_back(key);
    return unused;
}

}  // namespace pipetune::util
