#include "pipetune/util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace pipetune::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), columns_(header.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    add_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_)
        throw std::runtime_error("CsvWriter: row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream ss;
        ss << v;
        text.push_back(ss.str());
    }
    add_row(text);
}

void CsvWriter::close() {
    if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace pipetune::util
