#include "pipetune/util/csv.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace pipetune::util {

CsvWriter::CsvWriter(Unchecked, std::ofstream out, std::size_t columns)
    : out_(std::move(out)), columns_(columns) {}

Result<CsvWriter> CsvWriter::try_open(const std::string& path,
                                      const std::vector<std::string>& header) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Result<CsvWriter>::failure("CsvWriter: cannot open " + path);
    CsvWriter writer(Unchecked{}, std::move(out), header.size());
    writer.add_row(header);
    return writer;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : CsvWriter(std::move(try_open(path, header).value())) {}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    if (cells.size() != columns_)
        throw std::runtime_error("CsvWriter: row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream ss;
        ss << v;
        text.push_back(ss.str());
    }
    add_row(text);
}

void CsvWriter::close() {
    if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace pipetune::util
