#include "pipetune/nn/batchnorm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pipetune/tensor/arena.hpp"
#include "pipetune/tensor/simd.hpp"

namespace pipetune::nn {

BatchNorm1d::BatchNorm1d(std::size_t features, double momentum, double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_({features}, std::vector<float>(features, 1.0f)),
      beta_({features}),
      grad_gamma_({features}),
      grad_beta_({features}),
      running_mean_({features}),
      running_var_({features}, std::vector<float>(features, 1.0f)) {
    if (features == 0) throw std::invalid_argument("BatchNorm1d: features must be > 0");
    if (momentum <= 0 || momentum > 1)
        throw std::invalid_argument("BatchNorm1d: momentum must be in (0, 1]");
    if (epsilon <= 0) throw std::invalid_argument("BatchNorm1d: epsilon must be > 0");
}

Tensor BatchNorm1d::forward(const Tensor& input, bool training) {
    if (input.rank() != 2 || input.dim(1) != features_)
        throw std::invalid_argument("BatchNorm1d: expected (batch, " +
                                    std::to_string(features_) + ")");
    const std::size_t batch = input.dim(0);
    cached_batch_ = batch;

    Tensor mean({features_});
    Tensor variance({features_});
    if (training) {
        if (batch < 2)
            throw std::invalid_argument("BatchNorm1d: training needs batch size >= 2");
        const float inv_n = 1.0f / static_cast<float>(batch);
        // Column-wise kernels: one vectorized pass for the sums, one for the
        // squared deviations, instead of a strided per-feature loop.
        tensor::simd::colwise_sum(batch, features_, input.data(), mean.data());
        tensor::simd::scale(features_, inv_n, mean.data());
        tensor::simd::colwise_sq_dev_sum(batch, features_, input.data(), mean.data(),
                                         variance.data());
        tensor::simd::scale(features_, inv_n, variance.data());  // biased, training-mode BN
        // Exponential running estimates for eval mode.
        const auto mom = static_cast<float>(momentum_);
        for (std::size_t j = 0; j < features_; ++j) {
            running_mean_[j] = (1.0f - mom) * running_mean_[j] + mom * mean[j];
            running_var_[j] = (1.0f - mom) * running_var_[j] + mom * variance[j];
        }
    } else {
        mean = running_mean_;
        variance = running_var_;
    }

    cached_inv_std_ = Tensor({features_});
    for (std::size_t j = 0; j < features_; ++j)
        cached_inv_std_[j] = 1.0f / std::sqrt(variance[j] + static_cast<float>(epsilon_));

    cached_x_hat_ = Tensor({batch, features_});
    Tensor out({batch, features_});
    tensor::simd::bn_normalize(batch, features_, input.data(), mean.data(),
                               cached_inv_std_.data(), gamma_.data(), beta_.data(),
                               cached_x_hat_.data(), out.data());
    return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_output) {
    const std::size_t batch = cached_batch_;
    if (batch == 0) throw std::runtime_error("BatchNorm1d::backward before forward");
    if (grad_output.shape() != tensor::Shape{batch, features_})
        throw std::invalid_argument("BatchNorm1d::backward: grad shape mismatch");

    Tensor grad_in({batch, features_});
    const auto n = static_cast<float>(batch);
    tensor::ArenaScope scope;
    float* sum_dy = scope.alloc_floats(features_);
    float* sum_dy_xhat = scope.alloc_floats(features_);
    float* scale = scope.alloc_floats(features_);
    std::fill(sum_dy, sum_dy + features_, 0.0f);
    std::fill(sum_dy_xhat, sum_dy_xhat + features_, 0.0f);
    tensor::simd::colwise_sum(batch, features_, grad_output.data(), sum_dy);
    tensor::simd::colwise_mul_sum(batch, features_, grad_output.data(), cached_x_hat_.data(),
                                  sum_dy_xhat);
    for (std::size_t j = 0; j < features_; ++j) {
        grad_beta_[j] += sum_dy[j];
        grad_gamma_[j] += sum_dy_xhat[j];
        scale[j] = gamma_[j] * cached_inv_std_[j] / n;
    }
    // Standard BN input gradient (batch statistics participate):
    // dx = gamma*inv_std/n * (n*dy - sum(dy) - x_hat*sum(dy*x_hat))
    tensor::simd::bn_backward_apply(batch, features_, grad_output.data(), cached_x_hat_.data(),
                                    scale, sum_dy, sum_dy_xhat, n, grad_in.data());
    return grad_in;
}

std::unique_ptr<Layer> BatchNorm1d::clone() const { return std::make_unique<BatchNorm1d>(*this); }

}  // namespace pipetune::nn
