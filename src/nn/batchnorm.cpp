#include "pipetune/nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace pipetune::nn {

BatchNorm1d::BatchNorm1d(std::size_t features, double momentum, double epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_({features}, std::vector<float>(features, 1.0f)),
      beta_({features}),
      grad_gamma_({features}),
      grad_beta_({features}),
      running_mean_({features}),
      running_var_({features}, std::vector<float>(features, 1.0f)) {
    if (features == 0) throw std::invalid_argument("BatchNorm1d: features must be > 0");
    if (momentum <= 0 || momentum > 1)
        throw std::invalid_argument("BatchNorm1d: momentum must be in (0, 1]");
    if (epsilon <= 0) throw std::invalid_argument("BatchNorm1d: epsilon must be > 0");
}

Tensor BatchNorm1d::forward(const Tensor& input, bool training) {
    if (input.rank() != 2 || input.dim(1) != features_)
        throw std::invalid_argument("BatchNorm1d: expected (batch, " +
                                    std::to_string(features_) + ")");
    const std::size_t batch = input.dim(0);
    cached_batch_ = batch;

    Tensor mean({features_});
    Tensor variance({features_});
    if (training) {
        if (batch < 2)
            throw std::invalid_argument("BatchNorm1d: training needs batch size >= 2");
        for (std::size_t j = 0; j < features_; ++j) {
            float m = 0.0f;
            for (std::size_t i = 0; i < batch; ++i) m += input(i, j);
            m /= static_cast<float>(batch);
            float v = 0.0f;
            for (std::size_t i = 0; i < batch; ++i) {
                const float d = input(i, j) - m;
                v += d * d;
            }
            v /= static_cast<float>(batch);  // biased, as in training-mode BN
            mean[j] = m;
            variance[j] = v;
            // Exponential running estimates for eval mode.
            const auto mom = static_cast<float>(momentum_);
            running_mean_[j] = (1.0f - mom) * running_mean_[j] + mom * m;
            running_var_[j] = (1.0f - mom) * running_var_[j] + mom * v;
        }
    } else {
        mean = running_mean_;
        variance = running_var_;
    }

    cached_inv_std_ = Tensor({features_});
    for (std::size_t j = 0; j < features_; ++j)
        cached_inv_std_[j] = 1.0f / std::sqrt(variance[j] + static_cast<float>(epsilon_));

    cached_x_hat_ = Tensor({batch, features_});
    Tensor out({batch, features_});
    for (std::size_t i = 0; i < batch; ++i)
        for (std::size_t j = 0; j < features_; ++j) {
            const float x_hat = (input(i, j) - mean[j]) * cached_inv_std_[j];
            cached_x_hat_(i, j) = x_hat;
            out(i, j) = gamma_[j] * x_hat + beta_[j];
        }
    return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_output) {
    const std::size_t batch = cached_batch_;
    if (batch == 0) throw std::runtime_error("BatchNorm1d::backward before forward");
    if (grad_output.shape() != tensor::Shape{batch, features_})
        throw std::invalid_argument("BatchNorm1d::backward: grad shape mismatch");

    Tensor grad_in({batch, features_});
    const auto n = static_cast<float>(batch);
    for (std::size_t j = 0; j < features_; ++j) {
        float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
        for (std::size_t i = 0; i < batch; ++i) {
            sum_dy += grad_output(i, j);
            sum_dy_xhat += grad_output(i, j) * cached_x_hat_(i, j);
        }
        grad_beta_[j] += sum_dy;
        grad_gamma_[j] += sum_dy_xhat;
        // Standard BN input gradient (batch statistics participate):
        // dx = gamma*inv_std/n * (n*dy - sum(dy) - x_hat*sum(dy*x_hat))
        const float scale = gamma_[j] * cached_inv_std_[j] / n;
        for (std::size_t i = 0; i < batch; ++i)
            grad_in(i, j) = scale * (n * grad_output(i, j) - sum_dy -
                                     cached_x_hat_(i, j) * sum_dy_xhat);
    }
    return grad_in;
}

std::unique_ptr<Layer> BatchNorm1d::clone() const { return std::make_unique<BatchNorm1d>(*this); }

}  // namespace pipetune::nn
