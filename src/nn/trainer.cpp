#include "pipetune/nn/trainer.hpp"

#include <numeric>
#include <optional>
#include <stdexcept>

#include "pipetune/tensor/ops.hpp"
#include "pipetune/util/stats.hpp"
#include "pipetune/util/thread_pool.hpp"

namespace pipetune::nn {

double accuracy_of(const Tensor& logits, const std::vector<std::size_t>& labels) {
    if (logits.rank() != 2 || logits.dim(0) != labels.size())
        throw std::invalid_argument("accuracy_of: shape mismatch");
    std::size_t correct = 0;
    const std::size_t classes = logits.dim(1);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < classes; ++c)
            if (logits(i, c) > logits(i, best)) best = c;
        if (best == labels[i]) ++correct;
    }
    return 100.0 * static_cast<double>(correct) / static_cast<double>(labels.size());
}

Trainer::Trainer(Sequential model, const data::Dataset& train, const data::Dataset& test,
                 TrainerConfig config)
    : model_(std::move(model)),
      train_(train),
      test_(test),
      config_(config),
      rng_(config.seed) {
    if (config.batch_size == 0) throw std::invalid_argument("Trainer: batch_size must be > 0");
    if (config.optimizer == TrainerConfig::OptimizerKind::kAdam)
        optimizer_ = std::make_unique<AdamOptimizer>(model_, config.adam);
    else
        optimizer_ = std::make_unique<SgdOptimizer>(model_, config.sgd);
}

void Trainer::sync_replicas(std::size_t count) {
    while (replicas_.size() < count) replicas_.push_back(model_);  // deep copy via clone
    for (std::size_t w = 0; w < count; ++w) replicas_[w].copy_params_from(model_);
}

EpochStats Trainer::run_epoch(std::size_t workers) {
    workers = std::max<std::size_t>(1, workers);
    data::BatchIterator batches(train_, config_.batch_size, rng_);
    EpochStats stats;
    stats.epoch = ++epochs_done_;

    util::RunningStats loss_stats, acc_stats;
    data::Batch batch;
    // Lazy pool: single-worker epochs (the common case) never pay for thread
    // spawn/teardown; multi-worker epochs spin it up once, not per batch.
    std::optional<util::ThreadPool> pool;
    if (workers > 1) pool.emplace(workers);
    while (batches.next(batch)) {
        const std::size_t batch_n = batch.labels.size();
        const std::size_t used_workers = std::min(workers, batch_n);

        if (used_workers == 1) {
            model_.zero_grad();
            Tensor logits = model_.forward(batch.features, /*training=*/true);
            Tensor probs = tensor::softmax_rows(logits);
            loss_stats.add(tensor::cross_entropy(probs, batch.labels));
            acc_stats.add(accuracy_of(logits, batch.labels));
            model_.backward(tensor::softmax_cross_entropy_grad(probs, batch.labels));
            optimizer_->step();
        } else {
            // Shard the minibatch: contiguous slices of near-equal size.
            sync_replicas(used_workers);
            std::vector<std::vector<std::size_t>> shard_rows(used_workers);
            for (std::size_t i = 0; i < batch_n; ++i)
                shard_rows[i * used_workers / batch_n].push_back(i);

            const std::size_t feat_stride = batch.features.numel() / batch_n;
            std::vector<double> shard_loss(used_workers, 0.0);
            std::vector<double> shard_correct(used_workers, 0.0);

            pool->parallel_for(used_workers, [&](std::size_t w) {
                const auto& rows = shard_rows[w];
                tensor::Shape shard_shape = batch.features.shape();
                shard_shape[0] = rows.size();
                Tensor shard(shard_shape);
                std::vector<std::size_t> labels(rows.size());
                for (std::size_t r = 0; r < rows.size(); ++r) {
                    std::copy(batch.features.data() + rows[r] * feat_stride,
                              batch.features.data() + (rows[r] + 1) * feat_stride,
                              shard.data() + r * feat_stride);
                    labels[r] = batch.labels[rows[r]];
                }
                Sequential& replica = replicas_[w];
                replica.zero_grad();
                Tensor logits = replica.forward(shard, /*training=*/true);
                Tensor probs = tensor::softmax_rows(logits);
                shard_loss[w] = tensor::cross_entropy(probs, labels) * static_cast<double>(rows.size());
                shard_correct[w] =
                    accuracy_of(logits, labels) * static_cast<double>(rows.size()) / 100.0;
                replica.backward(tensor::softmax_cross_entropy_grad(probs, labels));
            });

            // Synchronous aggregation: weight each replica's mean gradient by
            // its shard fraction so the update equals a single-worker batch.
            model_.zero_grad();
            auto master_grads = model_.grads();
            for (std::size_t w = 0; w < used_workers; ++w) {
                const float weight = static_cast<float>(shard_rows[w].size()) /
                                     static_cast<float>(batch_n);
                auto replica_grads = replicas_[w].grads();
                for (std::size_t g = 0; g < master_grads.size(); ++g)
                    master_grads[g]->add_scaled(*replica_grads[g], weight);
            }
            optimizer_->step();

            double total_loss = 0.0, total_correct = 0.0;
            for (std::size_t w = 0; w < used_workers; ++w) {
                total_loss += shard_loss[w];
                total_correct += shard_correct[w];
            }
            loss_stats.add(total_loss / static_cast<double>(batch_n));
            acc_stats.add(100.0 * total_correct / static_cast<double>(batch_n));
        }
        ++stats.batches;
    }

    stats.train_loss = loss_stats.mean();
    stats.train_accuracy = acc_stats.mean();
    stats.test_accuracy = evaluate();
    return stats;
}

double Trainer::evaluate() {
    constexpr std::size_t kEvalBatch = 128;
    std::size_t correct = 0;
    std::vector<std::size_t> indices(test_.size());
    std::iota(indices.begin(), indices.end(), 0);
    for (std::size_t start = 0; start < indices.size(); start += kEvalBatch) {
        const std::size_t end = std::min(start + kEvalBatch, indices.size());
        std::vector<std::size_t> slice(indices.begin() + static_cast<std::ptrdiff_t>(start),
                                       indices.begin() + static_cast<std::ptrdiff_t>(end));
        data::Batch batch = data::stack_batch(test_, slice);
        Tensor logits = model_.forward(batch.features, /*training=*/false);
        const std::size_t classes = logits.dim(1);
        for (std::size_t i = 0; i < batch.labels.size(); ++i) {
            std::size_t best = 0;
            for (std::size_t c = 1; c < classes; ++c)
                if (logits(i, c) > logits(i, best)) best = c;
            if (best == batch.labels[i]) ++correct;
        }
    }
    return 100.0 * static_cast<double>(correct) / static_cast<double>(test_.size());
}

}  // namespace pipetune::nn
