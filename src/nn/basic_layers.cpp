#include "pipetune/nn/basic_layers.hpp"

#include <stdexcept>

#include "pipetune/tensor/ops.hpp"
#include "pipetune/tensor/simd.hpp"

namespace pipetune::nn {

using tensor::Shape;

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::xavier({out_features, in_features}, rng, in_features, out_features)),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
    if (in_features == 0 || out_features == 0)
        throw std::invalid_argument("Dense: feature counts must be > 0");
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 2 || input.dim(1) != in_)
        throw std::invalid_argument("Dense::forward: expected (batch, " + std::to_string(in_) +
                                    "), got " + tensor::shape_to_string(input.shape()));
    cached_input_ = input;
    Tensor out = tensor::matmul_transposed_b(input, weight_);  // (batch, out)
    const std::size_t batch = out.dim(0);
    const float* b = bias_.data();
    for (std::size_t i = 0; i < batch; ++i) {
        float* row = out.data() + i * out_;
        tensor::simd::axpy(out_, 1.0f, b, row);
    }
    return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
    const std::size_t batch = grad_output.dim(0);
    if (grad_output.rank() != 2 || grad_output.dim(1) != out_ || cached_input_.empty())
        throw std::invalid_argument("Dense::backward: bad grad shape or forward not called");
    // dW += dY^T X ; db += colsum(dY) ; dX = dY W
    grad_weight_ += tensor::matmul_transposed_a(grad_output, cached_input_);
    // Row-order column sums — the same accumulation order as the scalar
    // loop, vectorised across columns.
    tensor::simd::colwise_sum(batch, out_, grad_output.data(), grad_bias_.data());
    return tensor::matmul(grad_output, weight_);
}

std::unique_ptr<Layer> Dense::clone() const { return std::make_unique<Dense>(*this); }

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
    cached_input_ = input;
    return tensor::relu(input);
}

Tensor ReLU::backward(const Tensor& grad_output) {
    return tensor::relu_backward(grad_output, cached_input_);
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
    cached_output_ = tensor::tanh_act(input);
    return cached_output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
    return tensor::tanh_backward(grad_output, cached_output_);
}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
    cached_output_ = tensor::sigmoid(input);
    return cached_output_;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
    return tensor::sigmoid_backward(grad_output, cached_output_);
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() < 2) throw std::invalid_argument("Flatten: input must have a batch dim");
    cached_shape_ = input.shape();
    const std::size_t batch = input.dim(0);
    return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
    return grad_output.reshaped(cached_shape_);
}

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), seed_(seed), rng_(seed) {
    if (rate < 0.0 || rate >= 1.0)
        throw std::invalid_argument("Dropout: rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
    if (!training || rate_ == 0.0) {
        mask_ = Tensor();
        return input;
    }
    mask_ = Tensor(input.shape());
    const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
    Tensor out = input;
    for (std::size_t i = 0; i < out.numel(); ++i) {
        const bool keep = !rng_.bernoulli(rate_);
        mask_[i] = keep ? keep_scale : 0.0f;
        out[i] *= mask_[i];
    }
    return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
    if (mask_.empty()) return grad_output;  // eval-mode forward
    Tensor grad = grad_output;
    grad *= mask_;
    return grad;
}

std::unique_ptr<Layer> Dropout::clone() const {
    // Replicas fork deterministically from the layer's seed so parallel
    // workers draw independent masks while whole runs stay reproducible.
    auto copy = std::make_unique<Dropout>(rate_, seed_ ^ 0x9e3779b97f4a7c15ULL);
    return copy;
}

}  // namespace pipetune::nn
