#include "pipetune/nn/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace pipetune::nn {

namespace {
void require_positive_rate(double rate, const char* what) {
    if (rate <= 0) throw std::invalid_argument(std::string(what) + ": rate must be > 0");
}
void require_epoch(std::size_t epoch) {
    if (epoch == 0) throw std::invalid_argument("LrSchedule: epoch is 1-based");
}
}  // namespace

ConstantLr::ConstantLr(double rate) : rate_(rate) { require_positive_rate(rate, "ConstantLr"); }

double ConstantLr::rate_at(std::size_t epoch) const {
    require_epoch(epoch);
    return rate_;
}

StepDecayLr::StepDecayLr(double initial_rate, double gamma, std::size_t step_epochs)
    : initial_(initial_rate), gamma_(gamma), step_(step_epochs) {
    require_positive_rate(initial_rate, "StepDecayLr");
    if (gamma <= 0 || gamma > 1) throw std::invalid_argument("StepDecayLr: gamma must be in (0, 1]");
    if (step_epochs == 0) throw std::invalid_argument("StepDecayLr: step_epochs must be > 0");
}

double StepDecayLr::rate_at(std::size_t epoch) const {
    require_epoch(epoch);
    const auto steps = static_cast<double>((epoch - 1) / step_);
    return initial_ * std::pow(gamma_, steps);
}

CosineLr::CosineLr(double initial_rate, double min_rate, std::size_t total_epochs)
    : initial_(initial_rate), min_(min_rate), total_(total_epochs) {
    require_positive_rate(initial_rate, "CosineLr");
    if (min_rate < 0 || min_rate > initial_rate)
        throw std::invalid_argument("CosineLr: need 0 <= min_rate <= initial_rate");
    if (total_epochs == 0) throw std::invalid_argument("CosineLr: total_epochs must be > 0");
}

double CosineLr::rate_at(std::size_t epoch) const {
    require_epoch(epoch);
    if (epoch >= total_) return min_;
    const double progress = static_cast<double>(epoch - 1) / static_cast<double>(total_ - 1);
    return min_ + 0.5 * (initial_ - min_) * (1.0 + std::cos(M_PI * progress));
}

WarmupLr::WarmupLr(std::size_t warmup_epochs, std::shared_ptr<const LrSchedule> inner)
    : warmup_(warmup_epochs), inner_(std::move(inner)) {
    if (warmup_epochs == 0) throw std::invalid_argument("WarmupLr: warmup_epochs must be > 0");
    if (!inner_) throw std::invalid_argument("WarmupLr: inner schedule required");
}

double WarmupLr::rate_at(std::size_t epoch) const {
    require_epoch(epoch);
    const double target = inner_->rate_at(std::max(epoch, warmup_ + 1));
    if (epoch > warmup_) return inner_->rate_at(epoch);
    return target * static_cast<double>(epoch) / static_cast<double>(warmup_ + 1);
}

}  // namespace pipetune::nn
