#include "pipetune/nn/models.hpp"

#include <stdexcept>

#include "pipetune/nn/basic_layers.hpp"
#include "pipetune/nn/conv_layers.hpp"
#include "pipetune/nn/recurrent.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::nn {

Sequential build_lenet5(const ImageModelConfig& config) {
    if (config.image_size < 16)
        throw std::invalid_argument("build_lenet5: image_size must be >= 16 for two 5x5 convs");
    util::Rng rng(config.seed);
    Sequential model;
    model.emplace<Conv2D>(1, 6, 5, rng);
    model.emplace<Tanh>();
    model.emplace<MaxPool2D>(2);
    model.emplace<Conv2D>(6, 16, 5, rng);
    model.emplace<Tanh>();
    model.emplace<MaxPool2D>(2);
    model.emplace<Flatten>();
    const std::size_t after_conv1 = (config.image_size - 4) / 2;    // pool floor
    const std::size_t after_conv2 = (after_conv1 - 4) / 2;
    const std::size_t flat = 16 * after_conv2 * after_conv2;
    model.emplace<Dense>(flat, 120, rng);
    model.emplace<Tanh>();
    if (config.dropout > 0.0) model.emplace<Dropout>(config.dropout, config.seed * 31 + 7);
    model.emplace<Dense>(120, 84, rng);
    model.emplace<Tanh>();
    model.emplace<Dense>(84, config.classes, rng);
    return model;
}

Sequential build_textcnn(const TextModelConfig& config) {
    if (config.seq_len < config.conv_kernel)
        throw std::invalid_argument("build_textcnn: seq_len must be >= conv_kernel");
    util::Rng rng(config.seed);
    Sequential model;
    model.emplace<Embedding>(config.vocab_size, config.embedding_dim, rng);
    model.emplace<ExpandToNCHW>();
    // Kernel spans the full embedding width -> output width 1, then
    // max-over-time collapses the sequence dimension.
    model.emplace<Conv2D>(1, config.conv_filters, config.conv_kernel, config.embedding_dim, rng);
    model.emplace<ReLU>();
    model.emplace<GlobalMaxPoolH>();
    model.emplace<Flatten>();
    if (config.dropout > 0.0) model.emplace<Dropout>(config.dropout, config.seed * 17 + 3);
    model.emplace<Dense>(config.conv_filters, config.classes, rng);
    return model;
}

Sequential build_lstm_classifier(const TextModelConfig& config) {
    util::Rng rng(config.seed);
    Sequential model;
    model.emplace<Embedding>(config.vocab_size, config.embedding_dim, rng);
    model.emplace<Lstm>(config.embedding_dim, config.lstm_hidden, rng);
    if (config.dropout > 0.0) model.emplace<Dropout>(config.dropout, config.seed * 13 + 5);
    model.emplace<Dense>(config.lstm_hidden, config.classes, rng);
    return model;
}

}  // namespace pipetune::nn
