#pragma once
// 1-D batch normalization over (batch, features) activations: train mode
// normalizes with batch statistics and maintains running estimates; eval mode
// uses the running estimates. Learnable affine (gamma, beta).
//
// Data-parallel note: running statistics are per-replica buffers, not
// parameters — the trainer's synchronous gradient aggregation keeps gamma and
// beta consistent, while each replica's running stats drift independently
// (the master model's stats, used for evaluation, are updated by the
// single-worker path or stay at their initial values under sharded training).

#include "pipetune/nn/layer.hpp"

namespace pipetune::nn {

class BatchNorm1d : public Layer {
public:
    BatchNorm1d(std::size_t features, double momentum = 0.1, double epsilon = 1e-5);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
    std::vector<Tensor*> grads() override { return {&grad_gamma_, &grad_beta_}; }
    std::string name() const override { return "BatchNorm1d"; }
    std::unique_ptr<Layer> clone() const override;

    const Tensor& running_mean() const { return running_mean_; }
    const Tensor& running_var() const { return running_var_; }

private:
    std::size_t features_;
    double momentum_;
    double epsilon_;
    Tensor gamma_, beta_;
    Tensor grad_gamma_, grad_beta_;
    Tensor running_mean_, running_var_;

    // Forward caches for backward.
    Tensor cached_x_hat_;     ///< normalized activations
    Tensor cached_inv_std_;   ///< 1/sqrt(var + eps) per feature
    std::size_t cached_batch_ = 0;
};

}  // namespace pipetune::nn
