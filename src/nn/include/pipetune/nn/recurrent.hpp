#pragma once
// Embedding and LSTM layers for the text workloads (CNN/News20, LSTM/News20,
// the paper's Type-II jobs). The embedding dimension is one of the paper's
// five tuned hyperparameters (range 50-300).

#include "pipetune/nn/layer.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::nn {

/// Token embedding: input (batch, seq) of integer token ids stored as floats,
/// output (batch, seq, dim). Backward scatter-adds into the embedding table.
class Embedding : public Layer {
public:
    Embedding(std::size_t vocab_size, std::size_t dim, util::Rng& rng);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Tensor*> params() override { return {&table_}; }
    std::vector<Tensor*> grads() override { return {&grad_table_}; }
    std::string name() const override { return "Embedding"; }
    std::unique_ptr<Layer> clone() const override;

    std::size_t vocab_size() const { return vocab_; }
    std::size_t dim() const { return dim_; }

private:
    std::size_t vocab_, dim_;
    Tensor table_, grad_table_;
    Tensor cached_input_;
};

/// Single-layer LSTM over (batch, seq, input_dim), emitting the final hidden
/// state (batch, hidden). Full backpropagation-through-time.
/// Gate layout within the fused weight matrices is [input, forget, cell, output].
class Lstm : public Layer {
public:
    Lstm(std::size_t input_dim, std::size_t hidden_dim, util::Rng& rng);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Tensor*> params() override { return {&w_input_, &w_recur_, &bias_}; }
    std::vector<Tensor*> grads() override { return {&grad_w_input_, &grad_w_recur_, &grad_bias_}; }
    std::string name() const override { return "Lstm"; }
    std::unique_ptr<Layer> clone() const override;

    std::size_t hidden_dim() const { return hidden_; }

private:
    std::size_t input_, hidden_;
    Tensor w_input_;   ///< (4H, D)
    Tensor w_recur_;   ///< (4H, H)
    Tensor bias_;      ///< (4H), forget-gate slice initialized to 1
    Tensor grad_w_input_, grad_w_recur_, grad_bias_;

    // Per-timestep caches from the last forward pass.
    struct StepCache {
        Tensor x;      ///< (B, D)
        Tensor gates;  ///< (B, 4H) post-activation [i, f, g, o]
        Tensor c;      ///< (B, H) cell state after this step
        Tensor h;      ///< (B, H) hidden after this step
    };
    std::vector<StepCache> steps_;
    std::size_t cached_batch_ = 0;
};

}  // namespace pipetune::nn
