#pragma once
// Optimizers for the NN engine. SGD with momentum is the paper's backbone
// (§1: "the backbone of popular training algorithms for DNN is stochastic
// gradient descent"); Adam is provided for downstream users of the engine.
// Both consume the gradients accumulated in a Sequential and zero them after
// the update.

#include <memory>
#include <vector>

#include "pipetune/nn/sequential.hpp"

namespace pipetune::nn {

class Optimizer {
public:
    virtual ~Optimizer() = default;
    /// Apply one update using the model's accumulated gradients, then zero them.
    virtual void step() = 0;
    virtual double learning_rate() const = 0;
    virtual void set_learning_rate(double lr) = 0;
};

/// Scale all gradients so their global L2 norm is at most `max_norm`
/// (no-op when already within, or when max_norm <= 0). Returns the
/// pre-clipping norm.
double clip_gradients(Sequential& model, double max_norm);

struct SgdConfig {
    double learning_rate = 0.01;  ///< paper hyperparameter, range [0.001, 0.1]
    double momentum = 0.0;
    double weight_decay = 0.0;
    /// Global L2 gradient-norm ceiling; 0 disables clipping. Guards the
    /// recurrent models against exploding gradients.
    double max_grad_norm = 0.0;
};

class SgdOptimizer : public Optimizer {
public:
    SgdOptimizer(Sequential& model, SgdConfig config);

    void step() override;
    double learning_rate() const override { return config_.learning_rate; }
    void set_learning_rate(double lr) override { config_.learning_rate = lr; }
    const SgdConfig& config() const { return config_; }

private:
    Sequential& model_;
    SgdConfig config_;
    std::vector<Tensor> velocity_;
};

struct AdamConfig {
    double learning_rate = 0.001;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
    double max_grad_norm = 0.0;  ///< 0 disables clipping
};

/// Adam (Kingma & Ba, 2015) with bias-corrected first/second moments.
class AdamOptimizer : public Optimizer {
public:
    AdamOptimizer(Sequential& model, AdamConfig config);

    void step() override;
    double learning_rate() const override { return config_.learning_rate; }
    void set_learning_rate(double lr) override { config_.learning_rate = lr; }
    const AdamConfig& config() const { return config_; }
    std::size_t steps_taken() const { return steps_; }

private:
    Sequential& model_;
    AdamConfig config_;
    std::vector<Tensor> first_moment_;
    std::vector<Tensor> second_moment_;
    std::size_t steps_ = 0;
};

}  // namespace pipetune::nn
