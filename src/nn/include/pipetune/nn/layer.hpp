#pragma once
// Layer abstraction for the from-scratch NN engine.
//
// The engine replaces the paper's BigDL/Spark substrate. PipeTune itself only
// observes epoch-level metrics, so the engine's contract is deliberately
// small: forward, backward with cached activations, and parameter/gradient
// exposure for the SGD optimizer. clone() exists for the data-parallel
// trainer, which keeps one model replica per worker (synchronous minibatch
// SGD, the mechanism behind the paper's cores-vs-batch-size trade-off).

#include <memory>
#include <string>
#include <vector>

#include "pipetune/tensor/tensor.hpp"

namespace pipetune::nn {

using tensor::Tensor;

class Layer {
public:
    virtual ~Layer() = default;

    /// Compute output for `input`; `training` toggles dropout-style behaviour.
    /// Implementations cache what backward() needs.
    virtual Tensor forward(const Tensor& input, bool training) = 0;

    /// Given dL/d(output), return dL/d(input) and accumulate parameter grads.
    /// Must be called after forward() on the same input.
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Trainable parameters and their gradient buffers, index-aligned.
    virtual std::vector<Tensor*> params() { return {}; }
    virtual std::vector<Tensor*> grads() { return {}; }

    /// Zero all gradient buffers.
    void zero_grad() {
        for (Tensor* g : grads()) g->fill(0.0f);
    }

    virtual std::string name() const = 0;

    /// Deep copy, including parameters (replicas for data-parallel workers).
    virtual std::unique_ptr<Layer> clone() const = 0;

    /// Number of trainable scalars.
    std::size_t param_count() {
        std::size_t n = 0;
        for (Tensor* p : params()) n += p->numel();
        return n;
    }
};

}  // namespace pipetune::nn
