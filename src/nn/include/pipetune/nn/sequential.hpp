#pragma once
// Sequential container: a stack of layers trained end-to-end with softmax
// cross-entropy on top.

#include <memory>
#include <vector>

#include "pipetune/nn/layer.hpp"

namespace pipetune::nn {

class Sequential {
public:
    Sequential() = default;
    Sequential(const Sequential& other);
    Sequential& operator=(const Sequential& other);
    Sequential(Sequential&&) = default;
    Sequential& operator=(Sequential&&) = default;

    /// Append a layer; returns *this for chaining.
    Sequential& add(std::unique_ptr<Layer> layer);

    template <typename L, typename... Args>
    Sequential& emplace(Args&&... args) {
        return add(std::make_unique<L>(std::forward<Args>(args)...));
    }

    /// Forward through all layers; returns logits.
    Tensor forward(const Tensor& input, bool training);

    /// Backward from dL/d(logits) through all layers; accumulates grads.
    void backward(const Tensor& grad_logits);

    /// Flattened parameter/gradient views over all layers.
    std::vector<Tensor*> params();
    std::vector<Tensor*> grads();
    void zero_grad();
    std::size_t param_count();

    /// Copy parameter values from another structurally identical model.
    /// Used by the data-parallel trainer to refresh worker replicas.
    void copy_params_from(const Sequential& source);

    std::size_t layer_count() const { return layers_.size(); }
    Layer& layer(std::size_t i) { return *layers_.at(i); }

private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace pipetune::nn
