#pragma once
// Convolution and pooling layers (NCHW, valid padding, unit stride) used by
// LeNet-5 and the TextCNN.

#include "pipetune/nn/layer.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::nn {

/// 2-D convolution, kernel (filters, in_channels, kh, kw). Rectangular
/// kernels let the TextCNN convolve over (time, embedding) with kw = embed.
class Conv2D : public Layer {
public:
    Conv2D(std::size_t in_channels, std::size_t filters, std::size_t kernel_size,
           util::Rng& rng);
    Conv2D(std::size_t in_channels, std::size_t filters, std::size_t kernel_h,
           std::size_t kernel_w, util::Rng& rng);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Tensor*> params() override { return {&kernel_, &bias_}; }
    std::vector<Tensor*> grads() override { return {&grad_kernel_, &grad_bias_}; }
    std::string name() const override { return "Conv2D"; }
    std::unique_ptr<Layer> clone() const override;

private:
    Tensor kernel_, bias_;
    Tensor grad_kernel_, grad_bias_;
    Tensor cached_input_;
};

/// Non-overlapping max pooling.
class MaxPool2D : public Layer {
public:
    explicit MaxPool2D(std::size_t window);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "MaxPool2D"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<MaxPool2D>(window_); }

private:
    std::size_t window_;
    Tensor cached_input_;
};

/// Non-overlapping average pooling — classic LeNet-5 subsampling.
class AvgPool2D : public Layer {
public:
    explicit AvgPool2D(std::size_t window);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "AvgPool2D"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<AvgPool2D>(window_); }

private:
    std::size_t window_;
    Tensor cached_input_;
};

/// Max-over-time pooling for the TextCNN: (N, C, H, W) -> (N, C, 1, W).
class GlobalMaxPoolH : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "GlobalMaxPoolH"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<GlobalMaxPoolH>(); }

private:
    Tensor cached_input_;
};

/// Reshape (batch, seq, embed) -> (batch, 1, seq, embed) so conv layers can
/// consume embedding output.
class ExpandToNCHW : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "ExpandToNCHW"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<ExpandToNCHW>(); }
};

}  // namespace pipetune::nn
