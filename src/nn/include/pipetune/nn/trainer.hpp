#pragma once
// Minibatch SGD trainer with synchronous N-way data parallelism.
//
// This reproduces the training mechanism the paper's system-parameter tuning
// exploits (§3.2): each minibatch is split across `workers` model replicas,
// gradients are aggregated synchronously, and one update is applied. More
// workers shrink per-replica shards, so small batch sizes pay relatively more
// synchronization overhead — the cores-vs-batch-size crossover of Fig 3b.

#include <cstdint>

#include "pipetune/data/dataset.hpp"
#include "pipetune/nn/optimizer.hpp"
#include "pipetune/nn/sequential.hpp"

namespace pipetune::nn {

struct TrainerConfig {
    std::size_t batch_size = 32;  ///< paper hyperparameter, range [32, 1024]
    enum class OptimizerKind { kSgd, kAdam } optimizer = OptimizerKind::kSgd;
    SgdConfig sgd{};    ///< used when optimizer == kSgd
    AdamConfig adam{};  ///< used when optimizer == kAdam
    std::uint64_t seed = 1;
};

struct EpochStats {
    double train_loss = 0.0;
    double train_accuracy = 0.0;  ///< [0, 100]
    double test_accuracy = 0.0;   ///< [0, 100]
    std::size_t batches = 0;
    std::size_t epoch = 0;        ///< 1-based epoch index
};

class Trainer {
public:
    /// Takes ownership of the model; datasets must outlive the trainer.
    Trainer(Sequential model, const data::Dataset& train, const data::Dataset& test,
            TrainerConfig config);

    /// One full pass over the training set using `workers` parallel replicas.
    EpochStats run_epoch(std::size_t workers);

    /// Accuracy [0, 100] on the test set.
    double evaluate();

    Sequential& model() { return model_; }
    std::size_t epochs_done() const { return epochs_done_; }

private:
    /// Ensure `count` worker replicas exist and mirror the master weights.
    void sync_replicas(std::size_t count);

    Sequential model_;
    const data::Dataset& train_;
    const data::Dataset& test_;
    TrainerConfig config_;
    std::unique_ptr<Optimizer> optimizer_;
    util::Rng rng_;
    std::vector<Sequential> replicas_;
    std::size_t epochs_done_ = 0;
};

/// Accuracy [0, 100] of argmax(logits) against labels.
double accuracy_of(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace pipetune::nn
