#pragma once
// Dense (fully connected), activation, flatten and dropout layers.

#include "pipetune/nn/layer.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::nn {

/// Fully connected layer: y = x W^T + b, x is (batch, in), W is (out, in).
class Dense : public Layer {
public:
    Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
    std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
    std::string name() const override { return "Dense"; }
    std::unique_ptr<Layer> clone() const override;

    std::size_t in_features() const { return in_; }
    std::size_t out_features() const { return out_; }

private:
    std::size_t in_, out_;
    Tensor weight_, bias_;
    Tensor grad_weight_, grad_bias_;
    Tensor cached_input_;
};

/// ReLU activation.
class ReLU : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "ReLU"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(); }

private:
    Tensor cached_input_;
};

/// Tanh activation (LeNet's classical nonlinearity).
class Tanh : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Tanh"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(); }

private:
    Tensor cached_output_;
};

/// Sigmoid activation.
class Sigmoid : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Sigmoid"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<Sigmoid>(); }

private:
    Tensor cached_output_;
};

/// Flatten (batch, ...) -> (batch, features).
class Flatten : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Flatten"; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<Flatten>(); }

private:
    tensor::Shape cached_shape_;
};

/// Inverted dropout: at train time, zero each activation with probability
/// `rate` and scale survivors by 1/(1-rate); identity at eval time.
/// rate is one of the paper's five tuned hyperparameters (range 0.0-0.5).
class Dropout : public Layer {
public:
    Dropout(double rate, std::uint64_t seed);

    Tensor forward(const Tensor& input, bool training) override;
    Tensor backward(const Tensor& grad_output) override;
    std::string name() const override { return "Dropout"; }
    std::unique_ptr<Layer> clone() const override;

    double rate() const { return rate_; }

private:
    double rate_;
    std::uint64_t seed_;
    util::Rng rng_;
    Tensor mask_;
};

}  // namespace pipetune::nn
