#pragma once
// Model zoo: the three DNN architectures evaluated in the paper (Table 3) —
// LeNet-5 (Type-I image jobs), a TextCNN and an LSTM classifier (Type-II text
// jobs). Each builder consumes the tuned hyperparameters that shape the
// architecture (dropout rate, embedding dimensions).

#include <cstdint>

#include "pipetune/nn/sequential.hpp"

namespace pipetune::nn {

struct ImageModelConfig {
    std::size_t image_size = 28;   ///< square grayscale input
    std::size_t classes = 10;
    double dropout = 0.0;          ///< paper hyperparameter, range [0.0, 0.5]
    std::uint64_t seed = 1;
};

struct TextModelConfig {
    std::size_t vocab_size = 2000;
    std::size_t seq_len = 32;
    std::size_t classes = 20;
    std::size_t embedding_dim = 50;  ///< paper hyperparameter, range [50, 300]
    double dropout = 0.0;            ///< paper hyperparameter, range [0.0, 0.5]
    std::size_t conv_filters = 32;   ///< TextCNN only
    std::size_t conv_kernel = 3;     ///< TextCNN only (tokens per window)
    std::size_t lstm_hidden = 32;    ///< LSTM only
    std::uint64_t seed = 1;
};

/// LeNet-5: conv(6,5x5)-tanh-pool - conv(16,5x5)-tanh-pool - fc120 - fc84 - fc10.
Sequential build_lenet5(const ImageModelConfig& config);

/// TextCNN: embedding - conv over (kernel, embed) - relu - max-over-time - fc.
Sequential build_textcnn(const TextModelConfig& config);

/// LSTM classifier: embedding - lstm - dropout - fc.
Sequential build_lstm_classifier(const TextModelConfig& config);

}  // namespace pipetune::nn
