#pragma once
// Learning-rate schedules for the NN engine. The paper treats the (initial)
// learning rate as a tuned hyperparameter; schedules decay it over epochs —
// a standard training refinement downstream users expect from the engine.

#include <cstddef>
#include <memory>
#include <string>

#include "pipetune/nn/optimizer.hpp"

namespace pipetune::nn {

class LrSchedule {
public:
    virtual ~LrSchedule() = default;
    /// Learning rate to use for `epoch` (1-based).
    virtual double rate_at(std::size_t epoch) const = 0;
    virtual std::string name() const = 0;

    /// Apply this schedule's rate for `epoch` to an optimizer.
    void apply(Optimizer& optimizer, std::size_t epoch) const {
        optimizer.set_learning_rate(rate_at(epoch));
    }
};

/// Constant rate (the paper's setting: hyperparameters "do not change" after
/// training starts).
class ConstantLr final : public LrSchedule {
public:
    explicit ConstantLr(double rate);
    double rate_at(std::size_t epoch) const override;
    std::string name() const override { return "constant"; }

private:
    double rate_;
};

/// Step decay: rate * gamma^floor((epoch-1)/step_epochs).
class StepDecayLr final : public LrSchedule {
public:
    StepDecayLr(double initial_rate, double gamma, std::size_t step_epochs);
    double rate_at(std::size_t epoch) const override;
    std::string name() const override { return "step-decay"; }

private:
    double initial_;
    double gamma_;
    std::size_t step_;
};

/// Cosine annealing from the initial rate to `min_rate` over `total_epochs`.
class CosineLr final : public LrSchedule {
public:
    CosineLr(double initial_rate, double min_rate, std::size_t total_epochs);
    double rate_at(std::size_t epoch) const override;
    std::string name() const override { return "cosine"; }

private:
    double initial_;
    double min_;
    std::size_t total_;
};

/// Linear warmup for `warmup_epochs`, then delegate to an inner schedule.
class WarmupLr final : public LrSchedule {
public:
    WarmupLr(std::size_t warmup_epochs, std::shared_ptr<const LrSchedule> inner);
    double rate_at(std::size_t epoch) const override;
    std::string name() const override { return "warmup"; }

private:
    std::size_t warmup_;
    std::shared_ptr<const LrSchedule> inner_;
};

}  // namespace pipetune::nn
