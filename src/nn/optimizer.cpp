#include "pipetune/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "pipetune/tensor/simd.hpp"

namespace pipetune::nn {

double clip_gradients(Sequential& model, double max_norm) {
    double squared = 0.0;
    for (Tensor* g : model.grads()) squared += g->squared_norm();
    const double norm = std::sqrt(squared);
    if (max_norm > 0 && norm > max_norm) {
        const auto scale = static_cast<float>(max_norm / norm);
        for (Tensor* g : model.grads()) *g *= scale;
    }
    return norm;
}

SgdOptimizer::SgdOptimizer(Sequential& model, SgdConfig config)
    : model_(model), config_(config) {
    if (config.learning_rate <= 0)
        throw std::invalid_argument("SgdOptimizer: learning rate must be > 0");
    if (config.momentum < 0 || config.momentum >= 1)
        throw std::invalid_argument("SgdOptimizer: momentum must be in [0, 1)");
    if (config.weight_decay < 0)
        throw std::invalid_argument("SgdOptimizer: weight decay must be >= 0");
    for (Tensor* p : model.params()) velocity_.emplace_back(p->shape());
}

void SgdOptimizer::step() {
    clip_gradients(model_, config_.max_grad_norm);
    auto params = model_.params();
    auto grads = model_.grads();
    if (params.size() != velocity_.size())
        throw std::runtime_error("SgdOptimizer: model structure changed after construction");
    const auto lr = static_cast<float>(config_.learning_rate);
    const auto mu = static_cast<float>(config_.momentum);
    const auto wd = static_cast<float>(config_.weight_decay);
    for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor& w = *params[i];
        Tensor& g = *grads[i];
        Tensor& v = velocity_[i];
        // Fused kernel: one pass over w/g/v instead of three, and g is
        // zeroed in the same sweep (saves the separate fill traversal).
        tensor::simd::sgd_momentum_step(w.numel(), lr, mu, wd, w.data(), g.data(), v.data());
    }
}

AdamOptimizer::AdamOptimizer(Sequential& model, AdamConfig config)
    : model_(model), config_(config) {
    if (config.learning_rate <= 0)
        throw std::invalid_argument("AdamOptimizer: learning rate must be > 0");
    if (config.beta1 < 0 || config.beta1 >= 1 || config.beta2 < 0 || config.beta2 >= 1)
        throw std::invalid_argument("AdamOptimizer: betas must be in [0, 1)");
    if (config.epsilon <= 0)
        throw std::invalid_argument("AdamOptimizer: epsilon must be > 0");
    if (config.weight_decay < 0)
        throw std::invalid_argument("AdamOptimizer: weight decay must be >= 0");
    for (Tensor* p : model.params()) {
        first_moment_.emplace_back(p->shape());
        second_moment_.emplace_back(p->shape());
    }
}

void AdamOptimizer::step() {
    clip_gradients(model_, config_.max_grad_norm);
    auto params = model_.params();
    auto grads = model_.grads();
    if (params.size() != first_moment_.size())
        throw std::runtime_error("AdamOptimizer: model structure changed after construction");
    ++steps_;
    const auto lr = static_cast<float>(config_.learning_rate);
    const auto b1 = static_cast<float>(config_.beta1);
    const auto b2 = static_cast<float>(config_.beta2);
    const auto eps = static_cast<float>(config_.epsilon);
    const auto wd = static_cast<float>(config_.weight_decay);
    const auto t = static_cast<float>(steps_);
    const tensor::simd::AdamStep step{lr,  b1,  b2, eps, wd, 1.0f - std::pow(b1, t),
                                      1.0f - std::pow(b2, t)};
    for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor& w = *params[i];
        Tensor& g = *grads[i];
        Tensor& m = first_moment_[i];
        Tensor& v = second_moment_[i];
        tensor::simd::adam_step(w.numel(), step, w.data(), g.data(), m.data(), v.data());
    }
}

}  // namespace pipetune::nn
