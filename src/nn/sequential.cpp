#include "pipetune/nn/sequential.hpp"

#include <stdexcept>

namespace pipetune::nn {

Sequential::Sequential(const Sequential& other) {
    layers_.reserve(other.layers_.size());
    for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
    if (this == &other) return *this;
    layers_.clear();
    layers_.reserve(other.layers_.size());
    for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
    return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
    if (!layer) throw std::invalid_argument("Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
    Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x, training);
    return x;
}

void Sequential::backward(const Tensor& grad_logits) {
    Tensor g = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<Tensor*> Sequential::params() {
    std::vector<Tensor*> out;
    for (auto& layer : layers_)
        for (Tensor* p : layer->params()) out.push_back(p);
    return out;
}

std::vector<Tensor*> Sequential::grads() {
    std::vector<Tensor*> out;
    for (auto& layer : layers_)
        for (Tensor* g : layer->grads()) out.push_back(g);
    return out;
}

void Sequential::zero_grad() {
    for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Sequential::param_count() {
    std::size_t n = 0;
    for (auto& layer : layers_) n += layer->param_count();
    return n;
}

void Sequential::copy_params_from(const Sequential& source) {
    auto& mutable_source = const_cast<Sequential&>(source);
    auto dst = params();
    auto src = mutable_source.params();
    if (dst.size() != src.size())
        throw std::invalid_argument("Sequential::copy_params_from: structure mismatch");
    for (std::size_t i = 0; i < dst.size(); ++i) {
        if (dst[i]->shape() != src[i]->shape())
            throw std::invalid_argument("Sequential::copy_params_from: shape mismatch");
        dst[i]->storage() = src[i]->storage();
    }
}

}  // namespace pipetune::nn
