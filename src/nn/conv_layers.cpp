#include "pipetune/nn/conv_layers.hpp"

#include <stdexcept>

#include "pipetune/tensor/ops.hpp"

namespace pipetune::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t filters, std::size_t kernel_size,
               util::Rng& rng)
    : Conv2D(in_channels, filters, kernel_size, kernel_size, rng) {}

Conv2D::Conv2D(std::size_t in_channels, std::size_t filters, std::size_t kernel_h,
               std::size_t kernel_w, util::Rng& rng)
    : kernel_(Tensor::xavier({filters, in_channels, kernel_h, kernel_w}, rng,
                             in_channels * kernel_h * kernel_w,
                             filters * kernel_h * kernel_w)),
      bias_({filters}),
      grad_kernel_({filters, in_channels, kernel_h, kernel_w}),
      grad_bias_({filters}) {
    if (in_channels == 0 || filters == 0 || kernel_h == 0 || kernel_w == 0)
        throw std::invalid_argument("Conv2D: dimensions must be > 0");
}

Tensor Conv2D::forward(const Tensor& input, bool /*training*/) {
    cached_input_ = input;
    return tensor::conv2d(input, kernel_, bias_);
}

Tensor Conv2D::backward(const Tensor& grad_output) {
    if (cached_input_.empty()) throw std::runtime_error("Conv2D::backward before forward");
    auto grads = tensor::conv2d_backward(cached_input_, kernel_, grad_output);
    grad_kernel_ += grads.grad_kernel;
    grad_bias_ += grads.grad_bias;
    return std::move(grads.grad_input);
}

std::unique_ptr<Layer> Conv2D::clone() const { return std::make_unique<Conv2D>(*this); }

MaxPool2D::MaxPool2D(std::size_t window) : window_(window) {
    if (window == 0) throw std::invalid_argument("MaxPool2D: window must be > 0");
}

Tensor MaxPool2D::forward(const Tensor& input, bool /*training*/) {
    cached_input_ = input;
    return tensor::maxpool2d(input, window_);
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
    return tensor::maxpool2d_backward(cached_input_, grad_output, window_);
}

AvgPool2D::AvgPool2D(std::size_t window) : window_(window) {
    if (window == 0) throw std::invalid_argument("AvgPool2D: window must be > 0");
}

Tensor AvgPool2D::forward(const Tensor& input, bool /*training*/) {
    cached_input_ = input;
    return tensor::avgpool2d(input, window_);
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
    return tensor::avgpool2d_backward(cached_input_, grad_output, window_);
}

Tensor GlobalMaxPoolH::forward(const Tensor& input, bool /*training*/) {
    cached_input_ = input;
    return tensor::global_maxpool_h(input);
}

Tensor GlobalMaxPoolH::backward(const Tensor& grad_output) {
    return tensor::global_maxpool_h_backward(cached_input_, grad_output);
}

Tensor ExpandToNCHW::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 3)
        throw std::invalid_argument("ExpandToNCHW: expected (batch, seq, embed)");
    return input.reshaped({input.dim(0), 1, input.dim(1), input.dim(2)});
}

Tensor ExpandToNCHW::backward(const Tensor& grad_output) {
    return grad_output.reshaped({grad_output.dim(0), grad_output.dim(2), grad_output.dim(3)});
}

}  // namespace pipetune::nn
