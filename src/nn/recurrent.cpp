#include "pipetune/nn/recurrent.hpp"

#include <cmath>
#include <stdexcept>

#include "pipetune/tensor/ops.hpp"

namespace pipetune::nn {

Embedding::Embedding(std::size_t vocab_size, std::size_t dim, util::Rng& rng)
    : vocab_(vocab_size),
      dim_(dim),
      table_(Tensor::normal({vocab_size, dim}, rng, 0.0f, 0.1f)),
      grad_table_({vocab_size, dim}) {
    if (vocab_size == 0 || dim == 0)
        throw std::invalid_argument("Embedding: vocab and dim must be > 0");
}

Tensor Embedding::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 2)
        throw std::invalid_argument("Embedding::forward: expected (batch, seq)");
    cached_input_ = input;
    const std::size_t batch = input.dim(0), seq = input.dim(1);
    Tensor out({batch, seq, dim_});
    for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t t = 0; t < seq; ++t) {
            const auto token = static_cast<std::size_t>(input(b, t));
            if (token >= vocab_)
                throw std::invalid_argument("Embedding::forward: token id out of vocabulary");
            const float* row = table_.data() + token * dim_;
            float* dst = out.data() + (b * seq + t) * dim_;
            for (std::size_t d = 0; d < dim_; ++d) dst[d] = row[d];
        }
    return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
    if (cached_input_.empty()) throw std::runtime_error("Embedding::backward before forward");
    const std::size_t batch = cached_input_.dim(0), seq = cached_input_.dim(1);
    if (grad_output.shape() != tensor::Shape{batch, seq, dim_})
        throw std::invalid_argument("Embedding::backward: grad shape mismatch");
    for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t t = 0; t < seq; ++t) {
            const auto token = static_cast<std::size_t>(cached_input_(b, t));
            float* grow = grad_table_.data() + token * dim_;
            const float* src = grad_output.data() + (b * seq + t) * dim_;
            for (std::size_t d = 0; d < dim_; ++d) grow[d] += src[d];
        }
    // Token ids are not differentiable; return a zero gradient of input shape
    // so Sequential can keep chaining (embedding is always the first layer).
    return Tensor(cached_input_.shape());
}

std::unique_ptr<Layer> Embedding::clone() const { return std::make_unique<Embedding>(*this); }

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim, util::Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      w_input_(Tensor::xavier({4 * hidden_dim, input_dim}, rng, input_dim, hidden_dim)),
      w_recur_(Tensor::xavier({4 * hidden_dim, hidden_dim}, rng, hidden_dim, hidden_dim)),
      bias_({4 * hidden_dim}),
      grad_w_input_({4 * hidden_dim, input_dim}),
      grad_w_recur_({4 * hidden_dim, hidden_dim}),
      grad_bias_({4 * hidden_dim}) {
    if (input_dim == 0 || hidden_dim == 0)
        throw std::invalid_argument("Lstm: dimensions must be > 0");
    // Standard trick: bias the forget gate open so gradients flow early on.
    for (std::size_t i = hidden_; i < 2 * hidden_; ++i) bias_[i] = 1.0f;
}

namespace {
inline float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Tensor Lstm::forward(const Tensor& input, bool /*training*/) {
    if (input.rank() != 3 || input.dim(2) != input_)
        throw std::invalid_argument("Lstm::forward: expected (batch, seq, " +
                                    std::to_string(input_) + ")");
    const std::size_t batch = input.dim(0), seq = input.dim(1);
    cached_batch_ = batch;
    steps_.clear();
    steps_.reserve(seq);

    Tensor h({batch, hidden_});
    Tensor c({batch, hidden_});
    for (std::size_t t = 0; t < seq; ++t) {
        StepCache step;
        step.x = Tensor({batch, input_});
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t d = 0; d < input_; ++d) step.x(b, d) = input(b, t, d);

        // pre = x W^T + h U^T + b : (batch, 4H)
        Tensor pre = tensor::matmul_transposed_b(step.x, w_input_);
        pre += tensor::matmul_transposed_b(h, w_recur_);
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t j = 0; j < 4 * hidden_; ++j) pre(b, j) += bias_[j];

        step.gates = Tensor({batch, 4 * hidden_});
        Tensor c_next({batch, hidden_});
        Tensor h_next({batch, hidden_});
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t j = 0; j < hidden_; ++j) {
                const float gi = sigmoid_scalar(pre(b, j));
                const float gf = sigmoid_scalar(pre(b, hidden_ + j));
                const float gg = std::tanh(pre(b, 2 * hidden_ + j));
                const float go = sigmoid_scalar(pre(b, 3 * hidden_ + j));
                step.gates(b, j) = gi;
                step.gates(b, hidden_ + j) = gf;
                step.gates(b, 2 * hidden_ + j) = gg;
                step.gates(b, 3 * hidden_ + j) = go;
                c_next(b, j) = gf * c(b, j) + gi * gg;
                h_next(b, j) = go * std::tanh(c_next(b, j));
            }
        step.c = c_next;
        step.h = h_next;
        steps_.push_back(std::move(step));
        h = std::move(h_next);
        c = std::move(c_next);
    }
    return h;
}

Tensor Lstm::backward(const Tensor& grad_output) {
    if (steps_.empty()) throw std::runtime_error("Lstm::backward before forward");
    const std::size_t batch = cached_batch_, seq = steps_.size();
    if (grad_output.shape() != tensor::Shape{batch, hidden_})
        throw std::invalid_argument("Lstm::backward: grad shape mismatch");

    Tensor grad_input({batch, seq, input_});
    Tensor dh = grad_output;        // dL/dh_t flowing backward
    Tensor dc({batch, hidden_});    // dL/dc_t flowing backward

    for (std::size_t ti = seq; ti-- > 0;) {
        const StepCache& step = steps_[ti];
        // c_{t-1} and h_{t-1}
        const Tensor* c_prev = ti > 0 ? &steps_[ti - 1].c : nullptr;
        const Tensor* h_prev = ti > 0 ? &steps_[ti - 1].h : nullptr;

        Tensor d_pre({batch, 4 * hidden_});
        Tensor dc_prev({batch, hidden_});
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t j = 0; j < hidden_; ++j) {
                const float gi = step.gates(b, j);
                const float gf = step.gates(b, hidden_ + j);
                const float gg = step.gates(b, 2 * hidden_ + j);
                const float go = step.gates(b, 3 * hidden_ + j);
                const float tanh_c = std::tanh(step.c(b, j));
                const float cp = c_prev ? (*c_prev)(b, j) : 0.0f;

                const float dh_bj = dh(b, j);
                const float dc_total = dc(b, j) + dh_bj * go * (1.0f - tanh_c * tanh_c);

                d_pre(b, j) = dc_total * gg * gi * (1.0f - gi);                     // input gate
                d_pre(b, hidden_ + j) = dc_total * cp * gf * (1.0f - gf);           // forget gate
                d_pre(b, 2 * hidden_ + j) = dc_total * gi * (1.0f - gg * gg);       // candidate
                d_pre(b, 3 * hidden_ + j) = dh_bj * tanh_c * go * (1.0f - go);      // output gate
                dc_prev(b, j) = dc_total * gf;
            }

        // Parameter gradients.
        grad_w_input_ += tensor::matmul_transposed_a(d_pre, step.x);
        if (h_prev) grad_w_recur_ += tensor::matmul_transposed_a(d_pre, *h_prev);
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t j = 0; j < 4 * hidden_; ++j) grad_bias_[j] += d_pre(b, j);

        // Input gradient for this timestep.
        Tensor dx = tensor::matmul(d_pre, w_input_);  // (batch, D)
        for (std::size_t b = 0; b < batch; ++b)
            for (std::size_t d = 0; d < input_; ++d) grad_input(b, ti, d) = dx(b, d);

        // Recurrent gradient for the previous hidden state.
        dh = tensor::matmul(d_pre, w_recur_);  // (batch, H)
        dc = std::move(dc_prev);
    }
    return grad_input;
}

std::unique_ptr<Layer> Lstm::clone() const { return std::make_unique<Lstm>(*this); }

}  // namespace pipetune::nn
