// AVX2 kernel instantiation. This TU is the only one compiled with -mavx2
// (plus -mno-fma -ffp-contract=off, which the bit-compatibility contract in
// simd.hpp depends on); when the toolchain or target cannot do that, the
// fallback stub below reports "no table" and dispatch stays scalar.

#include "simd_internal.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "simd_kernels.inl.hpp"

namespace pipetune::tensor::simd {
namespace {

struct Avx2Ops {
    static constexpr std::size_t kWidth = 8;
    using Reg = __m256;
    static Reg load(const float* p) { return _mm256_loadu_ps(p); }
    static void store(float* p, Reg r) { _mm256_storeu_ps(p, r); }
    static Reg set1(float v) { return _mm256_set1_ps(v); }
    static Reg zero() { return _mm256_setzero_ps(); }
    static Reg add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
    static Reg sub(Reg a, Reg b) { return _mm256_sub_ps(a, b); }
    static Reg mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
    static Reg div(Reg a, Reg b) { return _mm256_div_ps(a, b); }
    static Reg sqrt(Reg a) { return _mm256_sqrt_ps(a); }
    // vmaxps returns the SECOND operand when either input is NaN, so
    // max(x, 0) maps NaN -> +0 exactly like the scalar `x > 0 ? x : 0`.
    static Reg relu(Reg a) { return _mm256_max_ps(a, zero()); }
    // Ordered-quiet compare: NaN compares false, lane becomes +0 — again
    // matching the scalar ternary bitwise.
    static Reg mask_positive(Reg x, Reg g) {
        return _mm256_and_ps(_mm256_cmp_ps(x, zero(), _CMP_GT_OQ), g);
    }
};

const detail::KernelTable kAvx2Table = kernels::make_kernel_table<Avx2Ops>();

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace pipetune::tensor::simd

#else  // !__AVX2__

namespace pipetune::tensor::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace pipetune::tensor::simd::detail

#endif
