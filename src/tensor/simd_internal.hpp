#pragma once
// Private glue between the dispatcher (simd.cpp) and the per-ISA translation
// units. Not installed under include/: nothing outside src/tensor may depend
// on the table layout.

#include <cstddef>

#include "pipetune/tensor/simd.hpp"

namespace pipetune::tensor::simd::detail {

/// One function pointer per public kernel. simd.cpp owns the scalar table;
/// simd_avx2.cpp owns the AVX2 one (or reports nullptr when the build lacks
/// AVX2 support, e.g. non-x86 hosts).
struct KernelTable {
    void (*axpy)(std::size_t, float, const float*, float*);
    void (*scale)(std::size_t, float, float*);
    void (*relu)(std::size_t, const float*, float*);
    void (*relu_backward)(std::size_t, const float*, float*);
    float (*squared_norm)(std::size_t, const float*);
    void (*sgd_momentum_step)(std::size_t, float, float, float, float*, float*, float*);
    void (*adam_step)(std::size_t, const AdamStep&, float*, float*, float*, float*);
    void (*colwise_sum)(std::size_t, std::size_t, const float*, float*);
    void (*colwise_sq_dev_sum)(std::size_t, std::size_t, const float*, const float*, float*);
    void (*colwise_mul_sum)(std::size_t, std::size_t, const float*, const float*, float*);
    void (*bn_normalize)(std::size_t, std::size_t, const float*, const float*, const float*,
                         const float*, const float*, float*, float*);
    void (*bn_backward_apply)(std::size_t, std::size_t, const float*, const float*, const float*,
                              const float*, const float*, float, float*);
    void (*gemm)(std::size_t, std::size_t, std::size_t, const float*, const float*, float*);
    void (*gemm_bt)(std::size_t, std::size_t, std::size_t, const float*, const float*, float*);
    void (*gemm_at)(std::size_t, std::size_t, std::size_t, const float*, const float*, float*);
};

/// Defined in simd_avx2.cpp. nullptr when that TU was built without AVX2.
const KernelTable* avx2_table();

}  // namespace pipetune::tensor::simd::detail
