#include "pipetune/tensor/arena.hpp"

#include <algorithm>
#include <cstdint>

namespace pipetune::tensor {

namespace {
constexpr std::size_t kMinBlockFloats = 16 * 1024;  // 64 KiB
constexpr std::size_t kAlignFloats = Arena::kAlignment / sizeof(float);

std::size_t align_up(std::size_t n) {
    return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}
}  // namespace

float* Arena::alloc_floats(std::size_t n) {
    const std::size_t need = align_up(std::max<std::size_t>(n, 1));
    // Bump into the current block when it fits.
    while (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        if (block.capacity - block.used >= need) {
            float* p = block.base + block.used;
            block.used += need;
            high_water_floats_ = std::max(high_water_floats_, in_use_floats());
            return p;
        }
        // A later (larger) block may have room — blocks are only appended, so
        // advancing never skips free space created by rewind().
        if (current_ + 1 == blocks_.size()) break;
        ++current_;
    }
    // Grow: geometric in total capacity so repeated growth converges fast.
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.capacity;
    const std::size_t capacity = std::max({need, kMinBlockFloats, total});
    Block block;
    // Over-align by hand: unique_ptr<float[]> from new[] is 16-byte aligned
    // on most ABIs; pad and round the base pointer up to 32.
    block.data = std::make_unique<float[]>(capacity + kAlignFloats);
    auto raw = reinterpret_cast<std::uintptr_t>(block.data.get());
    const std::size_t skew =
        (Arena::kAlignment - raw % Arena::kAlignment) % Arena::kAlignment / sizeof(float);
    block.base = block.data.get() + skew;
    block.capacity = capacity;
    block.used = need;
    ++grow_count_;
    blocks_.push_back(std::move(block));
    current_ = blocks_.size() - 1;
    high_water_floats_ = std::max(high_water_floats_, in_use_floats());
    return blocks_.back().base;
}

void Arena::release_all() {
    if (blocks_.empty()) return;
    // Keep only the largest block: next campaign reuses the high-water buffer.
    std::size_t keep = 0;
    for (std::size_t i = 1; i < blocks_.size(); ++i)
        if (blocks_[i].capacity > blocks_[keep].capacity) keep = i;
    Block kept = std::move(blocks_[keep]);
    kept.used = 0;
    blocks_.clear();
    blocks_.push_back(std::move(kept));
    current_ = 0;
}

Arena::Mark Arena::mark() const {
    if (blocks_.empty()) return {0, 0};
    return {current_, blocks_[current_].used};
}

void Arena::rewind(const Mark& mark) {
    if (blocks_.empty()) return;
    for (std::size_t i = mark.block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
    if (mark.block < blocks_.size()) blocks_[mark.block].used = mark.used;
    current_ = std::min(mark.block, blocks_.size() - 1);
}

std::size_t Arena::in_use_floats() const {
    std::size_t used = 0;
    for (const Block& block : blocks_) used += block.used;
    return used;
}

Arena::Stats Arena::stats() const {
    Stats stats;
    for (const Block& block : blocks_) stats.capacity_bytes += block.capacity * sizeof(float);
    stats.in_use_bytes = in_use_floats() * sizeof(float);
    stats.high_water_bytes = high_water_floats_ * sizeof(float);
    stats.grow_count = grow_count_;
    return stats;
}

Arena& Arena::thread_local_arena() {
    static thread_local Arena arena;
    return arena;
}

}  // namespace pipetune::tensor
