#include "pipetune/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "pipetune/tensor/arena.hpp"
#include "pipetune/tensor/simd.hpp"

namespace pipetune::tensor {

Tensor relu(const Tensor& x) {
    Tensor y(x.shape());
    simd::relu(x.numel(), x.data(), y.data());
    return y;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& x) {
    if (grad_out.shape() != x.shape())
        throw std::invalid_argument("relu_backward: shape mismatch");
    Tensor grad = grad_out;
    simd::relu_backward(x.numel(), x.data(), grad.data());
    return grad;
}

Tensor sigmoid(const Tensor& x) {
    Tensor y = x;
    float* p = y.data();
    const std::size_t n = y.numel();
    for (std::size_t i = 0; i < n; ++i) p[i] = 1.0f / (1.0f + std::exp(-p[i]));
    return y;
}

Tensor sigmoid_backward(const Tensor& grad_out, const Tensor& y) {
    if (grad_out.shape() != y.shape())
        throw std::invalid_argument("sigmoid_backward: shape mismatch");
    Tensor grad = grad_out;
    for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= y[i] * (1.0f - y[i]);
    return grad;
}

Tensor tanh_act(const Tensor& x) {
    // Raw loop, not apply(): a std::function call per element costs more
    // than the tanh itself at LeNet activation sizes.
    Tensor y = x;
    float* p = y.data();
    const std::size_t n = y.numel();
    for (std::size_t i = 0; i < n; ++i) p[i] = std::tanh(p[i]);
    return y;
}

Tensor tanh_backward(const Tensor& grad_out, const Tensor& y) {
    if (grad_out.shape() != y.shape())
        throw std::invalid_argument("tanh_backward: shape mismatch");
    Tensor grad = grad_out;
    for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= 1.0f - y[i] * y[i];
    return grad;
}

Tensor softmax_rows(const Tensor& logits) {
    if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: expected rank-2");
    const std::size_t batch = logits.dim(0), classes = logits.dim(1);
    Tensor probs({batch, classes});
    for (std::size_t i = 0; i < batch; ++i) {
        float row_max = logits(i, 0);
        for (std::size_t c = 1; c < classes; ++c) row_max = std::max(row_max, logits(i, c));
        float total = 0.0f;
        for (std::size_t c = 0; c < classes; ++c) {
            const float e = std::exp(logits(i, c) - row_max);
            probs(i, c) = e;
            total += e;
        }
        for (std::size_t c = 0; c < classes; ++c) probs(i, c) /= total;
    }
    return probs;
}

float cross_entropy(const Tensor& probs, const std::vector<std::size_t>& labels) {
    if (probs.rank() != 2) throw std::invalid_argument("cross_entropy: expected rank-2");
    if (labels.size() != probs.dim(0))
        throw std::invalid_argument("cross_entropy: label count mismatch");
    constexpr float kEpsilon = 1e-9f;
    float loss = 0.0f;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] >= probs.dim(1))
            throw std::invalid_argument("cross_entropy: label out of range");
        loss -= std::log(probs(i, labels[i]) + kEpsilon);
    }
    return loss / static_cast<float>(labels.size());
}

Tensor softmax_cross_entropy_grad(const Tensor& probs, const std::vector<std::size_t>& labels) {
    if (labels.size() != probs.dim(0))
        throw std::invalid_argument("softmax_cross_entropy_grad: label count mismatch");
    Tensor grad = probs;
    const float inv_batch = 1.0f / static_cast<float>(probs.dim(0));
    for (std::size_t i = 0; i < labels.size(); ++i) grad(i, labels[i]) -= 1.0f;
    grad *= inv_batch;
    return grad;
}

namespace {
void require_conv_shapes(const Tensor& input, const Tensor& kernel) {
    if (input.rank() != 4 || kernel.rank() != 4)
        throw std::invalid_argument("conv2d: input and kernel must be rank-4 (NCHW / FCKhKw)");
    if (input.dim(1) != kernel.dim(1))
        throw std::invalid_argument("conv2d: channel mismatch");
    if (kernel.dim(2) > input.dim(2) || kernel.dim(3) > input.dim(3))
        throw std::invalid_argument("conv2d: kernel larger than input");
}

// Patch geometry shared by the im2col formulation below: one image becomes a
// (patch_len x patches) matrix with row q = (ci*kh + ky)*kw + kx and column
// p = y*ow + x. The GEMMs consume it k-major over q — the SAME (ci, ky, kx)
// order the naive conv accumulated in, so the GEMM-backed conv is
// bit-identical to it.
struct ConvDims {
    std::size_t c, h, w, f, kh, kw, oh, ow;
    std::size_t patches() const { return oh * ow; }
    std::size_t patch_len() const { return c * kh * kw; }
};

// Gather image `img` (C x H x W) into col (patch_len x patches, row-major).
// For a fixed (q, y) the source pixels are contiguous in x, so the whole
// gather is straight ow-length row copies — the patch-major layout needed a
// kw-element copy per (patch, ci, ky) and was the single largest scalar
// residue in epoch profiles (DESIGN.md §12).
void im2col(const ConvDims& d, const float* img, float* col) {
    for (std::size_t ci = 0; ci < d.c; ++ci)
        for (std::size_t ky = 0; ky < d.kh; ++ky)
            for (std::size_t kx = 0; kx < d.kw; ++kx) {
                float* qrow = col + ((ci * d.kh + ky) * d.kw + kx) * d.patches();
                const float* src = img + (ci * d.h + ky) * d.w + kx;
                for (std::size_t y = 0; y < d.oh; ++y)
                    std::memcpy(qrow + y * d.ow, src + y * d.w, d.ow * sizeof(float));
            }
}

// Scatter-add dcol (patches x patch_len) back onto the image gradient.
void col2im_add(const ConvDims& d, const float* dcol, float* gimg) {
    for (std::size_t y = 0; y < d.oh; ++y)
        for (std::size_t x = 0; x < d.ow; ++x) {
            const float* row = dcol + (y * d.ow + x) * d.patch_len();
            for (std::size_t ci = 0; ci < d.c; ++ci)
                for (std::size_t ky = 0; ky < d.kh; ++ky) {
                    float* gin_row = gimg + (ci * d.h + (y + ky)) * d.w + x;
                    const float* in_row = row + (ci * d.kh + ky) * d.kw;
                    for (std::size_t kx = 0; kx < d.kw; ++kx) gin_row[kx] += in_row[kx];
                }
        }
}
}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& kernel, const Tensor& bias) {
    require_conv_shapes(input, kernel);
    const std::size_t n = input.dim(0);
    const ConvDims d{input.dim(1), input.dim(2), input.dim(3), kernel.dim(0),
                     kernel.dim(2), kernel.dim(3), input.dim(2) - kernel.dim(2) + 1,
                     input.dim(3) - kernel.dim(3) + 1};
    if (bias.numel() != d.f) throw std::invalid_argument("conv2d: bias size mismatch");
    Tensor out({n, d.f, d.oh, d.ow});
    // out_b (F x P) = bias-broadcast + kernel (F x K) @ col (K x P): per
    // output element the k-sequential gemm accumulation replays the naive
    // (ci, ky, kx) loop starting from the bias value.
    ArenaScope scope;
    float* col = scope.alloc_floats(d.patches() * d.patch_len());
    for (std::size_t b = 0; b < n; ++b) {
        im2col(d, input.data() + b * d.c * d.h * d.w, col);
        float* out_b = out.data() + b * d.f * d.patches();
        for (std::size_t fo = 0; fo < d.f; ++fo)
            std::fill(out_b + fo * d.patches(), out_b + (fo + 1) * d.patches(), bias[fo]);
        simd::gemm(d.f, d.patch_len(), d.patches(), kernel.data(), col, out_b);
    }
    return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& kernel, const Tensor& grad_out) {
    require_conv_shapes(input, kernel);
    const std::size_t n = input.dim(0);
    const ConvDims d{input.dim(1), input.dim(2), input.dim(3), kernel.dim(0),
                     kernel.dim(2), kernel.dim(3), input.dim(2) - kernel.dim(2) + 1,
                     input.dim(3) - kernel.dim(3) + 1};
    if (grad_out.shape() != Shape{n, d.f, d.oh, d.ow})
        throw std::invalid_argument("conv2d_backward: grad_out shape mismatch");

    Conv2dGrads grads{Tensor({n, d.c, d.h, d.w}), Tensor({d.f, d.c, d.kh, d.kw}), Tensor({d.f})};
    ArenaScope scope;
    float* col = scope.alloc_floats(d.patches() * d.patch_len());
    float* dcol = scope.alloc_floats(d.patches() * d.patch_len());
    for (std::size_t b = 0; b < n; ++b) {
        im2col(d, input.data() + b * d.c * d.h * d.w, col);
        const float* gout_b = grad_out.data() + b * d.f * d.patches();
        for (std::size_t fo = 0; fo < d.f; ++fo) {
            float acc = grads.grad_bias[fo];
            const float* grow = gout_b + fo * d.patches();
            for (std::size_t p = 0; p < d.patches(); ++p) acc += grow[p];
            grads.grad_bias[fo] = acc;
        }
        // dK (F x K) += gout_b (F x P) @ col (K x P)^T
        simd::gemm_bt(d.f, d.patches(), d.patch_len(), gout_b, col, grads.grad_kernel.data());
        // dcol (P x K) = gout_b^T (P x F) @ kernel (F x K), then scatter.
        std::fill(dcol, dcol + d.patches() * d.patch_len(), 0.0f);
        simd::gemm_at(d.patches(), d.f, d.patch_len(), gout_b, kernel.data(), dcol);
        col2im_add(d, dcol, grads.grad_input.data() + b * d.c * d.h * d.w);
    }
    return grads;
}

Tensor maxpool2d(const Tensor& input, std::size_t window) {
    if (input.rank() != 4) throw std::invalid_argument("maxpool2d: input must be rank-4");
    if (window == 0) throw std::invalid_argument("maxpool2d: window must be > 0");
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (oh == 0 || ow == 0) throw std::invalid_argument("maxpool2d: window larger than input");
    Tensor out({n, c, oh, ow});
    // Pooling walks every activation element; raw plane pointers keep the
    // loop at one load per element (same max order as the indexed loop).
    const float* in = input.data();
    float* op = out.data();
    const std::size_t plane = h * w, out_plane = oh * ow;
    for (std::size_t bc = 0; bc < n * c; ++bc, in += plane, op += out_plane)
        for (std::size_t y = 0; y < oh; ++y)
            for (std::size_t x = 0; x < ow; ++x) {
                const float* win = in + (y * w + x) * window;
                float best = win[0];
                for (std::size_t dy = 0; dy < window; ++dy) {
                    const float* row = win + dy * w;
                    for (std::size_t dx = 0; dx < window; ++dx)
                        best = std::max(best, row[dx]);
                }
                op[y * ow + x] = best;
            }
    return out;
}

Tensor maxpool2d_backward(const Tensor& input, const Tensor& grad_out, std::size_t window) {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (grad_out.shape() != Shape{n, c, oh, ow})
        throw std::invalid_argument("maxpool2d_backward: grad_out shape mismatch");
    Tensor grad_in({n, c, h, w});
    // Same argmax scan order as the indexed loop (first strict maximum
    // wins), so the routed gradient is bit-identical to it.
    const float* in = input.data();
    const float* go = grad_out.data();
    float* gi = grad_in.data();
    const std::size_t plane = h * w, out_plane = oh * ow;
    for (std::size_t bc = 0; bc < n * c; ++bc, in += plane, go += out_plane, gi += plane)
        for (std::size_t y = 0; y < oh; ++y)
            for (std::size_t x = 0; x < ow; ++x) {
                const std::size_t base = (y * w + x) * window;
                std::size_t best_off = base;
                float best = in[base];
                for (std::size_t dy = 0; dy < window; ++dy) {
                    const std::size_t row = base + dy * w;
                    for (std::size_t dx = 0; dx < window; ++dx)
                        if (in[row + dx] > best) {
                            best = in[row + dx];
                            best_off = row + dx;
                        }
                }
                gi[best_off] += go[y * ow + x];
            }
    return grad_in;
}

Tensor avgpool2d(const Tensor& input, std::size_t window) {
    if (input.rank() != 4) throw std::invalid_argument("avgpool2d: input must be rank-4");
    if (window == 0) throw std::invalid_argument("avgpool2d: window must be > 0");
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (oh == 0 || ow == 0) throw std::invalid_argument("avgpool2d: window larger than input");
    const float inv = 1.0f / static_cast<float>(window * window);
    Tensor out({n, c, oh, ow});
    const float* in = input.data();
    float* op = out.data();
    const std::size_t plane = h * w, out_plane = oh * ow;
    for (std::size_t bc = 0; bc < n * c; ++bc, in += plane, op += out_plane)
        for (std::size_t y = 0; y < oh; ++y)
            for (std::size_t x = 0; x < ow; ++x) {
                const float* win = in + (y * w + x) * window;
                float acc = 0.0f;
                for (std::size_t dy = 0; dy < window; ++dy) {
                    const float* row = win + dy * w;
                    for (std::size_t dx = 0; dx < window; ++dx) acc += row[dx];
                }
                op[y * ow + x] = acc * inv;
            }
    return out;
}

Tensor avgpool2d_backward(const Tensor& input, const Tensor& grad_out, std::size_t window) {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (grad_out.shape() != Shape{n, c, oh, ow})
        throw std::invalid_argument("avgpool2d_backward: grad_out shape mismatch");
    const float inv = 1.0f / static_cast<float>(window * window);
    Tensor grad_in({n, c, h, w});
    const float* go = grad_out.data();
    float* gi = grad_in.data();
    const std::size_t plane = h * w, out_plane = oh * ow;
    for (std::size_t bc = 0; bc < n * c; ++bc, go += out_plane, gi += plane)
        for (std::size_t y = 0; y < oh; ++y)
            for (std::size_t x = 0; x < ow; ++x) {
                const float g = go[y * ow + x] * inv;
                float* win = gi + (y * w + x) * window;
                for (std::size_t dy = 0; dy < window; ++dy) {
                    float* row = win + dy * w;
                    for (std::size_t dx = 0; dx < window; ++dx) row[dx] += g;
                }
            }
    return grad_in;
}

Tensor global_maxpool_h(const Tensor& input) {
    if (input.rank() != 4) throw std::invalid_argument("global_maxpool_h: input must be rank-4");
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    Tensor out({n, c, 1, w});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t x = 0; x < w; ++x) {
                float best = input(b, ci, 0, x);
                for (std::size_t y = 1; y < h; ++y) best = std::max(best, input(b, ci, y, x));
                out(b, ci, 0, x) = best;
            }
    return out;
}

Tensor global_maxpool_h_backward(const Tensor& input, const Tensor& grad_out) {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    if (grad_out.shape() != Shape{n, c, 1, w})
        throw std::invalid_argument("global_maxpool_h_backward: grad_out shape mismatch");
    Tensor grad_in({n, c, h, w});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t x = 0; x < w; ++x) {
                std::size_t best_y = 0;
                float best = input(b, ci, 0, x);
                for (std::size_t y = 1; y < h; ++y)
                    if (input(b, ci, y, x) > best) {
                        best = input(b, ci, y, x);
                        best_y = y;
                    }
                grad_in(b, ci, best_y, x) += grad_out(b, ci, 0, x);
            }
    return grad_in;
}

}  // namespace pipetune::tensor
