#include "pipetune/tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace pipetune::tensor {

Tensor relu(const Tensor& x) {
    Tensor y = x;
    y.apply([](float v) { return v > 0.0f ? v : 0.0f; });
    return y;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& x) {
    if (grad_out.shape() != x.shape())
        throw std::invalid_argument("relu_backward: shape mismatch");
    Tensor grad = grad_out;
    for (std::size_t i = 0; i < grad.numel(); ++i)
        if (x[i] <= 0.0f) grad[i] = 0.0f;
    return grad;
}

Tensor sigmoid(const Tensor& x) {
    Tensor y = x;
    y.apply([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
    return y;
}

Tensor sigmoid_backward(const Tensor& grad_out, const Tensor& y) {
    if (grad_out.shape() != y.shape())
        throw std::invalid_argument("sigmoid_backward: shape mismatch");
    Tensor grad = grad_out;
    for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= y[i] * (1.0f - y[i]);
    return grad;
}

Tensor tanh_act(const Tensor& x) {
    Tensor y = x;
    y.apply([](float v) { return std::tanh(v); });
    return y;
}

Tensor tanh_backward(const Tensor& grad_out, const Tensor& y) {
    if (grad_out.shape() != y.shape())
        throw std::invalid_argument("tanh_backward: shape mismatch");
    Tensor grad = grad_out;
    for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= 1.0f - y[i] * y[i];
    return grad;
}

Tensor softmax_rows(const Tensor& logits) {
    if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: expected rank-2");
    const std::size_t batch = logits.dim(0), classes = logits.dim(1);
    Tensor probs({batch, classes});
    for (std::size_t i = 0; i < batch; ++i) {
        float row_max = logits(i, 0);
        for (std::size_t c = 1; c < classes; ++c) row_max = std::max(row_max, logits(i, c));
        float total = 0.0f;
        for (std::size_t c = 0; c < classes; ++c) {
            const float e = std::exp(logits(i, c) - row_max);
            probs(i, c) = e;
            total += e;
        }
        for (std::size_t c = 0; c < classes; ++c) probs(i, c) /= total;
    }
    return probs;
}

float cross_entropy(const Tensor& probs, const std::vector<std::size_t>& labels) {
    if (probs.rank() != 2) throw std::invalid_argument("cross_entropy: expected rank-2");
    if (labels.size() != probs.dim(0))
        throw std::invalid_argument("cross_entropy: label count mismatch");
    constexpr float kEpsilon = 1e-9f;
    float loss = 0.0f;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] >= probs.dim(1))
            throw std::invalid_argument("cross_entropy: label out of range");
        loss -= std::log(probs(i, labels[i]) + kEpsilon);
    }
    return loss / static_cast<float>(labels.size());
}

Tensor softmax_cross_entropy_grad(const Tensor& probs, const std::vector<std::size_t>& labels) {
    if (labels.size() != probs.dim(0))
        throw std::invalid_argument("softmax_cross_entropy_grad: label count mismatch");
    Tensor grad = probs;
    const float inv_batch = 1.0f / static_cast<float>(probs.dim(0));
    for (std::size_t i = 0; i < labels.size(); ++i) grad(i, labels[i]) -= 1.0f;
    grad *= inv_batch;
    return grad;
}

namespace {
void require_conv_shapes(const Tensor& input, const Tensor& kernel) {
    if (input.rank() != 4 || kernel.rank() != 4)
        throw std::invalid_argument("conv2d: input and kernel must be rank-4 (NCHW / FCKhKw)");
    if (input.dim(1) != kernel.dim(1))
        throw std::invalid_argument("conv2d: channel mismatch");
    if (kernel.dim(2) > input.dim(2) || kernel.dim(3) > input.dim(3))
        throw std::invalid_argument("conv2d: kernel larger than input");
}
}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& kernel, const Tensor& bias) {
    require_conv_shapes(input, kernel);
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t f = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
    if (bias.numel() != f) throw std::invalid_argument("conv2d: bias size mismatch");
    const std::size_t oh = h - kh + 1, ow = w - kw + 1;
    Tensor out({n, f, oh, ow});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t fo = 0; fo < f; ++fo) {
            const float bv = bias[fo];
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    float acc = bv;
                    for (std::size_t ci = 0; ci < c; ++ci)
                        for (std::size_t ky = 0; ky < kh; ++ky) {
                            const float* in_row = input.data() +
                                ((b * c + ci) * h + (y + ky)) * w + x;
                            const float* k_row = kernel.data() +
                                ((fo * c + ci) * kh + ky) * kw;
                            for (std::size_t kx = 0; kx < kw; ++kx)
                                acc += in_row[kx] * k_row[kx];
                        }
                    out(b, fo, y, x) = acc;
                }
        }
    return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& kernel, const Tensor& grad_out) {
    require_conv_shapes(input, kernel);
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t f = kernel.dim(0), kh = kernel.dim(2), kw = kernel.dim(3);
    const std::size_t oh = h - kh + 1, ow = w - kw + 1;
    if (grad_out.shape() != Shape{n, f, oh, ow})
        throw std::invalid_argument("conv2d_backward: grad_out shape mismatch");

    Conv2dGrads grads{Tensor({n, c, h, w}), Tensor({f, c, kh, kw}), Tensor({f})};
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t fo = 0; fo < f; ++fo)
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    const float g = grad_out(b, fo, y, x);
                    if (g == 0.0f) continue;
                    grads.grad_bias[fo] += g;
                    for (std::size_t ci = 0; ci < c; ++ci)
                        for (std::size_t ky = 0; ky < kh; ++ky) {
                            const float* in_row = input.data() +
                                ((b * c + ci) * h + (y + ky)) * w + x;
                            float* gin_row = grads.grad_input.data() +
                                ((b * c + ci) * h + (y + ky)) * w + x;
                            const float* k_row = kernel.data() + ((fo * c + ci) * kh + ky) * kw;
                            float* gk_row = grads.grad_kernel.data() + ((fo * c + ci) * kh + ky) * kw;
                            for (std::size_t kx = 0; kx < kw; ++kx) {
                                gk_row[kx] += g * in_row[kx];
                                gin_row[kx] += g * k_row[kx];
                            }
                        }
                }
    return grads;
}

Tensor maxpool2d(const Tensor& input, std::size_t window) {
    if (input.rank() != 4) throw std::invalid_argument("maxpool2d: input must be rank-4");
    if (window == 0) throw std::invalid_argument("maxpool2d: window must be > 0");
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (oh == 0 || ow == 0) throw std::invalid_argument("maxpool2d: window larger than input");
    Tensor out({n, c, oh, ow});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    float best = input(b, ci, y * window, x * window);
                    for (std::size_t dy = 0; dy < window; ++dy)
                        for (std::size_t dx = 0; dx < window; ++dx)
                            best = std::max(best, input(b, ci, y * window + dy, x * window + dx));
                    out(b, ci, y, x) = best;
                }
    return out;
}

Tensor maxpool2d_backward(const Tensor& input, const Tensor& grad_out, std::size_t window) {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (grad_out.shape() != Shape{n, c, oh, ow})
        throw std::invalid_argument("maxpool2d_backward: grad_out shape mismatch");
    Tensor grad_in({n, c, h, w});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    std::size_t best_y = y * window, best_x = x * window;
                    float best = input(b, ci, best_y, best_x);
                    for (std::size_t dy = 0; dy < window; ++dy)
                        for (std::size_t dx = 0; dx < window; ++dx) {
                            const float v = input(b, ci, y * window + dy, x * window + dx);
                            if (v > best) {
                                best = v;
                                best_y = y * window + dy;
                                best_x = x * window + dx;
                            }
                        }
                    grad_in(b, ci, best_y, best_x) += grad_out(b, ci, y, x);
                }
    return grad_in;
}

Tensor avgpool2d(const Tensor& input, std::size_t window) {
    if (input.rank() != 4) throw std::invalid_argument("avgpool2d: input must be rank-4");
    if (window == 0) throw std::invalid_argument("avgpool2d: window must be > 0");
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (oh == 0 || ow == 0) throw std::invalid_argument("avgpool2d: window larger than input");
    const float inv = 1.0f / static_cast<float>(window * window);
    Tensor out({n, c, oh, ow});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    float acc = 0.0f;
                    for (std::size_t dy = 0; dy < window; ++dy)
                        for (std::size_t dx = 0; dx < window; ++dx)
                            acc += input(b, ci, y * window + dy, x * window + dx);
                    out(b, ci, y, x) = acc * inv;
                }
    return out;
}

Tensor avgpool2d_backward(const Tensor& input, const Tensor& grad_out, std::size_t window) {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const std::size_t oh = h / window, ow = w / window;
    if (grad_out.shape() != Shape{n, c, oh, ow})
        throw std::invalid_argument("avgpool2d_backward: grad_out shape mismatch");
    const float inv = 1.0f / static_cast<float>(window * window);
    Tensor grad_in({n, c, h, w});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t y = 0; y < oh; ++y)
                for (std::size_t x = 0; x < ow; ++x) {
                    const float g = grad_out(b, ci, y, x) * inv;
                    for (std::size_t dy = 0; dy < window; ++dy)
                        for (std::size_t dx = 0; dx < window; ++dx)
                            grad_in(b, ci, y * window + dy, x * window + dx) += g;
                }
    return grad_in;
}

Tensor global_maxpool_h(const Tensor& input) {
    if (input.rank() != 4) throw std::invalid_argument("global_maxpool_h: input must be rank-4");
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    Tensor out({n, c, 1, w});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t x = 0; x < w; ++x) {
                float best = input(b, ci, 0, x);
                for (std::size_t y = 1; y < h; ++y) best = std::max(best, input(b, ci, y, x));
                out(b, ci, 0, x) = best;
            }
    return out;
}

Tensor global_maxpool_h_backward(const Tensor& input, const Tensor& grad_out) {
    const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    if (grad_out.shape() != Shape{n, c, 1, w})
        throw std::invalid_argument("global_maxpool_h_backward: grad_out shape mismatch");
    Tensor grad_in({n, c, h, w});
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t ci = 0; ci < c; ++ci)
            for (std::size_t x = 0; x < w; ++x) {
                std::size_t best_y = 0;
                float best = input(b, ci, 0, x);
                for (std::size_t y = 1; y < h; ++y)
                    if (input(b, ci, y, x) > best) {
                        best = input(b, ci, y, x);
                        best_y = y;
                    }
                grad_in(b, ci, best_y, x) += grad_out(b, ci, 0, x);
            }
    return grad_in;
}

}  // namespace pipetune::tensor
