// Scalar kernel instantiation + the runtime ISA dispatcher (DESIGN.md §12).

#include "pipetune/tensor/simd.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "simd_internal.hpp"
#include "simd_kernels.inl.hpp"

namespace pipetune::tensor::simd {

namespace {

// Width-1 policy: plain IEEE float ops, the reference semantics every other
// ISA must reproduce bitwise.
struct ScalarOps {
    static constexpr std::size_t kWidth = 1;
    using Reg = float;
    static Reg load(const float* p) { return *p; }
    static void store(float* p, Reg r) { *p = r; }
    static Reg set1(float v) { return v; }
    static Reg zero() { return 0.0f; }
    static Reg add(Reg a, Reg b) { return a + b; }
    static Reg sub(Reg a, Reg b) { return a - b; }
    static Reg mul(Reg a, Reg b) { return a * b; }
    static Reg div(Reg a, Reg b) { return a / b; }
    static Reg sqrt(Reg a) { return std::sqrt(a); }
    static Reg relu(Reg a) { return a > 0.0f ? a : 0.0f; }
    static Reg mask_positive(Reg x, Reg g) { return x > 0.0f ? g : 0.0f; }
};

const detail::KernelTable kScalarTable = kernels::make_kernel_table<ScalarOps>();

const detail::KernelTable* table_for(Isa isa) {
    return isa == Isa::kAvx2 ? detail::avx2_table() : &kScalarTable;
}

struct Dispatch {
    Isa isa;
    const detail::KernelTable* table;
};

Dispatch& dispatch() {
    static Dispatch d{best_isa(), table_for(best_isa())};
    return d;
}

}  // namespace

const char* to_string(Isa isa) { return isa == Isa::kAvx2 ? "avx2" : "scalar"; }

Isa best_isa() {
    static const Isa best = [] {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
        if (detail::avx2_table() != nullptr && __builtin_cpu_supports("avx2"))
            return Isa::kAvx2;
#endif
        return Isa::kScalar;
    }();
    return best;
}

Isa active_isa() { return dispatch().isa; }

Isa force_isa(Isa isa) {
    if (isa == Isa::kAvx2 && best_isa() != Isa::kAvx2)
        throw std::invalid_argument(std::string("force_isa: host cannot run ") + to_string(isa));
    Dispatch& d = dispatch();
    const Isa previous = d.isa;
    d.isa = isa;
    d.table = table_for(isa);
    return previous;
}

void reset_isa() { force_isa(best_isa()); }

void axpy(std::size_t n, float alpha, const float* x, float* y) {
    dispatch().table->axpy(n, alpha, x, y);
}
void scale(std::size_t n, float alpha, float* x) { dispatch().table->scale(n, alpha, x); }
void relu(std::size_t n, const float* x, float* y) { dispatch().table->relu(n, x, y); }
void relu_backward(std::size_t n, const float* x, float* g) {
    dispatch().table->relu_backward(n, x, g);
}
float squared_norm(std::size_t n, const float* x) { return dispatch().table->squared_norm(n, x); }
void sgd_momentum_step(std::size_t n, float lr, float mu, float wd, float* w, float* g,
                       float* v) {
    dispatch().table->sgd_momentum_step(n, lr, mu, wd, w, g, v);
}
void adam_step(std::size_t n, const AdamStep& step, float* w, float* g, float* m, float* v) {
    dispatch().table->adam_step(n, step, w, g, m, v);
}
void colwise_sum(std::size_t rows, std::size_t cols, const float* x, float* acc) {
    dispatch().table->colwise_sum(rows, cols, x, acc);
}
void colwise_sq_dev_sum(std::size_t rows, std::size_t cols, const float* x, const float* mean,
                        float* acc) {
    dispatch().table->colwise_sq_dev_sum(rows, cols, x, mean, acc);
}
void colwise_mul_sum(std::size_t rows, std::size_t cols, const float* a, const float* b,
                     float* acc) {
    dispatch().table->colwise_mul_sum(rows, cols, a, b, acc);
}
void bn_normalize(std::size_t rows, std::size_t cols, const float* x, const float* mean,
                  const float* inv_std, const float* gamma, const float* beta, float* x_hat,
                  float* y) {
    dispatch().table->bn_normalize(rows, cols, x, mean, inv_std, gamma, beta, x_hat, y);
}
void bn_backward_apply(std::size_t rows, std::size_t cols, const float* dy, const float* x_hat,
                       const float* scale, const float* sum_dy, const float* sum_dy_xhat,
                       float batch_n, float* dx) {
    dispatch().table->bn_backward_apply(rows, cols, dy, x_hat, scale, sum_dy, sum_dy_xhat,
                                        batch_n, dx);
}
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
          float* c) {
    dispatch().table->gemm(m, k, n, a, b, c);
}
void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
             float* c) {
    dispatch().table->gemm_bt(m, k, n, a, b, c);
}
void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
             float* c) {
    dispatch().table->gemm_at(m, k, n, a, b, c);
}

}  // namespace pipetune::tensor::simd
