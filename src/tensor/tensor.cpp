#include "pipetune/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "pipetune/tensor/simd.hpp"

namespace pipetune::tensor {

std::size_t shape_numel(const Shape& shape) {
    std::size_t n = 1;
    for (std::size_t d : shape) n *= d;
    return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i) out << ", ";
        out << shape[i];
    }
    out << "]";
    return out.str();
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
    if (shape_numel(shape_) != data_.size())
        throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                    " does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
    Tensor t(std::move(shape));
    for (auto& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor Tensor::normal(Shape shape, util::Rng& rng, float mean, float stddev) {
    Tensor t(std::move(shape));
    for (auto& x : t.data_) x = static_cast<float>(rng.normal(mean, stddev));
    return t;
}

Tensor Tensor::xavier(Shape shape, util::Rng& rng, std::size_t fan_in, std::size_t fan_out) {
    const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return uniform(std::move(shape), rng, -limit, limit);
}

std::size_t Tensor::dim(std::size_t axis) const {
    if (axis >= shape_.size())
        throw std::invalid_argument("Tensor::dim: axis " + std::to_string(axis) +
                                    " out of range for shape " + shape_to_string(shape_));
    return shape_[axis];
}

void Tensor::throw_rank_mismatch(const char* what) const {
    throw std::invalid_argument(std::string(what) + ": rank mismatch, shape is " +
                                shape_to_string(shape_));
}

float& Tensor::at(std::size_t flat_index) {
    if (flat_index >= data_.size()) throw std::out_of_range("Tensor::at: index out of range");
    return data_[flat_index];
}
float Tensor::at(std::size_t flat_index) const { return const_cast<Tensor&>(*this).at(flat_index); }

Tensor Tensor::reshaped(Shape new_shape) const {
    Tensor copy = *this;
    copy.reshape(std::move(new_shape));
    return copy;
}

void Tensor::reshape(Shape new_shape) {
    if (shape_numel(new_shape) != data_.size())
        throw std::invalid_argument("Tensor::reshape: numel mismatch, " +
                                    shape_to_string(shape_) + " -> " + shape_to_string(new_shape));
    shape_ = std::move(new_shape);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::apply(const std::function<float(float)>& fn) {
    for (auto& x : data_) x = fn(x);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
    if (shape_ != other.shape_)
        throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                    shape_to_string(shape_) + " vs " + shape_to_string(other.shape_));
}

Tensor& Tensor::operator+=(const Tensor& other) {
    check_same_shape(other, "Tensor+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
    check_same_shape(other, "Tensor-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
    check_same_shape(other, "Tensor*=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
    return *this;
}

Tensor& Tensor::operator+=(float scalar) {
    for (auto& x : data_) x += scalar;
    return *this;
}

Tensor& Tensor::operator*=(float scalar) {
    simd::scale(data_.size(), scalar, data_.data());
    return *this;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
    check_same_shape(other, "Tensor::add_scaled");
    simd::axpy(data_.size(), alpha, other.data_.data(), data_.data());
}

float Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0f); }

float Tensor::max() const {
    if (data_.empty()) throw std::runtime_error("Tensor::max: empty tensor");
    return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
    if (data_.empty()) throw std::runtime_error("Tensor::min: empty tensor");
    return *std::min_element(data_.begin(), data_.end());
}

float Tensor::mean() const {
    if (data_.empty()) return 0.0f;
    return sum() / static_cast<float>(data_.size());
}

float Tensor::squared_norm() const { return simd::squared_norm(data_.size(), data_.data()); }

std::size_t Tensor::argmax() const {
    if (data_.empty()) throw std::runtime_error("Tensor::argmax: empty tensor");
    return static_cast<std::size_t>(
        std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
Tensor operator*(Tensor lhs, float scalar) { return lhs *= scalar; }
Tensor operator*(float scalar, Tensor rhs) { return rhs *= scalar; }

namespace {
void require_matmul_shapes(const Tensor& a, const Tensor& b, std::size_t a_cols,
                           std::size_t b_rows, const char* op) {
    if (a.rank() != 2 || b.rank() != 2)
        throw std::invalid_argument(std::string(op) + ": operands must be rank-2");
    if (a_cols != b_rows)
        throw std::invalid_argument(std::string(op) + ": inner dimension mismatch " +
                                    shape_to_string(a.shape()) + " x " + shape_to_string(b.shape()));
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
    require_matmul_shapes(a, b, a.rank() == 2 ? a.dim(1) : 0, b.rank() == 2 ? b.dim(0) : 0,
                          "matmul");
    const std::size_t rows = a.dim(0), inner = a.dim(1), cols = b.dim(1);
    Tensor c({rows, cols});
    simd::gemm(rows, inner, cols, a.data(), b.data(), c.data());
    return c;
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
    // c[i][j] = sum_k a[i][k] * b[j][k]
    require_matmul_shapes(a, b, a.rank() == 2 ? a.dim(1) : 0, b.rank() == 2 ? b.dim(1) : 0,
                          "matmul_transposed_b");
    const std::size_t rows = a.dim(0), inner = a.dim(1), cols = b.dim(0);
    Tensor c({rows, cols});
    simd::gemm_bt(rows, inner, cols, a.data(), b.data(), c.data());
    return c;
}

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
    // c[i][j] = sum_k a[k][i] * b[k][j]
    require_matmul_shapes(a, b, a.rank() == 2 ? a.dim(0) : 0, b.rank() == 2 ? b.dim(0) : 0,
                          "matmul_transposed_a");
    const std::size_t rows = a.dim(1), inner = a.dim(0), cols = b.dim(1);
    Tensor c({rows, cols});
    simd::gemm_at(rows, inner, cols, a.data(), b.data(), c.data());
    return c;
}

Tensor transpose(const Tensor& a) {
    if (a.rank() != 2) throw std::invalid_argument("transpose: operand must be rank-2");
    const std::size_t rows = a.dim(0), cols = a.dim(1);
    Tensor t({cols, rows});
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j) t(j, i) = a(i, j);
    return t;
}

}  // namespace pipetune::tensor
