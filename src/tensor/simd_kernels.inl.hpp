#pragma once
// Width-templated kernel bodies, included by BOTH simd.cpp (scalar, W=1) and
// simd_avx2.cpp (AVX2, W=8). One loop structure instantiated per ISA is what
// makes the bit-compatibility guarantee in simd.hpp hold: every output
// element is accumulated in the same order on every path, tails use the same
// scalar expression trees as the vector bodies, and nothing here may fuse a
// multiply-add (both TUs compile with -ffp-contract=off / -mno-fma).
//
// The policy `V` supplies: kWidth, Reg, load/store (unaligned), set1, zero,
// add/sub/mul/div, sqrt (IEEE correctly-rounded, so scalar sqrtss and vector
// vsqrtps agree bitwise), relu (max(x, 0) with NaN -> 0), and
// mask_positive(x, g) (g where x > 0, else +0).

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "pipetune/tensor/arena.hpp"
#include "simd_internal.hpp"

namespace pipetune::tensor::simd::kernels {

template <class V>
void k_axpy(std::size_t n, float alpha, const float* x, float* y) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    const auto va = V::set1(alpha);
    for (std::size_t i = 0; i < main_n; i += W)
        V::store(y + i, V::add(V::load(y + i), V::mul(va, V::load(x + i))));
    for (std::size_t i = main_n; i < n; ++i) y[i] = y[i] + alpha * x[i];
}

template <class V>
void k_scale(std::size_t n, float alpha, float* x) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    const auto va = V::set1(alpha);
    for (std::size_t i = 0; i < main_n; i += W) V::store(x + i, V::mul(va, V::load(x + i)));
    for (std::size_t i = main_n; i < n; ++i) x[i] = alpha * x[i];
}

template <class V>
void k_relu(std::size_t n, const float* x, float* y) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    for (std::size_t i = 0; i < main_n; i += W) V::store(y + i, V::relu(V::load(x + i)));
    for (std::size_t i = main_n; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

template <class V>
void k_relu_backward(std::size_t n, const float* x, float* g) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    for (std::size_t i = 0; i < main_n; i += W)
        V::store(g + i, V::mask_positive(V::load(x + i), V::load(g + i)));
    for (std::size_t i = main_n; i < n; ++i) g[i] = x[i] > 0.0f ? g[i] : 0.0f;
}

// Reduction with a FIXED accumulation geometry: 8 slots, slot l accumulating
// elements l, l+8, l+16, ... in index order, then a sequential slot sum. The
// AVX2 instantiation's vector lanes ARE those slots, so both ISAs perform
// bit-identical arithmetic (which is deliberately NOT the order a plain
// sequential loop would use).
template <class V>
float k_squared_norm(std::size_t n, const float* x) {
    constexpr std::size_t kSlots = 8;
    float slots[kSlots] = {};
    const std::size_t main_n = n / kSlots * kSlots;
    if constexpr (V::kWidth == kSlots) {
        auto acc = V::zero();
        for (std::size_t i = 0; i < main_n; i += kSlots) {
            const auto xv = V::load(x + i);
            acc = V::add(acc, V::mul(xv, xv));
        }
        V::store(slots, acc);
    } else {
        for (std::size_t i = 0; i < main_n; i += kSlots)
            for (std::size_t l = 0; l < kSlots; ++l) slots[l] = slots[l] + x[i + l] * x[i + l];
    }
    for (std::size_t i = main_n; i < n; ++i) slots[i - main_n] = slots[i - main_n] + x[i] * x[i];
    float total = 0.0f;
    for (std::size_t l = 0; l < kSlots; ++l) total += slots[l];
    return total;
}

template <class V>
void k_sgd_momentum_step(std::size_t n, float lr, float mu, float wd, float* w, float* g,
                         float* v) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    const auto vlr = V::set1(lr);
    const auto vmu = V::set1(mu);
    const auto vwd = V::set1(wd);
    const auto vzero = V::zero();
    for (std::size_t i = 0; i < main_n; i += W) {
        const auto grad = V::add(V::load(g + i), V::mul(vwd, V::load(w + i)));
        const auto vel = V::sub(V::mul(vmu, V::load(v + i)), V::mul(vlr, grad));
        V::store(v + i, vel);
        V::store(w + i, V::add(V::load(w + i), vel));
        V::store(g + i, vzero);
    }
    for (std::size_t i = main_n; i < n; ++i) {
        const float grad = g[i] + wd * w[i];
        v[i] = mu * v[i] - lr * grad;
        w[i] = w[i] + v[i];
        g[i] = 0.0f;
    }
}

template <class V>
void k_adam_step(std::size_t n, const AdamStep& step, float* w, float* g, float* m, float* v) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    const auto vlr = V::set1(step.lr);
    const auto vb1 = V::set1(step.beta1);
    const auto vb2 = V::set1(step.beta2);
    const auto vc1 = V::set1(1.0f - step.beta1);
    const auto vc2 = V::set1(1.0f - step.beta2);
    const auto veps = V::set1(step.epsilon);
    const auto vwd = V::set1(step.weight_decay);
    const auto vbias1 = V::set1(step.bias1);
    const auto vbias2 = V::set1(step.bias2);
    const auto vzero = V::zero();
    for (std::size_t i = 0; i < main_n; i += W) {
        const auto grad = V::add(V::load(g + i), V::mul(vwd, V::load(w + i)));
        const auto m1 = V::add(V::mul(vb1, V::load(m + i)), V::mul(vc1, grad));
        const auto m2 = V::add(V::mul(vb2, V::load(v + i)), V::mul(V::mul(vc2, grad), grad));
        V::store(m + i, m1);
        V::store(v + i, m2);
        const auto m_hat = V::div(m1, vbias1);
        const auto v_hat = V::div(m2, vbias2);
        const auto delta = V::div(V::mul(vlr, m_hat), V::add(V::sqrt(v_hat), veps));
        V::store(w + i, V::sub(V::load(w + i), delta));
        V::store(g + i, vzero);
    }
    for (std::size_t i = main_n; i < n; ++i) {
        const float grad = g[i] + step.weight_decay * w[i];
        m[i] = step.beta1 * m[i] + (1.0f - step.beta1) * grad;
        v[i] = step.beta2 * v[i] + ((1.0f - step.beta2) * grad) * grad;
        const float m_hat = m[i] / step.bias1;
        const float v_hat = v[i] / step.bias2;
        w[i] = w[i] - (step.lr * m_hat) / (std::sqrt(v_hat) + step.epsilon);
        g[i] = 0.0f;
    }
}

// ---- Column-wise kernels: lanes are columns, accumulation over rows runs
// in row order for every column on both ISAs. ----

template <class V>
void k_colwise_sum(std::size_t rows, std::size_t cols, const float* x, float* acc) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_c = cols / W * W;
    for (std::size_t j = 0; j < main_c; j += W) {
        auto a = V::load(acc + j);
        for (std::size_t i = 0; i < rows; ++i) a = V::add(a, V::load(x + i * cols + j));
        V::store(acc + j, a);
    }
    for (std::size_t j = main_c; j < cols; ++j) {
        float a = acc[j];
        for (std::size_t i = 0; i < rows; ++i) a = a + x[i * cols + j];
        acc[j] = a;
    }
}

template <class V>
void k_colwise_sq_dev_sum(std::size_t rows, std::size_t cols, const float* x, const float* mean,
                          float* acc) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_c = cols / W * W;
    for (std::size_t j = 0; j < main_c; j += W) {
        auto a = V::load(acc + j);
        const auto mv = V::load(mean + j);
        for (std::size_t i = 0; i < rows; ++i) {
            const auto d = V::sub(V::load(x + i * cols + j), mv);
            a = V::add(a, V::mul(d, d));
        }
        V::store(acc + j, a);
    }
    for (std::size_t j = main_c; j < cols; ++j) {
        float a = acc[j];
        for (std::size_t i = 0; i < rows; ++i) {
            const float d = x[i * cols + j] - mean[j];
            a = a + d * d;
        }
        acc[j] = a;
    }
}

template <class V>
void k_colwise_mul_sum(std::size_t rows, std::size_t cols, const float* a, const float* b,
                       float* acc) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_c = cols / W * W;
    for (std::size_t j = 0; j < main_c; j += W) {
        auto s = V::load(acc + j);
        for (std::size_t i = 0; i < rows; ++i)
            s = V::add(s, V::mul(V::load(a + i * cols + j), V::load(b + i * cols + j)));
        V::store(acc + j, s);
    }
    for (std::size_t j = main_c; j < cols; ++j) {
        float s = acc[j];
        for (std::size_t i = 0; i < rows; ++i) s = s + a[i * cols + j] * b[i * cols + j];
        acc[j] = s;
    }
}

template <class V>
void k_bn_normalize(std::size_t rows, std::size_t cols, const float* x, const float* mean,
                    const float* inv_std, const float* gamma, const float* beta, float* x_hat,
                    float* y) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_c = cols / W * W;
    for (std::size_t i = 0; i < rows; ++i) {
        const float* xr = x + i * cols;
        float* xhr = x_hat + i * cols;
        float* yr = y + i * cols;
        for (std::size_t j = 0; j < main_c; j += W) {
            const auto xh = V::mul(V::sub(V::load(xr + j), V::load(mean + j)), V::load(inv_std + j));
            V::store(xhr + j, xh);
            V::store(yr + j, V::add(V::mul(V::load(gamma + j), xh), V::load(beta + j)));
        }
        for (std::size_t j = main_c; j < cols; ++j) {
            const float xh = (xr[j] - mean[j]) * inv_std[j];
            xhr[j] = xh;
            yr[j] = gamma[j] * xh + beta[j];
        }
    }
}

template <class V>
void k_bn_backward_apply(std::size_t rows, std::size_t cols, const float* dy, const float* x_hat,
                         const float* scale, const float* sum_dy, const float* sum_dy_xhat,
                         float batch_n, float* dx) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_c = cols / W * W;
    const auto vn = V::set1(batch_n);
    for (std::size_t i = 0; i < rows; ++i) {
        const float* dyr = dy + i * cols;
        const float* xhr = x_hat + i * cols;
        float* dxr = dx + i * cols;
        for (std::size_t j = 0; j < main_c; j += W) {
            const auto t = V::sub(V::sub(V::mul(vn, V::load(dyr + j)), V::load(sum_dy + j)),
                                  V::mul(V::load(xhr + j), V::load(sum_dy_xhat + j)));
            V::store(dxr + j, V::mul(V::load(scale + j), t));
        }
        for (std::size_t j = main_c; j < cols; ++j)
            dxr[j] = scale[j] * (batch_n * dyr[j] - sum_dy[j] - xhr[j] * sum_dy_xhat[j]);
    }
}

// ---- GEMM kernels. Every C element is accumulated strictly k-sequentially
// starting from its incoming value, on both ISAs and in every tail, so a
// register accumulator, a memory round-trip, or any blocking choice all
// yield the same bits. Lanes always span columns of C (independent
// elements), never the k reduction. ----

inline constexpr std::size_t kGemmRowTile = 4;  ///< A rows sharing one B load

template <class V>
void k_gemm(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
            float* c) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t jw = 2 * W;  // 4 rows x 2 vectors: 8 live accumulators
    const std::size_t main_n = n / jw * jw;
    for (std::size_t i0 = 0; i0 < m; i0 += kGemmRowTile) {
        const std::size_t rows = std::min(kGemmRowTile, m - i0);
        for (std::size_t j0 = 0; j0 < main_n; j0 += jw) {
            typename V::Reg acc0[kGemmRowTile];
            typename V::Reg acc1[kGemmRowTile];
            for (std::size_t r = 0; r < rows; ++r) {
                acc0[r] = V::load(c + (i0 + r) * n + j0);
                acc1[r] = V::load(c + (i0 + r) * n + j0 + W);
            }
            for (std::size_t kk = 0; kk < k; ++kk) {
                const auto b0 = V::load(b + kk * n + j0);
                const auto b1 = V::load(b + kk * n + j0 + W);
                for (std::size_t r = 0; r < rows; ++r) {
                    const auto av = V::set1(a[(i0 + r) * k + kk]);
                    acc0[r] = V::add(acc0[r], V::mul(av, b0));
                    acc1[r] = V::add(acc1[r], V::mul(av, b1));
                }
            }
            for (std::size_t r = 0; r < rows; ++r) {
                V::store(c + (i0 + r) * n + j0, acc0[r]);
                V::store(c + (i0 + r) * n + j0 + W, acc1[r]);
            }
        }
        for (std::size_t j = main_n; j < n; ++j)
            for (std::size_t r = 0; r < rows; ++r) {
                float acc = c[(i0 + r) * n + j];
                const float* arow = a + (i0 + r) * k;
                for (std::size_t kk = 0; kk < k; ++kk) acc = acc + arow[kk] * b[kk * n + j];
                c[(i0 + r) * n + j] = acc;
            }
    }
}

template <class V>
void k_gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
               float* c) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    // Pack W rows of B k-interleaved (panel[kk*W + l] = b[j0+l][kk]) so the
    // vector loop reads one contiguous vector per k step and each lane's
    // accumulation stays k-sequential — a straight lane-parallel dot product
    // would reassociate the reduction and break bit-compatibility.
    ArenaScope scope;
    float* panel = main_n > 0 ? scope.alloc_floats(k * W) : nullptr;
    for (std::size_t j0 = 0; j0 < main_n; j0 += W) {
        for (std::size_t kk = 0; kk < k; ++kk)
            for (std::size_t l = 0; l < W; ++l) panel[kk * W + l] = b[(j0 + l) * k + kk];
        for (std::size_t i0 = 0; i0 < m; i0 += kGemmRowTile) {
            const std::size_t rows = std::min(kGemmRowTile, m - i0);
            typename V::Reg acc[kGemmRowTile];
            for (std::size_t r = 0; r < rows; ++r) acc[r] = V::load(c + (i0 + r) * n + j0);
            for (std::size_t kk = 0; kk < k; ++kk) {
                const auto bv = V::load(panel + kk * W);
                for (std::size_t r = 0; r < rows; ++r) {
                    const auto av = V::set1(a[(i0 + r) * k + kk]);
                    acc[r] = V::add(acc[r], V::mul(av, bv));
                }
            }
            for (std::size_t r = 0; r < rows; ++r) V::store(c + (i0 + r) * n + j0, acc[r]);
        }
    }
    for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = main_n; j < n; ++j) {
            float acc = c[i * n + j];
            const float* arow = a + i * k;
            const float* brow = b + j * k;
            for (std::size_t kk = 0; kk < k; ++kk) acc = acc + arow[kk] * brow[kk];
            c[i * n + j] = acc;
        }
}

template <class V>
void k_gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
               float* c) {
    constexpr std::size_t W = V::kWidth;
    const std::size_t main_n = n / W * W;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m;
        const float* brow = b + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            // Sparsity skip (gradients are often zero-heavy). The test is on
            // the shared scalar av, so both ISAs skip identical terms.
            if (av == 0.0f) continue;
            float* crow = c + i * n;
            const auto avv = V::set1(av);
            for (std::size_t j = 0; j < main_n; j += W)
                V::store(crow + j, V::add(V::load(crow + j), V::mul(avv, V::load(brow + j))));
            for (std::size_t j = main_n; j < n; ++j) crow[j] = crow[j] + av * brow[j];
        }
    }
}

template <class V>
constexpr detail::KernelTable make_kernel_table() {
    detail::KernelTable table{};
    table.axpy = &k_axpy<V>;
    table.scale = &k_scale<V>;
    table.relu = &k_relu<V>;
    table.relu_backward = &k_relu_backward<V>;
    table.squared_norm = &k_squared_norm<V>;
    table.sgd_momentum_step = &k_sgd_momentum_step<V>;
    table.adam_step = &k_adam_step<V>;
    table.colwise_sum = &k_colwise_sum<V>;
    table.colwise_sq_dev_sum = &k_colwise_sq_dev_sum<V>;
    table.colwise_mul_sum = &k_colwise_mul_sum<V>;
    table.bn_normalize = &k_bn_normalize<V>;
    table.bn_backward_apply = &k_bn_backward_apply<V>;
    table.gemm = &k_gemm<V>;
    table.gemm_bt = &k_gemm_bt<V>;
    table.gemm_at = &k_gemm_at<V>;
    return table;
}

}  // namespace pipetune::tensor::simd::kernels
