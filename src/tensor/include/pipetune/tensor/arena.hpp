#pragma once
// Bump-pointer scratch arena for kernel temporaries (DESIGN.md §12): im2col
// buffers, GEMM packing panels, batchnorm column statistics. The hot path
// allocates per-epoch scratch thousands of times; a thread-local arena turns
// each of those into a pointer bump. Capacity grows geometrically to the
// workload's high-water mark and is then reused forever, so steady-state
// epochs perform zero heap allocations for scratch.
//
// Lifetime rules (enforced by ArenaScope, see DESIGN.md §12):
//  - Scratch is valid until the enclosing ArenaScope is destroyed.
//  - Kernels nest (conv2d → gemm_bt): each opens its own scope; inner scopes
//    release their scratch on exit, outer scratch stays valid throughout.
//  - Scratch never escapes a kernel: anything returned to callers is a
//    Tensor with owning storage.
//  - The arena is thread-local; pointers must not cross threads.

#include <cstddef>
#include <memory>
#include <vector>

namespace pipetune::tensor {

class Arena {
public:
    static constexpr std::size_t kAlignment = 32;  ///< AVX2 register width

    Arena() = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// 32-byte-aligned scratch for `n` floats, valid until the enclosing
    /// scope releases it. n == 0 returns a non-null dummy pointer.
    float* alloc_floats(std::size_t n);

    /// Release everything. Keeps only the largest block so the steady state
    /// holds exactly one buffer at the high-water size.
    void release_all();

    struct Stats {
        std::size_t capacity_bytes = 0;    ///< total bytes across blocks
        std::size_t in_use_bytes = 0;      ///< bytes handed out right now
        std::size_t high_water_bytes = 0;  ///< max in_use ever observed
        std::size_t grow_count = 0;        ///< heap allocations since construction
    };
    Stats stats() const;

    /// The calling thread's arena (one per thread, created on first use).
    static Arena& thread_local_arena();

private:
    friend class ArenaScope;

    struct Block {
        std::unique_ptr<float[]> data;
        float* base = nullptr;     ///< data rounded up to kAlignment
        std::size_t capacity = 0;  ///< floats, measured from base
        std::size_t used = 0;      ///< floats, measured from base
    };

    struct Mark {
        std::size_t block = 0;
        std::size_t used = 0;
    };

    Mark mark() const;
    void rewind(const Mark& mark);
    std::size_t in_use_floats() const;

    std::vector<Block> blocks_;
    std::size_t current_ = 0;  ///< block new allocations bump into
    std::size_t high_water_floats_ = 0;
    std::size_t grow_count_ = 0;
};

/// RAII watermark: scratch allocated inside the scope is released when the
/// scope ends. Scopes nest; destruction order must match construction order
/// (automatic storage guarantees it).
class ArenaScope {
public:
    explicit ArenaScope(Arena& arena = Arena::thread_local_arena())
        : arena_(arena), mark_(arena.mark()) {}
    ~ArenaScope() { arena_.rewind(mark_); }
    ArenaScope(const ArenaScope&) = delete;
    ArenaScope& operator=(const ArenaScope&) = delete;

    float* alloc_floats(std::size_t n) { return arena_.alloc_floats(n); }

private:
    Arena& arena_;
    Arena::Mark mark_;
};

}  // namespace pipetune::tensor
