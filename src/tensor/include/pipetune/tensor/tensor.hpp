#pragma once
// Dense row-major float tensor. This is the numeric substrate of the NN
// engine (src/nn). It intentionally supports exactly what minibatch SGD on
// LeNet-5 / TextCNN / LSTM needs: contiguous storage, shape algebra,
// elementwise kernels and a blocked GEMM, all on CPU.
//
// Error handling: shape violations throw std::invalid_argument — they are
// programming errors at the layer-construction level and must not be silent.

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "pipetune/util/rng.hpp"

namespace pipetune::tensor {

using Shape = std::vector<std::size_t>;

std::size_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
public:
    Tensor() = default;
    explicit Tensor(Shape shape, float fill = 0.0f);
    Tensor(Shape shape, std::vector<float> data);

    static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
    static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
    static Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }
    /// Uniform in [lo, hi).
    static Tensor uniform(Shape shape, util::Rng& rng, float lo = -1.0f, float hi = 1.0f);
    /// Gaussian with the given std.
    static Tensor normal(Shape shape, util::Rng& rng, float mean = 0.0f, float stddev = 1.0f);
    /// Glorot/Xavier uniform init for a layer with the given fan-in/out.
    static Tensor xavier(Shape shape, util::Rng& rng, std::size_t fan_in, std::size_t fan_out);

    const Shape& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t numel() const { return data_.size(); }
    std::size_t dim(std::size_t axis) const;
    bool empty() const { return data_.empty(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::vector<float>& storage() { return data_; }
    const std::vector<float>& storage() const { return data_; }

    float& operator[](std::size_t flat_index) { return data_[flat_index]; }
    float operator[](std::size_t flat_index) const { return data_[flat_index]; }

    /// Multi-dimensional accessors (rank-checked, offsets unchecked in
    /// release — use at() for checked flat access). Defined inline: these
    /// sit on the per-element hot path of every conv/pool/dense loop, and an
    /// out-of-line call per element dominated epoch profiles (DESIGN.md §12).
    float& operator()(std::size_t i) {
        require_rank(1, "Tensor(i)");
        return data_[i];
    }
    float& operator()(std::size_t i, std::size_t j) {
        require_rank(2, "Tensor(i,j)");
        return data_[i * shape_[1] + j];
    }
    float& operator()(std::size_t i, std::size_t j, std::size_t k) {
        require_rank(3, "Tensor(i,j,k)");
        return data_[(i * shape_[1] + j) * shape_[2] + k];
    }
    float& operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
        require_rank(4, "Tensor(i,j,k,l)");
        return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
    }
    float operator()(std::size_t i) const { return const_cast<Tensor&>(*this)(i); }
    float operator()(std::size_t i, std::size_t j) const {
        return const_cast<Tensor&>(*this)(i, j);
    }
    float operator()(std::size_t i, std::size_t j, std::size_t k) const {
        return const_cast<Tensor&>(*this)(i, j, k);
    }
    float operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
        return const_cast<Tensor&>(*this)(i, j, k, l);
    }

    /// Bounds-checked flat access.
    float& at(std::size_t flat_index);
    float at(std::size_t flat_index) const;

    /// Reshape to a compatible shape (same numel); returns a copy with the new
    /// shape (storage is shared by value semantics: the copy is O(n) but the
    /// engine reshapes small activation tensors only).
    Tensor reshaped(Shape new_shape) const;
    /// In-place reshape.
    void reshape(Shape new_shape);

    void fill(float value);
    /// Elementwise in-place map.
    void apply(const std::function<float(float)>& fn);

    // In-place arithmetic (shapes must match exactly for tensor operands).
    Tensor& operator+=(const Tensor& other);
    Tensor& operator-=(const Tensor& other);
    Tensor& operator*=(const Tensor& other);
    Tensor& operator+=(float scalar);
    Tensor& operator*=(float scalar);

    /// this += alpha * other (axpy); the gradient-accumulation primitive.
    void add_scaled(const Tensor& other, float alpha);

    float sum() const;
    float max() const;
    float min() const;
    float mean() const;
    /// Squared L2 norm (used by gradient-norm tests).
    float squared_norm() const;
    /// Index of the maximum element.
    std::size_t argmax() const;

private:
    void check_same_shape(const Tensor& other, const char* op) const;
    void require_rank(std::size_t rank, const char* what) const {
        if (shape_.size() != rank) throw_rank_mismatch(what);
    }
    [[noreturn]] void throw_rank_mismatch(const char* what) const;  // cold path out of line

    Shape shape_;
    std::vector<float> data_;
};

// Value-returning arithmetic.
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);
Tensor operator*(float scalar, Tensor rhs);

/// C = A(BxM) @ B(MxN); 2-D only, blocked for cache friendliness.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A @ B^T without materializing the transpose.
Tensor matmul_transposed_b(const Tensor& a, const Tensor& b);
/// C = A^T @ B without materializing the transpose.
Tensor matmul_transposed_a(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor transpose(const Tensor& a);

}  // namespace pipetune::tensor
