#pragma once
// Runtime-dispatched SIMD kernels behind the tensor/nn hot path (DESIGN.md
// §12). Every kernel exists in two implementations — portable scalar and
// AVX2 — selected once at startup from CPUID (overridable for parity tests
// and benches via force_isa). Both implementations share one loop structure,
// accumulate each output element in the same order, and never use FMA, so
// the two paths are BIT-IDENTICAL: the parity suite asserts exact float
// equality, not tolerances. Anything that would break that (fused
// multiply-add, lane-order reductions) is deliberately excluded; reductions
// use a fixed 8-slot lane-strided accumulator pattern on both paths.
//
// All pointers are to contiguous float32; matrices are row-major. GEMM
// kernels ACCUMULATE (C += ...): callers zero- or bias-initialise C.

#include <cstddef>

namespace pipetune::tensor::simd {

enum class Isa { kScalar, kAvx2 };

const char* to_string(Isa isa);

/// Best ISA the host supports (CPUID, probed once).
Isa best_isa();
/// ISA the kernel table currently dispatches to.
Isa active_isa();
/// Override dispatch (parity tests, before/after benches). Returns the
/// previously active ISA. Throws std::invalid_argument when the host cannot
/// run `isa`. NOT thread-safe: call only while no kernel is in flight.
Isa force_isa(Isa isa);
/// Restore dispatch to best_isa().
void reset_isa();

// ---- Elementwise / fused update kernels ----

/// y += alpha * x  (the gradient-accumulation primitive)
void axpy(std::size_t n, float alpha, const float* x, float* y);
/// x *= alpha
void scale(std::size_t n, float alpha, float* x);
/// y[i] = x[i] > 0 ? x[i] : 0
void relu(std::size_t n, const float* x, float* y);
/// g[i] = 0 where x[i] <= 0 (in-place gradient mask)
void relu_backward(std::size_t n, const float* x, float* g);
/// sum(x[i]^2) with the fixed 8-slot lane-strided accumulation order
/// (identical on both ISAs; NOT the same order as a sequential loop).
float squared_norm(std::size_t n, const float* x);

/// Fused SGD+momentum+weight-decay update; zeroes g afterwards.
///   grad = g + wd*w;  v = mu*v - lr*grad;  w += v;  g = 0
void sgd_momentum_step(std::size_t n, float lr, float mu, float wd, float* w, float* g,
                       float* v);

struct AdamStep {
    float lr;
    float beta1;
    float beta2;
    float epsilon;
    float weight_decay;
    float bias1;  ///< 1 - beta1^t
    float bias2;  ///< 1 - beta2^t
};
/// Fused Adam update (bias-corrected moments); zeroes g afterwards.
void adam_step(std::size_t n, const AdamStep& step, float* w, float* g, float* m, float* v);

// ---- Column-wise kernels (x is rows x cols row-major; accumulation over
// rows happens in row order for every column — identical on both ISAs) ----

/// acc[j] += sum_i x(i, j)
void colwise_sum(std::size_t rows, std::size_t cols, const float* x, float* acc);
/// acc[j] += sum_i (x(i, j) - mean[j])^2
void colwise_sq_dev_sum(std::size_t rows, std::size_t cols, const float* x, const float* mean,
                        float* acc);
/// acc[j] += sum_i a(i, j) * b(i, j)
void colwise_mul_sum(std::size_t rows, std::size_t cols, const float* a, const float* b,
                     float* acc);
/// Fused batchnorm forward:
///   x_hat(i,j) = (x(i,j) - mean[j]) * inv_std[j];  y(i,j) = gamma[j]*x_hat + beta[j]
void bn_normalize(std::size_t rows, std::size_t cols, const float* x, const float* mean,
                  const float* inv_std, const float* gamma, const float* beta, float* x_hat,
                  float* y);
/// Fused batchnorm input-gradient:
///   dx(i,j) = scale[j] * (n*dy(i,j) - sum_dy[j] - x_hat(i,j)*sum_dy_xhat[j])
/// where scale[j] = gamma[j] * inv_std[j] / n is precomputed by the caller.
void bn_backward_apply(std::size_t rows, std::size_t cols, const float* dy, const float* x_hat,
                       const float* scale, const float* sum_dy, const float* sum_dy_xhat,
                       float batch_n, float* dx);

// ---- GEMM kernels (row-major, accumulate into C) ----

/// C(m,n) += A(m,k) @ B(k,n)
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
          float* c);
/// C(m,n) += A(m,k) @ B(n,k)^T  (B stored as n rows of length k)
void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
             float* c);
/// C(m,n) += A(k,m)^T @ B(k,n)
void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a, const float* b,
             float* c);

}  // namespace pipetune::tensor::simd
