#pragma once
// Neural-network kernels over Tensor: activations, softmax, valid 2-D
// convolution and max pooling, each with its backward pass. Layout is NCHW.
// These free functions are the compute inside the nn:: layers; keeping them
// here lets tests verify each kernel against finite differences in isolation.

#include "pipetune/tensor/tensor.hpp"

namespace pipetune::tensor {

// ---- Activations (elementwise) ----
Tensor relu(const Tensor& x);
/// dL/dx given dL/dy and the forward input x.
Tensor relu_backward(const Tensor& grad_out, const Tensor& x);
Tensor sigmoid(const Tensor& x);
/// dL/dx given dL/dy and the forward *output* y = sigmoid(x).
Tensor sigmoid_backward(const Tensor& grad_out, const Tensor& y);
Tensor tanh_act(const Tensor& x);
/// dL/dx given dL/dy and the forward *output* y = tanh(x).
Tensor tanh_backward(const Tensor& grad_out, const Tensor& y);

/// Row-wise softmax of a (batch, classes) tensor; numerically stabilized.
Tensor softmax_rows(const Tensor& logits);

/// Cross-entropy loss of row-softmax probabilities against integer labels;
/// returns mean loss. probs must be the output of softmax_rows.
float cross_entropy(const Tensor& probs, const std::vector<std::size_t>& labels);

/// Combined softmax+cross-entropy gradient: (probs - onehot(labels)) / batch.
Tensor softmax_cross_entropy_grad(const Tensor& probs, const std::vector<std::size_t>& labels);

// ---- Convolution (valid padding, unit stride, NCHW) ----
// input: (N, C, H, W), kernel: (F, C, KH, KW), bias: (F)
// output: (N, F, H-KH+1, W-KW+1)
Tensor conv2d(const Tensor& input, const Tensor& kernel, const Tensor& bias);

struct Conv2dGrads {
    Tensor grad_input;
    Tensor grad_kernel;
    Tensor grad_bias;
};
Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& kernel, const Tensor& grad_out);

// ---- Max pooling (non-overlapping window, NCHW) ----
// Truncates trailing rows/cols that do not fill a window (matches BigDL's
// default floor behaviour).
Tensor maxpool2d(const Tensor& input, std::size_t window);
/// Recomputes the argmax from the forward input (window small, cheap).
Tensor maxpool2d_backward(const Tensor& input, const Tensor& grad_out, std::size_t window);

// ---- Average pooling (non-overlapping window, NCHW) ----
Tensor avgpool2d(const Tensor& input, std::size_t window);
Tensor avgpool2d_backward(const Tensor& input, const Tensor& grad_out, std::size_t window);

/// Global max over the H dimension of a (N, C, H, W) tensor -> (N, C, 1, W).
/// Used as max-over-time pooling in the TextCNN.
Tensor global_maxpool_h(const Tensor& input);
Tensor global_maxpool_h_backward(const Tensor& input, const Tensor& grad_out);

}  // namespace pipetune::tensor
