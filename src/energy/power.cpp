#include "pipetune/energy/power.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pipetune/util/stats.hpp"

namespace pipetune::energy {

PowerModel::PowerModel(PowerModelConfig config) : config_(config) {
    if (config.idle_watts < 0 || config.per_core_watts < 0 || config.memory_watts_per_gb < 0 ||
        config.base_frequency_ghz <= 0)
        throw std::invalid_argument("PowerModel: invalid configuration");
}

double PowerModel::power_watts(std::size_t active_cores, double utilization, double mem_gb,
                               double frequency_ghz) const {
    if (utilization < 0 || utilization > 1)
        throw std::invalid_argument("PowerModel: utilization must be in [0, 1]");
    if (mem_gb < 0) throw std::invalid_argument("PowerModel: negative memory");
    if (frequency_ghz <= 0) throw std::invalid_argument("PowerModel: frequency must be > 0");
    const double freq_ratio = frequency_ghz / config_.base_frequency_ghz;
    const double dynamic = config_.per_core_watts * static_cast<double>(active_cores) *
                           utilization * freq_ratio * freq_ratio * freq_ratio;
    return config_.idle_watts + dynamic + config_.memory_watts_per_gb * mem_gb;
}

double PowerModel::power_watts(std::size_t active_cores, double utilization, double mem_gb) const {
    return power_watts(active_cores, utilization, mem_gb, config_.base_frequency_ghz);
}

Pdu::Pdu(PduConfig config, std::uint64_t seed) : config_(config), rng_(seed) {
    if (config.sample_interval_s <= 0 || config.resolution_watts <= 0 || config.precision < 0)
        throw std::invalid_argument("Pdu: invalid configuration");
}

std::vector<Pdu::Sample> Pdu::sample_interval(double power_watts, double duration_s) {
    if (power_watts < 0) throw std::invalid_argument("Pdu: negative power");
    if (duration_s <= 0) throw std::invalid_argument("Pdu: duration must be > 0");
    std::vector<Sample> samples;
    // Sample at t = 0, interval, 2*interval, ..., duration (endpoint included
    // so short intervals still produce an integrable pair).
    for (double t = 0.0;; t += config_.sample_interval_s) {
        const bool last = t >= duration_s;
        const double at = last ? duration_s : t;
        const double noisy = power_watts * (1.0 + rng_.normal(0.0, config_.precision));
        const double quantized =
            std::max(0.0, std::round(noisy / config_.resolution_watts) * config_.resolution_watts);
        samples.push_back({at, quantized});
        if (last) break;
    }
    return samples;
}

double Pdu::integrate(const std::vector<Sample>& samples) {
    std::vector<double> t, w;
    t.reserve(samples.size());
    w.reserve(samples.size());
    for (const auto& sample : samples) {
        t.push_back(sample.t);
        w.push_back(sample.watts);
    }
    return util::trapezoid(t, w);
}

double Pdu::measure_energy(double power_watts, double duration_s) {
    return integrate(sample_interval(power_watts, duration_s));
}

}  // namespace pipetune::energy
