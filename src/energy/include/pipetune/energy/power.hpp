#pragma once
// Cluster power/energy substrate.
//
// The paper measures power with a LINDY iPower Control PDU sampled up to
// every second at 1 W resolution and 1.5% precision, and estimates energy as
// the trapezoidal integral of those samples (§3.2, §7.1.1). We reproduce the
// pipeline: an analytic node power model (idle + dynamic per-core power with
// cubic frequency scaling), a PDU that quantizes and perturbs 1 Hz samples,
// and trapezoidal integration of the sampled series.

#include <cstdint>
#include <vector>

#include "pipetune/util/rng.hpp"

namespace pipetune::energy {

struct PowerModelConfig {
    /// Node baseline. The paper's Type-I/II machines are quad-socket Xeons;
    /// their platform idle dominates, which is why shorter runtimes translate
    /// into energy savings even at higher core counts (Fig 3c).
    double idle_watts = 120.0;
    double per_core_watts = 7.0;       ///< dynamic power of one busy core at base frequency
    double memory_watts_per_gb = 0.35; ///< DRAM refresh/activity per allocated GB
    double base_frequency_ghz = 2.4;
};

/// Analytic node power draw.
class PowerModel {
public:
    explicit PowerModel(PowerModelConfig config = {});

    /// Instantaneous draw with `active_cores` cores busy at `utilization`
    /// (0..1 each), `mem_gb` allocated, running at `frequency_ghz`.
    /// Dynamic power scales ~f^3 (DVFS), memory linearly.
    double power_watts(std::size_t active_cores, double utilization, double mem_gb,
                       double frequency_ghz) const;
    double power_watts(std::size_t active_cores, double utilization, double mem_gb) const;

    const PowerModelConfig& config() const { return config_; }

private:
    PowerModelConfig config_;
};

struct PduConfig {
    double sample_interval_s = 1.0;  ///< "up to every second"
    double resolution_watts = 1.0;   ///< "resolution of 1 W"
    double precision = 0.015;        ///< "1.5% precision"
};

/// Simulated power distribution unit: samples a power trace at 1 Hz with
/// quantization and gaussian precision error, then integrates trapezoidally.
class Pdu {
public:
    explicit Pdu(PduConfig config = {}, std::uint64_t seed = 1);

    struct Sample {
        double t;
        double watts;
    };

    /// Sample a constant-power interval; returns the recorded series.
    std::vector<Sample> sample_interval(double power_watts, double duration_s);

    /// Trapezoidal energy (joules) of a recorded series.
    static double integrate(const std::vector<Sample>& samples);

    /// Convenience: sample + integrate a constant-power interval in one call.
    double measure_energy(double power_watts, double duration_s);

    const PduConfig& config() const { return config_; }

private:
    PduConfig config_;
    util::Rng rng_;
};

}  // namespace pipetune::energy
