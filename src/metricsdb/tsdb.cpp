#include "pipetune/metricsdb/tsdb.hpp"

#include <cmath>
#include <stdexcept>

namespace pipetune::metricsdb {

void TimeSeriesDb::append(const std::string& series, Point point) {
    if (series.empty()) throw std::invalid_argument("TimeSeriesDb::append: empty series name");
    if (!std::isfinite(point.time) || !std::isfinite(point.value))
        throw std::invalid_argument(
            "TimeSeriesDb::append: non-finite time/value would not survive persistence");
    auto& points = series_[series];
    if (!points.empty() && point.time < points.back().time)
        throw std::invalid_argument("TimeSeriesDb::append: time must be non-decreasing within '" +
                                    series + "'");
    points.push_back(std::move(point));
}

void TimeSeriesDb::append(const std::string& series, double time, double value, TagSet tags) {
    append(series, Point{time, value, std::move(tags)});
}

bool TimeSeriesDb::tags_match(const TagSet& point_tags, const TagSet& filter) {
    for (const auto& [key, value] : filter) {
        auto it = point_tags.find(key);
        if (it == point_tags.end() || it->second != value) return false;
    }
    return true;
}

std::vector<Point> TimeSeriesDb::select(const Query& query) const {
    std::vector<Point> out;
    auto it = series_.find(query.series);
    if (it == series_.end()) return out;
    for (const auto& point : it->second) {
        if (query.from && point.time < *query.from) continue;
        if (query.to && point.time > *query.to) continue;
        if (!tags_match(point.tags, query.tags)) continue;
        out.push_back(point);
    }
    return out;
}

std::optional<double> TimeSeriesDb::mean(const Query& query) const {
    const auto points = select(query);
    if (points.empty()) return std::nullopt;
    double acc = 0.0;
    for (const auto& point : points) acc += point.value;
    return acc / static_cast<double>(points.size());
}

std::optional<double> TimeSeriesDb::last(const Query& query) const {
    const auto points = select(query);
    if (points.empty()) return std::nullopt;
    return points.back().value;
}

std::size_t TimeSeriesDb::count(const Query& query) const { return select(query).size(); }

std::vector<std::string> TimeSeriesDb::series_names() const {
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto& [name, _] : series_) names.push_back(name);
    return names;
}

std::size_t TimeSeriesDb::total_points() const {
    std::size_t n = 0;
    for (const auto& [_, points] : series_) n += points.size();
    return n;
}

void TimeSeriesDb::clear() { series_.clear(); }

util::Json TimeSeriesDb::to_json() const {
    util::Json json = util::Json::object();
    for (const auto& [name, points] : series_) {
        util::Json list = util::Json::array();
        for (const auto& point : points) {
            util::Json p;
            p["t"] = point.time;
            p["v"] = point.value;
            if (!point.tags.empty()) {
                util::Json tags = util::Json::object();
                for (const auto& [k, v] : point.tags) tags[k] = v;
                p["tags"] = std::move(tags);
            }
            list.push_back(std::move(p));
        }
        json[name] = std::move(list);
    }
    return json;
}

TimeSeriesDb TimeSeriesDb::from_json(const util::Json& json) {
    TimeSeriesDb db;
    for (const auto& [name, list] : json.as_object()) {
        for (const auto& p : list.as_array()) {
            Point point;
            point.time = p.at("t").as_number();
            point.value = p.at("v").as_number();
            if (p.contains("tags"))
                for (const auto& [k, v] : p.at("tags").as_object()) point.tags[k] = v.as_string();
            db.series_[name].push_back(std::move(point));
        }
    }
    return db;
}

void TimeSeriesDb::save(const std::string& path) const { to_json().save_file(path); }

util::Result<TimeSeriesDb> TimeSeriesDb::try_load(const std::string& path) {
    auto json = util::Json::try_load_file(path);
    if (!json) return util::Result<TimeSeriesDb>::failure("metrics db: " + json.error());
    try {
        return from_json(json.value());
    } catch (const std::exception& e) {
        return util::Result<TimeSeriesDb>::failure("metrics db " + path + ": " + e.what());
    }
}

TimeSeriesDb TimeSeriesDb::load(const std::string& path) {
    return std::move(try_load(path)).value();
}

}  // namespace pipetune::metricsdb
