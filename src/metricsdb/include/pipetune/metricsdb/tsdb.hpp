#pragma once
// Influx-lite time-series store. The paper persists profiling samples in
// InfluxDB (v1.7.4) and queries them when tuning and re-clustering (§6); this
// module covers the surface PipeTune actually uses: append points with tags,
// filter by series/tags/time-range, aggregate per epoch, persist as JSON.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pipetune/util/json.hpp"

namespace pipetune::metricsdb {

using TagSet = std::map<std::string, std::string>;

struct Point {
    double time = 0.0;  ///< seconds on the experiment clock
    double value = 0.0;
    TagSet tags;
};

struct Query {
    std::string series{};                ///< required measurement name
    TagSet tags{};                       ///< all listed tags must match
    std::optional<double> from{};        ///< inclusive lower time bound
    std::optional<double> to{};          ///< inclusive upper time bound
};

/// Minimal write/count surface of the metrics store. Tuning policies talk to
/// this interface instead of the concrete database so a scheduler can hand
/// concurrent jobs a locked (and pseudo-time-correcting) view of one shared
/// TimeSeriesDb (sched::SharedClusterState).
class MetricsSink {
public:
    virtual ~MetricsSink() = default;
    virtual void append(const std::string& series, double time, double value, TagSet tags) = 0;
    virtual std::size_t count(const Query& query) const = 0;
};

class TimeSeriesDb : public MetricsSink {
public:
    TimeSeriesDb() = default;
    TimeSeriesDb(const TimeSeriesDb&) = default;
    TimeSeriesDb(TimeSeriesDb&&) = default;
    TimeSeriesDb& operator=(const TimeSeriesDb&) = default;
    TimeSeriesDb& operator=(TimeSeriesDb&&) = default;

    /// Append one point to a measurement series.
    void append(const std::string& series, Point point);
    void append(const std::string& series, double time, double value, TagSet tags = {}) override;

    /// All points matching a query, in insertion (time) order.
    std::vector<Point> select(const Query& query) const;

    /// Mean of matching values; nullopt when nothing matches.
    std::optional<double> mean(const Query& query) const;
    std::optional<double> last(const Query& query) const;
    std::size_t count(const Query& query) const override;

    std::vector<std::string> series_names() const;
    std::size_t total_points() const;
    void clear();

    /// Persistence (JSON document with every series and point). try_load is
    /// the Result-returning loader; load throws its error text.
    util::Json to_json() const;
    static TimeSeriesDb from_json(const util::Json& json);
    void save(const std::string& path) const;
    static util::Result<TimeSeriesDb> try_load(const std::string& path);
    static TimeSeriesDb load(const std::string& path);

private:
    static bool tags_match(const TagSet& point_tags, const TagSet& filter);
    std::map<std::string, std::vector<Point>> series_;
};

}  // namespace pipetune::metricsdb
