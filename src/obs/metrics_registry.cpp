#include "pipetune/obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "pipetune/util/fs.hpp"

namespace pipetune::obs {

namespace {

/// Atomic add for doubles without relying on atomic<double>::fetch_add
/// (emulated via CAS; uncontended in practice — gauges are set() mostly).
void atomic_add(std::atomic<double>& target, double delta) {
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + delta,
                                         std::memory_order_relaxed)) {
    }
}

std::string format_number(double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15)
        return std::to_string(static_cast<long long>(v));
    std::ostringstream ss;
    ss.precision(12);
    ss << v;
    return ss.str();
}

std::string escape_label_value(const std::string& value) {
    std::string out;
    for (char c : value) {
        if (c == '\\' || c == '"') out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/// Render {k="v",...}; `extra` appends one more pair (histogram le=).
std::string render_labels(const Labels& labels, const std::string& extra_key = {},
                          const std::string& extra_value = {}) {
    if (labels.empty() && extra_key.empty()) return {};
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key + "=\"" + escape_label_value(value) + "\"";
    }
    if (!extra_key.empty()) {
        if (!first) out += ',';
        out += extra_key + "=\"" + escape_label_value(extra_value) + "\"";
    }
    out += '}';
    return out;
}

const char* kind_name(int kind) {
    switch (kind) {
        case 0: return "counter";
        case 1: return "gauge";
        case 2: return "histogram";
    }
    return "?";
}

}  // namespace

std::string sanitize_metric_name(const std::string& name) {
    std::string out = name.empty() ? std::string("_") : name;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
                        c == ':' || (i > 0 && c >= '0' && c <= '9');
        if (!ok) out[i] = '_';
    }
    return out;
}

void Gauge::add(double delta) { atomic_add(value_, delta); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    std::sort(bounds_.begin(), bounds_.end());
    bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
    std::size_t bucket = bounds_.size();  // +Inf by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (v <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> counts(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

std::string MetricsRegistry::instrument_key(const std::string& name, const Labels& labels) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key = name;
    for (const auto& [k, v] : sorted) key += '\x1f' + k + '\x1e' + v;
    return key;
}

MetricsRegistry::Instrument& MetricsRegistry::resolve(const std::string& raw_name,
                                                      Labels labels, Kind kind,
                                                      std::string help,
                                                      std::vector<double>* bounds) {
    const std::string name = sanitize_metric_name(raw_name);
    const std::string key = instrument_key(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto family = families_.find(name);
    if (family == families_.end()) {
        families_.emplace(name, Family{kind, std::move(help)});
    } else if (family->second.kind != kind) {
        throw std::logic_error("MetricsRegistry: '" + name + "' registered as " +
                               kind_name(static_cast<int>(family->second.kind)) +
                               ", requested as " + kind_name(static_cast<int>(kind)));
    }
    auto it = instruments_.find(key);
    if (it == instruments_.end()) {
        Instrument instrument;
        instrument.name = name;
        instrument.labels = std::move(labels);
        instrument.kind = kind;
        // The payload pointer is set exactly once, here, under mutex_; callers
        // deref it lock-free afterwards. Creating it lazily in counter()/...
        // outside the lock would let two threads race the assignment and one
        // of them keep a reference into the freed loser.
        switch (kind) {
            case Kind::kCounter: instrument.counter = std::make_unique<Counter>(); break;
            case Kind::kGauge: instrument.gauge = std::make_unique<Gauge>(); break;
            case Kind::kHistogram:
                instrument.histogram = std::make_unique<Histogram>(std::move(*bounds));
                break;
        }
        it = instruments_.emplace(key, std::move(instrument)).first;
    }
    return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels, std::string help) {
    return *resolve(name, std::move(labels), Kind::kCounter, std::move(help)).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels, std::string help) {
    return *resolve(name, std::move(labels), Kind::kGauge, std::move(help)).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      Labels labels, std::string help) {
    return *resolve(name, std::move(labels), Kind::kHistogram, std::move(help), &bounds)
                .histogram;
}

std::size_t MetricsRegistry::series_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return instruments_.size();
}

std::string MetricsRegistry::to_prometheus() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    // One family block at a time: # HELP/# TYPE once, then every instance.
    for (const auto& [name, family] : families_) {
        if (!family.help.empty()) out += "# HELP " + name + " " + family.help + "\n";
        out += "# TYPE " + name + " " + kind_name(static_cast<int>(family.kind)) + "\n";
        for (const auto& [key, instrument] : instruments_) {
            if (instrument.name != name) continue;
            const std::string labels = render_labels(instrument.labels);
            switch (instrument.kind) {
                case Kind::kCounter:
                    out += name + labels + " " + std::to_string(instrument.counter->value()) +
                           "\n";
                    break;
                case Kind::kGauge:
                    out += name + labels + " " + format_number(instrument.gauge->value()) + "\n";
                    break;
                case Kind::kHistogram: {
                    const Histogram& h = *instrument.histogram;
                    const auto counts = h.bucket_counts();
                    std::uint64_t cumulative = 0;
                    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                        cumulative += counts[i];
                        out += name + "_bucket" +
                               render_labels(instrument.labels, "le",
                                             format_number(h.bounds()[i])) +
                               " " + std::to_string(cumulative) + "\n";
                    }
                    cumulative += counts.back();
                    out += name + "_bucket" + render_labels(instrument.labels, "le", "+Inf") +
                           " " + std::to_string(cumulative) + "\n";
                    out += name + "_sum" + render_labels(instrument.labels) + " " +
                           format_number(h.sum()) + "\n";
                    out += name + "_count" + render_labels(instrument.labels) + " " +
                           std::to_string(h.count()) + "\n";
                    break;
                }
            }
        }
    }
    return out;
}

util::Json MetricsRegistry::to_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    util::Json counters = util::Json::array();
    util::Json gauges = util::Json::array();
    util::Json histograms = util::Json::array();
    for (const auto& [key, instrument] : instruments_) {
        util::Json entry;
        entry["name"] = instrument.name;
        if (!instrument.labels.empty()) {
            util::Json labels;
            for (const auto& [k, v] : instrument.labels) labels[k] = v;
            entry["labels"] = std::move(labels);
        }
        switch (instrument.kind) {
            case Kind::kCounter:
                entry["value"] = instrument.counter->value();
                counters.push_back(std::move(entry));
                break;
            case Kind::kGauge:
                entry["value"] = instrument.gauge->value();
                gauges.push_back(std::move(entry));
                break;
            case Kind::kHistogram: {
                const Histogram& h = *instrument.histogram;
                const auto counts = h.bucket_counts();
                util::Json buckets = util::Json::array();
                for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                    util::Json bucket;
                    bucket["le"] = h.bounds()[i];
                    bucket["count"] = counts[i];
                    buckets.push_back(std::move(bucket));
                }
                util::Json inf_bucket;
                inf_bucket["le"] = "+Inf";
                inf_bucket["count"] = counts.back();
                buckets.push_back(std::move(inf_bucket));
                entry["buckets"] = std::move(buckets);
                entry["sum"] = h.sum();
                entry["count"] = h.count();
                histograms.push_back(std::move(entry));
                break;
            }
        }
    }
    util::Json out;
    out["counters"] = std::move(counters);
    out["gauges"] = std::move(gauges);
    out["histograms"] = std::move(histograms);
    return out;
}

void MetricsRegistry::write_prometheus(const std::string& path) const {
    util::write_file_atomic(path, to_prometheus());
}

}  // namespace pipetune::obs
