#pragma once
// Tracer: hierarchical wall-clock spans over the tuner's own phases —
// job → trial → epoch, with probe/cluster/train phases interleaved. Spans
// nest via a per-thread stack (a span opened while another is open on the
// same thread becomes its child), land in a bounded ring buffer when closed,
// and dump as Chrome trace-event JSON (load chrome://tracing or Perfetto on
// the file `pipetune replay --trace-out` writes).
//
// Cost model: opening a span is two steady_clock reads away from free; the
// one lock is taken on close to push the record into the ring. When the ring
// is full the oldest spans are overwritten (dropped() counts them) — long
// replays keep their most recent history, and job-level spans survive because
// they close last.

#include <atomic>
#include <cstdint>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pipetune/util/json.hpp"

namespace pipetune::obs {

/// One finished span. parent_id == 0 means root (no enclosing span on the
/// opening thread).
struct SpanRecord {
    std::uint64_t id = 0;
    std::uint64_t parent_id = 0;
    std::string name;
    std::string category;
    std::vector<std::pair<std::string, std::string>> args;
    double start_s = 0.0;  ///< seconds since tracer construction
    double end_s = 0.0;
    std::uint32_t thread = 0;  ///< small per-tracer thread index
};

class Tracer {
public:
    explicit Tracer(std::size_t capacity = 65536);
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// RAII span: closes on destruction (or explicit end()). Movable so a
    /// policy can park an open span in per-trial state across calls. A
    /// default-constructed Span is inert.
    class Span {
    public:
        Span() = default;
        Span(Span&& other) noexcept { *this = std::move(other); }
        Span& operator=(Span&& other) noexcept {
            if (this != &other) {
                end();
                tracer_ = other.tracer_;
                record_ = std::move(other.record_);
                other.tracer_ = nullptr;
            }
            return *this;
        }
        ~Span() { end(); }
        Span(const Span&) = delete;
        Span& operator=(const Span&) = delete;

        bool active() const { return tracer_ != nullptr; }
        std::uint64_t id() const { return record_.id; }
        /// Attach one key=value argument (shown in the trace viewer).
        void arg(std::string key, std::string value) {
            if (active()) record_.args.emplace_back(std::move(key), std::move(value));
        }
        /// Take this span off the opening thread's nesting stack while
        /// keeping it open: later spans on the thread no longer become its
        /// children. Required before parking a span past the current scope
        /// (e.g. a probe that stays open across trials) or moving it to
        /// another thread. Call on the opening thread.
        void detach();
        /// Close now (idempotent); records the span into the ring.
        void end();

    private:
        friend class Tracer;
        Tracer* tracer_ = nullptr;
        SpanRecord record_;
    };

    /// Open a span; the innermost open span of this (thread, tracer) becomes
    /// its parent.
    Span span(std::string name, std::string category = "pipetune");

    /// Seconds since tracer construction (steady clock).
    double now_s() const;

    /// Snapshot of the ring, oldest first. Only closed spans appear.
    std::vector<SpanRecord> completed() const;
    /// Spans evicted from the ring because it was full.
    std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
    std::size_t capacity() const { return capacity_; }

    /// Chrome trace-event document: {"traceEvents": [{"ph":"X", ...}, ...]}.
    /// Times in microseconds, span hierarchy exposed via args.parent.
    util::Json to_chrome_json() const;
    /// Atomic write of to_chrome_json() (temp file + rename).
    void write_chrome_trace(const std::string& path) const;

private:
    void record(SpanRecord record);
    std::uint32_t thread_index();

    const std::size_t capacity_;
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::uint64_t> dropped_{0};

    mutable std::mutex mutex_;
    std::vector<SpanRecord> ring_;  ///< circular once full
    std::size_t ring_next_ = 0;     ///< next slot to overwrite when full
    std::vector<std::thread::id> threads_;  ///< index = small thread id
};

}  // namespace pipetune::obs
