#pragma once
// pipetune_build_info: the Prometheus "info metric" pattern — a gauge pinned
// to 1 whose labels carry the build identity, so every /metrics scrape
// self-identifies the binary that produced it (join on the labels, never on
// the value). Register once at startup; re-registration is idempotent
// because the registry keys instruments on (name, labels).

#include "pipetune/obs/metrics_registry.hpp"

namespace pipetune::obs {

/// Register (or fetch) pipetune_build_info{version,compiler} and set it to 1.
Gauge& register_build_info(MetricsRegistry& registry);

}  // namespace pipetune::obs
