#pragma once
// ObsContext: the one telemetry handle threaded through the stack. Owns a
// MetricsRegistry and a Tracer; services construct one (or accept a shared
// one) and hand a pointer down through their configs — a null pointer means
// "observability off" and costs a branch.
//
// mirror_logs() bridges util::logging into the registry: every warn/error
// record increments pipetune_log_{warn,error}_total even when stderr output
// is filtered, so an operator scraping --metrics-out sees problems a quiet
// log level would hide.

#include <cstdint>
#include <string>

#include "pipetune/obs/metrics_registry.hpp"
#include "pipetune/obs/tracer.hpp"

namespace pipetune::obs {

class ObsContext {
public:
    explicit ObsContext(std::size_t trace_capacity = 65536);
    ~ObsContext();
    ObsContext(const ObsContext&) = delete;
    ObsContext& operator=(const ObsContext&) = delete;

    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    Tracer& tracer() { return tracer_; }
    const Tracer& tracer() const { return tracer_; }

    /// Start counting util::logging warn/error records into the registry
    /// (pipetune_log_warn_total / pipetune_log_error_total). Idempotent; the
    /// observer detaches automatically in the destructor. Process-global:
    /// the most recent mirroring context wins.
    void mirror_logs();

    /// Snapshot helpers for --metrics-out / --trace-out style flags.
    void write_prometheus(const std::string& path) const { metrics_.write_prometheus(path); }
    void write_chrome_trace(const std::string& path) const { tracer_.write_chrome_trace(path); }

private:
    MetricsRegistry metrics_;
    Tracer tracer_;
    std::uint64_t observer_token_ = 0;  ///< 0 = not mirroring
};

}  // namespace pipetune::obs
