#pragma once
// MetricsRegistry: the tuner's own counters, gauges and histograms — the
// paper's middleware watches the *jobs* through InfluxDB/Grafana (§5.2, §6);
// this registry watches the *tuner* (queue pressure, probe volume, flush
// latency) and exports snapshots in Prometheus text format and JSON.
//
// Design for hot paths (see DESIGN.md §9):
//  - Registration (name -> instrument) takes the registry mutex once;
//    call sites cache the returned reference (stable for the registry's
//    lifetime) and afterwards touch only atomics — no lock on increment.
//  - Histograms have fixed bucket bounds chosen at registration; observe()
//    is a linear scan over a handful of atomics.
//  - Label sets are part of an instrument's identity and must stay
//    low-cardinality (states, phases — never trial or job ids; ids belong in
//    spans, see tracer.hpp).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "pipetune/util/json.hpp"

namespace pipetune::obs {

/// Label set attached to an instrument (rendered as {k="v",...}). Order is
/// preserved in output; the canonical identity key sorts internally.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count (Prometheus counter; name should end in _total).
class Counter {
public:
    void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, store size, running jobs).
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double delta);
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket distribution (durations, latencies). Bounds are inclusive
/// upper edges; an implicit +Inf bucket catches the tail. Counts exported
/// cumulatively, Prometheus-style.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket (non-cumulative) counts; last entry is the +Inf bucket.
    std::vector<std::uint64_t> bucket_counts() const;
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

private:
    std::vector<double> bounds_;  ///< sorted ascending
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Get-or-create. The same (name, labels) always returns the same
    /// instrument; re-registering a name under a different kind throws
    /// std::logic_error (a naming bug, not a runtime condition). References
    /// stay valid for the registry's lifetime — cache them on hot paths.
    Counter& counter(const std::string& name, Labels labels = {}, std::string help = "");
    Gauge& gauge(const std::string& name, Labels labels = {}, std::string help = "");
    /// `bounds` apply to the whole family; the first registration wins.
    Histogram& histogram(const std::string& name, std::vector<double> bounds,
                         Labels labels = {}, std::string help = "");

    /// Number of registered instruments (one histogram counts once).
    std::size_t series_count() const;

    /// Prometheus text exposition format (# HELP / # TYPE + samples).
    std::string to_prometheus() const;
    /// JSON snapshot: {"counters": [...], "gauges": [...], "histograms": [...]}.
    util::Json to_json() const;
    /// Atomic write of to_prometheus() (temp file + rename).
    void write_prometheus(const std::string& path) const;

private:
    enum class Kind { kCounter, kGauge, kHistogram };

    struct Instrument {
        std::string name;
        Labels labels;
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    struct Family {
        Kind kind;
        std::string help;
    };

    /// Canonical identity key for (name, labels); labels sorted by key.
    static std::string instrument_key(const std::string& name, const Labels& labels);
    /// Find-or-create under mutex_. The kind-specific payload is created HERE,
    /// inside the lock (bounds feeds a new histogram; counters/gauges need no
    /// arguments) — callers deref the returned pointer lock-free, so it must
    /// be written exactly once. `bounds` may be null unless kind is histogram.
    Instrument& resolve(const std::string& name, Labels labels, Kind kind, std::string help,
                        std::vector<double>* bounds = nullptr);

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;  ///< by instrument_key
    std::map<std::string, Family> families_;         ///< by name
};

/// Validate/sanitize a metric name: [a-zA-Z_:][a-zA-Z0-9_:]*; anything else
/// becomes '_' (so call sites can derive names from user strings safely).
std::string sanitize_metric_name(const std::string& name);

}  // namespace pipetune::obs
