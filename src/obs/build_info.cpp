#include "pipetune/obs/build_info.hpp"

#include "pipetune/util/build_info.hpp"

namespace pipetune::obs {

Gauge& register_build_info(MetricsRegistry& registry) {
    Gauge& gauge = registry.gauge(
        "pipetune_build_info",
        {{"version", util::kVersion}, {"compiler", util::compiler_string()}},
        "Build identity of the running binary (value is always 1)");
    gauge.set(1.0);
    return gauge;
}

}  // namespace pipetune::obs
