#include "pipetune/obs/obs_context.hpp"

#include "pipetune/util/logging.hpp"

namespace pipetune::obs {

ObsContext::ObsContext(std::size_t trace_capacity) : tracer_(trace_capacity) {}

ObsContext::~ObsContext() {
    if (observer_token_ != 0) util::clear_log_observer(observer_token_);
}

void ObsContext::mirror_logs() {
    if (observer_token_ != 0) return;
    // Cache the instrument references once; the observer then touches only
    // atomics (it runs under the log mutex — keep it cheap).
    Counter& warns = metrics_.counter("pipetune_log_warn_total", {},
                                      "Warn-level log records emitted");
    Counter& errors = metrics_.counter("pipetune_log_error_total", {},
                                       "Error-level log records emitted");
    observer_token_ = util::set_log_observer(
        [&warns, &errors](util::LogLevel level, const std::string&, const std::string&) {
            if (level == util::LogLevel::kWarn) warns.inc();
            if (level == util::LogLevel::kError) errors.inc();
        });
}

}  // namespace pipetune::obs
