#include "pipetune/obs/tracer.hpp"

#include <algorithm>

#include "pipetune/util/fs.hpp"

namespace pipetune::obs {

namespace {

/// Per-thread stack of open spans, keyed by tracer so two independent
/// tracers on one thread do not adopt each other's children. Removal scans
/// from the back: spans almost always close innermost-first, and a moved
/// span closed out of order is still found (just not in O(1)).
thread_local std::vector<std::pair<const Tracer*, std::uint64_t>> t_open_spans;

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

double Tracer::now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

Tracer::Span Tracer::span(std::string name, std::string category) {
    Span s;
    s.tracer_ = this;
    s.record_.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    s.record_.name = std::move(name);
    s.record_.category = std::move(category);
    for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
        if (it->first == this) {
            s.record_.parent_id = it->second;
            break;
        }
    }
    s.record_.thread = thread_index();
    s.record_.start_s = now_s();
    t_open_spans.emplace_back(this, s.record_.id);
    return s;
}

void Tracer::Span::detach() {
    if (!tracer_) return;
    // Remove from the opening thread's nesting stack without closing: spans
    // opened after this no longer become its children. Must run on the
    // opening thread (before the span is parked or handed elsewhere).
    for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
        if (it->first == tracer_ && it->second == record_.id) {
            t_open_spans.erase(std::next(it).base());
            break;
        }
    }
}

void Tracer::Span::end() {
    if (!tracer_) return;
    Tracer* tracer = tracer_;
    tracer_ = nullptr;
    record_.end_s = tracer->now_s();
    // Pop this span off the opener thread's stack (no-op if detach() already
    // did). If the span was moved to another thread before closing, detach()
    // on the opening thread is mandatory — this scan cannot see the original
    // thread's stack.
    for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
        if (it->first == tracer && it->second == record_.id) {
            t_open_spans.erase(std::next(it).base());
            break;
        }
    }
    tracer->record(std::move(record_));
}

std::uint32_t Tracer::thread_index() {
    const auto self = std::this_thread::get_id();
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < threads_.size(); ++i)
        if (threads_[i] == self) return static_cast<std::uint32_t>(i);
    threads_.push_back(self);
    return static_cast<std::uint32_t>(threads_.size() - 1);
}

void Tracer::record(SpanRecord record) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(record));
        return;
    }
    ring_[ring_next_] = std::move(record);
    ring_next_ = (ring_next_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::completed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    // Oldest first: once the ring wrapped, ring_next_ points at the oldest.
    if (ring_.size() == capacity_) {
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(ring_next_ + i) % capacity_]);
    } else {
        out = ring_;
    }
    return out;
}

util::Json Tracer::to_chrome_json() const {
    util::Json events = util::Json::array();
    for (const auto& span : completed()) {
        util::Json event;
        event["name"] = span.name;
        event["cat"] = span.category;
        event["ph"] = "X";
        event["ts"] = span.start_s * 1e6;
        event["dur"] = (span.end_s - span.start_s) * 1e6;
        event["pid"] = 1;
        event["tid"] = static_cast<double>(span.thread);
        util::Json args;
        args["id"] = static_cast<double>(span.id);
        args["parent"] = static_cast<double>(span.parent_id);
        for (const auto& [key, value] : span.args) args[key] = value;
        event["args"] = std::move(args);
        events.push_back(std::move(event));
    }
    util::Json doc;
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ms";
    return doc;
}

void Tracer::write_chrome_trace(const std::string& path) const {
    util::write_file_atomic(path, to_chrome_json().dump(2) + "\n");
}

}  // namespace pipetune::obs
