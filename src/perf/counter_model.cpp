#include "pipetune/perf/counter_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipetune::perf {

namespace {

// Stable string hash (FNV-1a) so fingerprints are portable across runs.
std::uint64_t fnv1a(const std::string& text) {
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

// Deterministic pseudo-random factor in [lo, hi] keyed by (seed, index).
double keyed_factor(std::uint64_t seed, std::size_t index, double lo, double hi) {
    std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    const std::uint64_t bits = util::splitmix64(state);
    const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * unit;
}

double base_rate(EventClass event_class) {
    switch (event_class) {
        case EventClass::kCycles: return 2.4e9;      // ~CPU frequency
        case EventClass::kInstr: return 1.8e9;       // IPC < 1 relative to cycles
        case EventClass::kCacheHot: return 4.0e8;
        case EventClass::kCacheMiss: return 3.0e6;
        case EventClass::kTlb: return 1.2e7;
        case EventClass::kRareEvent: return 5.0e1;
        case EventClass::kMsr: return 2.4e9;
        case EventClass::kNode: return 8.0e5;
    }
    return 1.0;
}

}  // namespace

EventVector true_event_rates(const WorkloadFingerprint& fingerprint) {
    if (fingerprint.compute_scale <= 0 || fingerprint.memory_scale <= 0)
        throw std::invalid_argument("true_event_rates: scales must be positive");
    if (fingerprint.batch_size == 0 || fingerprint.cores == 0)
        throw std::invalid_argument("true_event_rates: batch and cores must be > 0");

    const std::uint64_t model_seed = fnv1a("model:" + fingerprint.model_family);
    const std::uint64_t data_seed = fnv1a("data:" + fingerprint.dataset_family);

    EventVector rates{};
    for (std::size_t e = 0; e < kEventCount; ++e) {
        const EventClass cls = event_class(e);
        double rate = base_rate(cls);

        // Model identity dominates compute-flavoured events; dataset identity
        // dominates memory-flavoured ones. This split is what lets k-means
        // cluster by model on some axes and by dataset on others (Fig 8).
        const bool compute_flavoured = cls == EventClass::kCycles || cls == EventClass::kInstr ||
                                       cls == EventClass::kMsr;
        const double model_weight = compute_flavoured ? 1.0 : 0.35;
        const double data_weight = compute_flavoured ? 0.35 : 1.0;
        rate *= std::pow(keyed_factor(model_seed, e, 0.5, 2.0), model_weight);
        rate *= std::pow(keyed_factor(data_seed, e, 0.5, 2.0), data_weight);

        // Arithmetic intensity scales instruction-side events; memory traffic
        // scales cache/TLB/node events.
        if (compute_flavoured) {
            rate *= 0.5 + 0.5 * fingerprint.compute_scale;
        } else {
            rate *= 0.5 + 0.5 * fingerprint.memory_scale;
        }

        // Bigger batches improve locality: miss-type rates drop slowly with
        // batch size; hot traffic is nearly batch-independent.
        if (cls == EventClass::kCacheMiss || cls == EventClass::kNode || cls == EventClass::kTlb)
            rate *= 1.0 + 1.0 / std::sqrt(static_cast<double>(fingerprint.batch_size));

        // More cores -> more aggregate traffic but also more coherence misses.
        const double core_factor = static_cast<double>(fingerprint.cores);
        if (cls == EventClass::kCacheMiss || cls == EventClass::kNode) {
            rate *= std::pow(core_factor, 1.15);
        } else if (cls != EventClass::kRareEvent) {
            rate *= core_factor;
        }
        rates[e] = rate;
    }
    return rates;
}

PmuSimulator::PmuSimulator(PmuConfig config) : config_(config) {
    if (config.generic_counters == 0)
        throw std::invalid_argument("PmuSimulator: need at least one generic counter");
    if (config.sampling_noise < 0)
        throw std::invalid_argument("PmuSimulator: negative noise");
}

double PmuSimulator::multiplex_fraction() const {
    const std::size_t fixed = fixed_counter_events().size();
    const std::size_t multiplexed_events = kEventCount - fixed;
    return std::min(1.0, static_cast<double>(config_.generic_counters) /
                             static_cast<double>(multiplexed_events));
}

EventVector PmuSimulator::measure_epoch(const EventVector& true_rates, double duration_s,
                                        util::Rng& rng) const {
    if (duration_s <= 0) throw std::invalid_argument("measure_epoch: duration must be > 0");
    const auto& fixed = fixed_counter_events();
    const double fraction = multiplex_fraction();

    EventVector observed{};
    for (std::size_t e = 0; e < kEventCount; ++e) {
        const bool is_fixed = std::find(fixed.begin(), fixed.end(), e) != fixed.end();
        const double time_running = is_fixed ? duration_s : duration_s * fraction;
        // Raw count accumulated while the event owned a counter, with per-read
        // noise. Sub-sampling error shrinks with observation time like
        // 1/sqrt(t): short multiplexed windows are noisier.
        const double relative_noise =
            config_.sampling_noise / std::sqrt(std::max(time_running, 1e-3));
        const double raw = true_rates[e] * time_running *
                           std::max(0.0, 1.0 + rng.normal(0.0, relative_noise));
        // perf's rescale: final = raw * time_enabled / time_running.
        const double final_count = raw * (duration_s / time_running);
        observed[e] = final_count / duration_s;  // store as events/second
    }
    return observed;
}

}  // namespace pipetune::perf
