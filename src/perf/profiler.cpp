#include "pipetune/perf/profiler.hpp"

#include <cmath>
#include <stdexcept>

namespace pipetune::perf {

std::vector<double> profile_features(const EpochProfile& profile) {
    std::vector<double> features(kEventCount);
    double mean = 0.0;
    for (std::size_t e = 0; e < kEventCount; ++e) {
        features[e] = std::log10(1.0 + std::max(0.0, profile.events[e]));
        mean += features[e];
    }
    // Row-centre: subtract the profile's mean log-rate. A bigger allocation
    // (more cores) multiplies nearly every event uniformly, which would make
    // k-means cluster by allocation instead of by workload; centring keeps
    // the event *mix* — the workload's identity — and discards the scale.
    mean /= static_cast<double>(kEventCount);
    for (double& f : features) f -= mean;
    return features;
}

std::vector<double> mean_features(const std::vector<EpochProfile>& profiles) {
    if (profiles.empty()) throw std::invalid_argument("mean_features: no profiles");
    std::vector<double> acc(kEventCount, 0.0);
    for (const auto& profile : profiles) {
        const auto features = profile_features(profile);
        for (std::size_t e = 0; e < kEventCount; ++e) acc[e] += features[e];
    }
    for (double& v : acc) v /= static_cast<double>(profiles.size());
    return acc;
}

Profiler::Profiler(PmuConfig config, std::uint64_t seed) : pmu_(config), rng_(seed) {}

EpochProfile Profiler::profile_epoch(const WorkloadFingerprint& fingerprint, double duration_s,
                                     double energy_j, std::size_t epoch) {
    EpochProfile profile;
    profile.epoch = epoch;
    profile.duration_s = duration_s;
    profile.energy_j = energy_j;
    profile.events = pmu_.measure_epoch(true_event_rates(fingerprint), duration_s, rng_);
    history_.push_back(profile);
    return profile;
}

}  // namespace pipetune::perf
