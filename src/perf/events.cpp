#include "pipetune/perf/events.hpp"

#include <stdexcept>
#include <string>

namespace pipetune::perf {

const std::array<std::string_view, kEventCount>& event_names() {
    static const std::array<std::string_view, kEventCount> kNames = {
        "L1-dcache-load-misses",
        "L1-dcache-loads",
        "L1-dcache-stores",
        "L1-icache-load-misses",
        "LLC-load-misses",
        "LLC-loads",
        "LLC-store-misses",
        "LLC-stores",
        "branch-load-misses",
        "branch-loads",
        "branch-misses",
        "branches",
        "bus-cycles",
        "cache-misses",
        "cache-references",
        "cpu-cycles",
        "cpu/branch-instructions/",
        "cpu/branch-misses/",
        "cpu/bus-cycles/",
        "cpu/cache-misses/",
        "cpu/cache-references/",
        "cpu/cpu-cycles/",
        "cpu/cycles-ct/",
        "cpu/cycles-t/",
        "cpu/el-abort/",
        "cpu/el-capacity/",
        "cpu/el-commit/",
        "cpu/el-conflict/",
        "cpu/el-start/",
        "cpu/instructions/",
        "cpu/mem-loads/",
        "cpu/mem-stores/",
        "cpu/topdown-fetch-bubbles/",
        "cpu/topdown-recovery-bubbles/",
        "cpu/topdown-slots-issued/",
        "cpu/topdown-slots-retired/",
        "cpu/topdown-total-slots/",
        "cpu/tx-abort/",
        "cpu/tx-capacity/",
        "cpu/tx-commit/",
        "cpu/tx-conflict/",
        "cpu/tx-start/",
        "dTLB-load-misses",
        "dTLB-loads",
        "dTLB-store-misses",
        "dTLB-stores",
        "iTLB-load-misses",
        "iTLB-loads",
        "instructions",
        "msr/aperf/",
        "msr/mperf/",
        "msr/pperf/",
        "msr/smi/",
        "msr/tsc/",
        "node-load-misses",
        "node-loads",
        "node-store-misses",
        "node-stores",
    };
    return kNames;
}

std::size_t event_index(std::string_view name) {
    const auto& names = event_names();
    for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == name) return i;
    throw std::invalid_argument("event_index: unknown event '" + std::string(name) + "'");
}

EventClass event_class(std::size_t index) {
    const std::string_view name = event_names().at(index);
    const bool is_cpu_alias = name.substr(0, 4) == "cpu/";
    if (name.find("msr/") == 0) return EventClass::kMsr;
    if (name.find("node-") == 0) return EventClass::kNode;
    if (name.find("tx-") != std::string_view::npos || name.find("el-") != std::string_view::npos ||
        name.find("smi") != std::string_view::npos)
        return EventClass::kRareEvent;
    if (name.find("cycles") != std::string_view::npos || name.find("bubbles") != std::string_view::npos ||
        name.find("slots") != std::string_view::npos)
        return EventClass::kCycles;
    if (name.find("instructions") != std::string_view::npos) return EventClass::kInstr;
    if (name.find("TLB") != std::string_view::npos || name.find("tlb") != std::string_view::npos)
        return EventClass::kTlb;
    if (name.find("miss") != std::string_view::npos) return EventClass::kCacheMiss;
    (void)is_cpu_alias;
    return EventClass::kCacheHot;
}

const std::array<std::size_t, 3>& fixed_counter_events() {
    static const std::array<std::size_t, 3> kFixed = {
        event_index("instructions"),
        event_index("cpu-cycles"),
        event_index("bus-cycles"),
    };
    return kFixed;
}

}  // namespace pipetune::perf
