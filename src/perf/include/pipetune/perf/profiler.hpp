#pragma once
// Epoch-granularity profiler: the component PipeTune runs alongside the first
// epochs of every trial (§5.3). It samples the (simulated) PMU, stores the
// per-epoch averages, and exposes the feature vector the ground-truth
// similarity function consumes.

#include <vector>

#include "pipetune/perf/counter_model.hpp"

namespace pipetune::perf {

/// One epoch's worth of averaged low-level metrics.
struct EpochProfile {
    std::size_t epoch = 0;     ///< 1-based epoch index within the trial
    EventVector events{};      ///< observed events/second, averaged over the epoch
    double duration_s = 0.0;
    double energy_j = 0.0;
};

/// Similarity feature vector: log10(1 + rate) per event. Event rates span
/// ~8 decades (Fig 2's heatmap buckets), so clustering on raw rates would be
/// dominated by cycle counters; log-compression puts all events on comparable
/// footing before the Standardizer in mlcore takes over.
std::vector<double> profile_features(const EpochProfile& profile);

/// Element-wise mean of several profiles' feature vectors (the paper stores
/// "the average of results during each epoch's time window" and feeds the
/// first couple of epochs to the similarity function).
std::vector<double> mean_features(const std::vector<EpochProfile>& profiles);

class Profiler {
public:
    explicit Profiler(PmuConfig config = {}, std::uint64_t seed = 1);

    /// Profile one epoch of the given workload; appends to history.
    EpochProfile profile_epoch(const WorkloadFingerprint& fingerprint, double duration_s,
                               double energy_j, std::size_t epoch);

    const std::vector<EpochProfile>& history() const { return history_; }
    void clear() { history_.clear(); }

    /// Relative wall-clock overhead the profiler adds to a profiled epoch.
    /// Charged explicitly by the tuners so the §7.3 overhead claim is
    /// testable rather than hidden.
    static constexpr double kOverheadFraction = 0.01;

private:
    PmuSimulator pmu_;
    util::Rng rng_;
    std::vector<EpochProfile> history_;
};

}  // namespace pipetune::perf
