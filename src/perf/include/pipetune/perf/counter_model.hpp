#pragma once
// Synthetic PMU: generates per-epoch hardware-event profiles for a workload
// under given system conditions, reproducing the two properties the paper's
// profiling phase depends on (§5.3, Fig 2, Fig 8):
//
//  1. *Stability* — the same (workload, configuration) yields nearly the same
//     event vector every epoch ("certain events repeat throughout the epochs
//     with the same occurrence", Fig 2);
//  2. *Discriminability* — different workloads yield distant vectors, with
//     model identity and dataset identity each contributing a consistent
//     component, so k-means over profiles recovers workload types (Fig 8).
//
// The model also reproduces perf's counter-multiplexing artifact: with only
// 2 generic + 3 fixed counters, each non-fixed event is measured for a
// fraction of the epoch and rescaled by time_enabled/time_running (§5.3),
// which adds estimation noise inversely proportional to that fraction.

#include <array>
#include <cstdint>
#include <string>

#include "pipetune/perf/events.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::perf {

using EventVector = std::array<double, kEventCount>;

/// What the signature model needs to know about a running trial.
struct WorkloadFingerprint {
    std::string model_family;    ///< e.g. "lenet", "cnn", "lstm", "jacobi"
    std::string dataset_family;  ///< e.g. "mnist", "fashion", "news20", "rodinia"
    double compute_scale = 1.0;  ///< relative arithmetic intensity (model size)
    double memory_scale = 1.0;   ///< relative memory traffic (dataset/batch size)
    std::size_t batch_size = 32;
    std::size_t cores = 4;
};

/// Deterministic per-second event rates for a workload fingerprint. The same
/// fingerprint always produces the same rates (stability); distinct model or
/// dataset families perturb disjoint projections of the vector
/// (discriminability).
EventVector true_event_rates(const WorkloadFingerprint& fingerprint);

struct PmuConfig {
    std::size_t generic_counters = 2;  ///< paper §5.3
    std::size_t fixed_counters = 3;    ///< paper §5.3
    double sampling_noise = 0.01;      ///< relative read noise per measurement
};

/// Simulates one epoch of perf sampling at 1 Hz with counter multiplexing.
class PmuSimulator {
public:
    explicit PmuSimulator(PmuConfig config = {});

    /// Average events/second observed over an epoch of `duration_s` seconds,
    /// including the multiplexing rescale final = raw * enabled / running.
    EventVector measure_epoch(const EventVector& true_rates, double duration_s,
                              util::Rng& rng) const;

    /// Fraction of wall time each non-fixed event is actually counted.
    double multiplex_fraction() const;

    const PmuConfig& config() const { return config_; }

private:
    PmuConfig config_;
};

}  // namespace pipetune::perf
