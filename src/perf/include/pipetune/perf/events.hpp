#pragma once
// The 58 hardware performance-counter events PipeTune profiles (paper Fig 2).
// The list is transcribed verbatim from the paper's heatmap y-axis: PMU
// events, msr counters and node-level events as exposed by Linux perf
// (v4.15.18) on the authors' x86 testbed.

#include <array>
#include <cstddef>
#include <string_view>

namespace pipetune::perf {

inline constexpr std::size_t kEventCount = 58;

/// Event names in the paper's (alphabetical) order.
const std::array<std::string_view, kEventCount>& event_names();

/// Index of an event name; throws std::invalid_argument if unknown.
std::size_t event_index(std::string_view name);

/// Rough magnitude class of each event, used by the signature model to give
/// events realistic absolute scales (the paper's heatmap buckets span
/// <1e2 .. >1e8 events per epoch).
enum class EventClass {
    kCycles,     ///< cycle-granularity counters (~1e9/s scale)
    kInstr,      ///< instruction/uop counters
    kCacheHot,   ///< frequent cache/branch traffic (loads, stores, branches)
    kCacheMiss,  ///< miss counters, orders of magnitude rarer
    kTlb,        ///< TLB traffic
    kRareEvent,  ///< transactional/abort/SMI counters, near zero
    kMsr,        ///< msr pseudo-counters (aperf/mperf/tsc)
    kNode,       ///< NUMA node-level traffic
};

EventClass event_class(std::size_t index);

/// Indices of the events pinned to fixed counters in the PMU model
/// (instructions, cpu-cycles, bus-cycles) — common Intel processors have
/// "only 2 generic and 3 fixed counters" (paper §5.3).
const std::array<std::size_t, 3>& fixed_counter_events();

}  // namespace pipetune::perf
