#include "pipetune/workload/types.hpp"

#include <sstream>
#include <stdexcept>

namespace pipetune::workload {

std::string to_string(WorkloadType type) {
    switch (type) {
        case WorkloadType::kType1: return "Type-I";
        case WorkloadType::kType2: return "Type-II";
        case WorkloadType::kType3: return "Type-III";
    }
    return "?";
}

const std::vector<Workload>& catalogue() {
    // Table 3 of the paper, with substrate scale knobs calibrated relative to
    // LeNet/MNIST. Accuracy ceilings echo the magnitudes in Fig 11/12:
    // image models reach the 90s, text models the 80s, kernels converge to
    // their score ceiling quickly.
    static const std::vector<Workload> kCatalogue = {
        {
            .name = "lenet-mnist",
            .model_family = "lenet",
            .dataset_family = "mnist",
            .type = WorkloadType::kType1,
            .datasize_mb = 12,
            .train_files = 60000,
            .test_files = 10000,
            .compute_scale = 1.0,
            .memory_scale = 1.0,
            .parallel_exponent = 0.88,
            .accuracy_ceiling = 97.0,
            .learning_rate_optimum = 0.02,
            .convergence_rate = 0.16,
        },
        {
            .name = "lenet-fashion",
            .model_family = "lenet",
            .dataset_family = "fashion",
            .type = WorkloadType::kType1,
            .datasize_mb = 31,
            .train_files = 60000,
            .test_files = 10000,
            .compute_scale = 1.0,
            .memory_scale = 1.6,
            .parallel_exponent = 0.88,
            .accuracy_ceiling = 89.0,
            .learning_rate_optimum = 0.015,
            .convergence_rate = 0.13,
        },
        {
            .name = "cnn-news20",
            .model_family = "cnn",
            .dataset_family = "news20",
            .type = WorkloadType::kType2,
            .datasize_mb = 15,
            .train_files = 11307,
            .test_files = 7538,
            .compute_scale = 5.0,
            .memory_scale = 1.2,
            .parallel_exponent = 0.9,
            .accuracy_ceiling = 84.0,
            .learning_rate_optimum = 0.01,
            .convergence_rate = 0.12,
        },
        {
            .name = "lstm-news20",
            .model_family = "lstm",
            .dataset_family = "news20",
            .type = WorkloadType::kType2,
            .datasize_mb = 15,
            .train_files = 11307,
            .test_files = 7538,
            .compute_scale = 8.0,
            .memory_scale = 1.3,
            .parallel_exponent = 0.7,
            .accuracy_ceiling = 80.0,
            .learning_rate_optimum = 0.008,
            .convergence_rate = 0.10,
        },
        {
            .name = "jacobi-rodinia",
            .model_family = "jacobi",
            .dataset_family = "rodinia",
            .type = WorkloadType::kType3,
            .datasize_mb = 26,
            .train_files = 1650,
            .test_files = 7538,
            .compute_scale = 10.0,
            .memory_scale = 0.8,
            .parallel_exponent = 0.95,
            .accuracy_ceiling = 72.0,
            .learning_rate_optimum = 0.02,
            .convergence_rate = 0.5,
        },
        {
            .name = "spkmeans-rodinia",
            .model_family = "spkmeans",
            .dataset_family = "rodinia",
            .type = WorkloadType::kType3,
            .datasize_mb = 26,
            .train_files = 1650,
            .test_files = 7538,
            .compute_scale = 8.0,
            .memory_scale = 1.0,
            .parallel_exponent = 0.9,
            .accuracy_ceiling = 68.0,
            .learning_rate_optimum = 0.02,
            .convergence_rate = 0.6,
        },
        {
            .name = "bfs-rodinia",
            .model_family = "bfs",
            .dataset_family = "rodinia",
            .type = WorkloadType::kType3,
            .datasize_mb = 26,
            .train_files = 1650,
            .test_files = 7538,
            .compute_scale = 6.0,
            .memory_scale = 1.4,
            .parallel_exponent = 0.55,
            .accuracy_ceiling = 75.0,
            .learning_rate_optimum = 0.02,
            .convergence_rate = 0.7,
        },
    };
    return kCatalogue;
}

const Workload& find_workload(const std::string& name) {
    for (const auto& workload : catalogue())
        if (workload.name == name) return workload;
    throw std::invalid_argument("find_workload: unknown workload '" + name + "'");
}

std::vector<Workload> workloads_of_type(WorkloadType type) {
    std::vector<Workload> out;
    for (const auto& workload : catalogue())
        if (workload.type == type) out.push_back(workload);
    return out;
}

std::string HyperParams::to_string() const {
    std::ostringstream out;
    out << "{batch=" << batch_size << ", dropout=" << dropout << ", embed=" << embedding_dim
        << ", lr=" << learning_rate << ", epochs=" << epochs << "}";
    return out.str();
}

std::string SystemParams::to_string() const {
    std::ostringstream out;
    out << "{cores=" << cores << ", mem=" << memory_gb << "GB";
    if (frequency_ghz != kBaseFrequencyGhz) out << ", freq=" << frequency_ghz << "GHz";
    out << "}";
    return out.str();
}

const std::vector<double>& frequency_steps_ghz() {
    static const std::vector<double> kSteps{SystemParams::kBaseFrequencyGhz, 1.8, 1.2};
    return kSteps;
}

SystemParams default_system_params() { return {.cores = 8, .memory_gb = 16}; }

const std::vector<SystemParams>& system_param_grid() {
    static const std::vector<SystemParams> kGrid = [] {
        std::vector<SystemParams> grid;
        for (std::size_t cores : {4, 8, 16})
            for (std::size_t mem : {4, 8, 16, 32})
                grid.push_back({.cores = cores, .memory_gb = mem});
        return grid;
    }();
    return kGrid;
}

}  // namespace pipetune::workload
