#pragma once
// Shared vocabulary of the tuning stack: workloads (paper §3.3, Table 3),
// the five tuned hyperparameters (§7.1.3), the system parameters (§7.1.4),
// per-epoch results, and the Backend/TrialSession abstraction every tuner
// (Tune V1, Tune V2, PipeTune) drives. Both the real NN engine and the
// calibrated simulator implement Backend, so tuners are substrate-agnostic.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipetune/perf/counter_model.hpp"

namespace pipetune::workload {

/// Paper §5.1: Type-I = same model, different datasets; Type-II = different
/// models, same dataset; Type-III = short-epoch non-DNN kernels (§7.1.2).
enum class WorkloadType { kType1, kType2, kType3 };

std::string to_string(WorkloadType type);

/// A workload is a (model, dataset) pair plus the scale facts the substrate
/// models need (Table 3 carries datasize and file counts; the *_scale and
/// learning-curve fields parameterize the calibrated simulator).
struct Workload {
    std::string name;            ///< e.g. "lenet-mnist"
    std::string model_family;    ///< "lenet" | "cnn" | "lstm" | "jacobi" | "spkmeans" | "bfs"
    std::string dataset_family;  ///< "mnist" | "fashion" | "news20" | "rodinia"
    WorkloadType type = WorkloadType::kType1;

    // Table 3 facts.
    double datasize_mb = 0.0;
    std::size_t train_files = 0;
    std::size_t test_files = 0;

    // Substrate scale knobs (relative to LeNet/MNIST = 1.0).
    double compute_scale = 1.0;  ///< arithmetic work per sample
    double memory_scale = 1.0;   ///< working-set pressure
    /// Parallel scalability exponent (speedup ~ cores^p): near 1 for
    /// regular stencils, low for irregular graph traversal.
    double parallel_exponent = 0.88;

    // Learning-curve shape for the simulator's accuracy model.
    double accuracy_ceiling = 95.0;  ///< best achievable accuracy [%]
    double learning_rate_optimum = 0.02;  ///< lr with fastest convergence
    double convergence_rate = 0.15;  ///< per-effective-epoch progress

    bool is_text() const { return model_family == "cnn" || model_family == "lstm"; }
    bool is_kernel() const { return type == WorkloadType::kType3; }
};

/// The 7 evaluated workloads (Table 3).
const std::vector<Workload>& catalogue();
const Workload& find_workload(const std::string& name);
std::vector<Workload> workloads_of_type(WorkloadType type);

/// The five tuned hyperparameters with the paper's ranges (§7.1.3).
struct HyperParams {
    std::size_t batch_size = 32;     ///< [32, 1024]
    double dropout = 0.0;            ///< [0.0, 0.5]
    std::size_t embedding_dim = 50;  ///< [50, 300] (text models only)
    double learning_rate = 0.01;     ///< [0.001, 0.1]
    std::size_t epochs = 10;         ///< [10, 100]

    std::string to_string() const;
};

/// System parameters: the tunable resources (§7.1.4). The evaluation uses
/// cores in [4, 16] and memory in [4, 32] GB. CPU frequency (DVFS) is the
/// extension parameter the paper names ("the same mechanisms can be applied
/// to any other parameter of interest (e.g., CPU frequency, CPU voltage)");
/// it defaults to the base clock and is only probed when a policy opts in.
struct SystemParams {
    std::size_t cores = 4;
    std::size_t memory_gb = 4;
    double frequency_ghz = kBaseFrequencyGhz;

    static constexpr double kBaseFrequencyGhz = 2.4;

    bool operator==(const SystemParams&) const = default;
    std::string to_string() const;
};

/// DVFS steps available for probing (base clock first).
const std::vector<double>& frequency_steps_ghz();

/// Default configuration every Tune V1 trial runs with (the paper's V1 runs
/// "all trials with the same default system parameters").
SystemParams default_system_params();
/// The probing grid: cores x memory combinations (§7.2 lists cores
/// {4, 8, 16} and memory {4, 8, 16, 32} GB).
const std::vector<SystemParams>& system_param_grid();

/// Everything a tuner observes about one epoch of one trial.
struct EpochResult {
    std::size_t epoch = 0;        ///< 1-based
    double train_loss = 0.0;
    double accuracy = 0.0;        ///< validation accuracy (or kernel score) [0, 100]
    double duration_s = 0.0;      ///< wall-clock (virtual) seconds
    double energy_j = 0.0;        ///< node energy for the epoch
    perf::EventVector counters{}; ///< observed PMU rates (events/s)
    SystemParams system;          ///< configuration this epoch ran under
};

/// Seam for cross-cutting epoch instrumentation — fault injection
/// (ft::FaultInjector), chaos probes, extra telemetry. Backends that honor it
/// (SimBackend, RealBackend via their configs) call before_epoch() before any
/// per-epoch state is mutated (a throw there leaves the session re-runnable
/// for the same epoch) and after_epoch() with the finished result, which the
/// observer may mutate (e.g. a slow-node stall inflating duration_s).
class EpochObserver {
public:
    virtual ~EpochObserver() = default;
    /// May throw to make the epoch fail before it runs (the session must
    /// remain in a state where run_epoch can be retried).
    virtual void before_epoch(const Workload& workload, const HyperParams& hyper,
                              std::size_t epoch, const SystemParams& system) = 0;
    /// Observes (and may mutate) the completed epoch's result.
    virtual void after_epoch(const Workload& workload, std::size_t epoch,
                             EpochResult& result) = 0;
};

/// One training trial in progress: a fixed hyperparameter configuration whose
/// epochs execute one at a time, each under a (possibly different) system
/// configuration — exactly the hook PipeTune's pipelined sub-trials need.
class TrialSession {
public:
    virtual ~TrialSession() = default;
    virtual EpochResult run_epoch(const SystemParams& system) = 0;
    virtual std::size_t epochs_done() const = 0;
    virtual const Workload& workload() const = 0;
    virtual const HyperParams& hyperparams() const = 0;
};

/// Substrate factory. Implementations: sim::SimBackend (calibrated analytic
/// models on virtual time) and sim::RealBackend (the actual NN engine).
class Backend {
public:
    virtual ~Backend() = default;
    virtual std::unique_ptr<TrialSession> start_trial(const Workload& workload,
                                                      const HyperParams& hyper) = 0;
    virtual std::string name() const = 0;
};

}  // namespace pipetune::workload
