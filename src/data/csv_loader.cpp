#include "pipetune/data/csv_loader.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pipetune::data {

namespace {

std::vector<std::string> split_line(const std::string& line, char delimiter) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, delimiter)) cells.push_back(cell);
    if (!line.empty() && line.back() == delimiter) cells.emplace_back();
    return cells;
}

double parse_number(const std::string& cell, std::size_t row, std::size_t column) {
    try {
        std::size_t consumed = 0;
        const double value = std::stod(cell, &consumed);
        // Allow trailing whitespace only.
        for (std::size_t i = consumed; i < cell.size(); ++i)
            if (!std::isspace(static_cast<unsigned char>(cell[i])))
                throw std::invalid_argument("trailing characters");
        return value;
    } catch (const std::exception&) {
        throw std::runtime_error("CSV: non-numeric cell '" + cell + "' at row " +
                                 std::to_string(row) + ", column " + std::to_string(column));
    }
}

}  // namespace

std::unique_ptr<InMemoryDataset> parse_csv_dataset(const std::string& text,
                                                   const std::string& name,
                                                   const CsvLoadOptions& options) {
    std::istringstream stream(text);
    std::string line;
    std::vector<Tensor> samples;
    std::vector<std::size_t> labels;
    std::size_t expected_columns = 0;
    std::size_t row_index = 0;
    std::size_t max_label = 0;
    bool skipped_header = !options.has_header;

    while (std::getline(stream, line)) {
        ++row_index;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        if (!skipped_header) {
            skipped_header = true;
            continue;
        }
        const auto cells = split_line(line, options.delimiter);
        if (cells.size() < 2)
            throw std::runtime_error("CSV: row " + std::to_string(row_index) +
                                     " needs at least one feature and a label");
        if (expected_columns == 0) expected_columns = cells.size();
        if (cells.size() != expected_columns)
            throw std::runtime_error("CSV: ragged row " + std::to_string(row_index) + " (" +
                                     std::to_string(cells.size()) + " cells, expected " +
                                     std::to_string(expected_columns) + ")");

        const int raw_label_col = options.label_column < 0
                                      ? static_cast<int>(cells.size()) + options.label_column
                                      : options.label_column;
        if (raw_label_col < 0 || raw_label_col >= static_cast<int>(cells.size()))
            throw std::runtime_error("CSV: label column out of range");
        const auto label_col = static_cast<std::size_t>(raw_label_col);

        const double label_value = parse_number(cells[label_col], row_index, label_col);
        if (label_value < 0 || label_value != std::floor(label_value))
            throw std::runtime_error("CSV: label at row " + std::to_string(row_index) +
                                     " must be a non-negative integer");
        const auto label = static_cast<std::size_t>(label_value);
        max_label = std::max(max_label, label);

        Tensor features({cells.size() - 1});
        std::size_t f = 0;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c == label_col) continue;
            features(f++) = static_cast<float>(parse_number(cells[c], row_index, c));
        }
        samples.push_back(std::move(features));
        labels.push_back(label);
    }
    if (samples.empty()) throw std::runtime_error("CSV: no data rows in '" + name + "'");
    return std::make_unique<InMemoryDataset>(name, std::move(samples), std::move(labels),
                                             max_label + 1);
}

std::unique_ptr<InMemoryDataset> load_csv_dataset(const std::string& path,
                                                  const CsvLoadOptions& options) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("CSV: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_csv_dataset(buffer.str(), path, options);
}

}  // namespace pipetune::data
