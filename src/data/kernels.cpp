#include "pipetune/data/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "pipetune/util/rng.hpp"
#include "pipetune/util/thread_pool.hpp"

namespace pipetune::data {

namespace {
// Kernels are compute-bound and called with small worker counts; a shared
// pool would serialize across kernels, so each iteration spins its own.
void parallel_rows(std::size_t workers, std::size_t rows,
                   const std::function<void(std::size_t, std::size_t)>& body) {
    workers = std::max<std::size_t>(1, workers);
    if (workers == 1 || rows < 2 * workers) {
        body(0, rows);
        return;
    }
    util::ThreadPool pool(workers);
    const std::size_t chunk = (rows + workers - 1) / workers;
    pool.parallel_for(workers, [&](std::size_t w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(begin + chunk, rows);
        if (begin < end) body(begin, end);
    });
}
}  // namespace

JacobiKernel::JacobiKernel(std::size_t grid_size, std::uint64_t seed) : n_(grid_size) {
    if (grid_size < 4) throw std::invalid_argument("JacobiKernel: grid too small");
    util::Rng rng(seed);
    grid_.assign(n_ * n_, 0.0);
    // Random hot boundary, cold interior: a classic heat-diffusion setup.
    for (std::size_t i = 0; i < n_; ++i) {
        grid_[i] = rng.uniform(0.5, 1.0);                  // top row
        grid_[(n_ - 1) * n_ + i] = rng.uniform(0.0, 0.3);  // bottom row
        grid_[i * n_] = rng.uniform(0.2, 0.8);             // left column
        grid_[i * n_ + n_ - 1] = rng.uniform(0.2, 0.8);    // right column
    }
    next_ = grid_;
    initial_residual_ = compute_residual();
    last_residual_ = initial_residual_;
}

double JacobiKernel::compute_residual() const {
    double acc = 0.0;
    for (std::size_t y = 1; y + 1 < n_; ++y)
        for (std::size_t x = 1; x + 1 < n_; ++x) {
            const double stencil = 0.25 * (grid_[(y - 1) * n_ + x] + grid_[(y + 1) * n_ + x] +
                                           grid_[y * n_ + x - 1] + grid_[y * n_ + x + 1]);
            const double diff = stencil - grid_[y * n_ + x];
            acc += diff * diff;
        }
    return std::sqrt(acc);
}

void JacobiKernel::run_iteration(std::size_t workers) {
    parallel_rows(workers, n_ - 2, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
            const std::size_t y = r + 1;
            for (std::size_t x = 1; x + 1 < n_; ++x)
                next_[y * n_ + x] = 0.25 * (grid_[(y - 1) * n_ + x] + grid_[(y + 1) * n_ + x] +
                                            grid_[y * n_ + x - 1] + grid_[y * n_ + x + 1]);
        }
    });
    std::swap(grid_, next_);
    last_residual_ = compute_residual();
    ++iterations_;
}

double JacobiKernel::score() const {
    if (initial_residual_ <= 0) return 100.0;
    const double reduction = 1.0 - last_residual_ / initial_residual_;
    return std::clamp(reduction, 0.0, 1.0) * 100.0;
}

bool JacobiKernel::converged() const {
    return last_residual_ < 1e-4 * initial_residual_;
}

BfsKernel::BfsKernel(std::size_t nodes, std::size_t avg_degree, std::uint64_t seed) {
    if (nodes < 2) throw std::invalid_argument("BfsKernel: need at least 2 nodes");
    util::Rng rng(seed);
    adjacency_.resize(nodes);
    // Connected backbone (random tree) plus random extra edges for the
    // requested average degree.
    for (std::size_t v = 1; v < nodes; ++v) {
        const auto parent = static_cast<std::uint32_t>(rng.index(v));
        adjacency_[v].push_back(parent);
        adjacency_[parent].push_back(static_cast<std::uint32_t>(v));
    }
    const std::size_t extra_edges = nodes * avg_degree / 2;
    for (std::size_t e = 0; e < extra_edges; ++e) {
        const auto a = static_cast<std::uint32_t>(rng.index(nodes));
        const auto b = static_cast<std::uint32_t>(rng.index(nodes));
        if (a == b) continue;
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
    }
    visited_.assign(nodes, false);
    visited_[0] = true;
    visited_count_ = 1;
    frontier_.push_back(0);
}

void BfsKernel::run_iteration(std::size_t workers) {
    if (frontier_.empty()) return;
    // Per-worker next-frontier buffers; duplicates are resolved when merging
    // (level-synchronous BFS is the Rodinia formulation).
    workers = std::max<std::size_t>(1, workers);
    std::vector<std::vector<std::uint32_t>> local_next(workers);
    parallel_rows(workers, frontier_.size(), [&](std::size_t begin, std::size_t end) {
        // Identify this chunk's worker slot by its begin offset.
        const std::size_t chunk = (frontier_.size() + workers - 1) / workers;
        const std::size_t slot = std::min(begin / std::max<std::size_t>(1, chunk), workers - 1);
        for (std::size_t i = begin; i < end; ++i)
            for (std::uint32_t neighbor : adjacency_[frontier_[i]])
                if (!visited_[neighbor]) local_next[slot].push_back(neighbor);
    });
    std::vector<std::uint32_t> next;
    for (auto& bucket : local_next)
        for (std::uint32_t v : bucket)
            if (!visited_[v]) {
                visited_[v] = true;
                ++visited_count_;
                next.push_back(v);
            }
    frontier_ = std::move(next);
    ++iterations_;
}

double BfsKernel::score() const {
    return 100.0 * static_cast<double>(visited_count_) / static_cast<double>(adjacency_.size());
}

SpKMeansKernel::SpKMeansKernel(std::size_t points, std::size_t dims, std::size_t k,
                               std::uint64_t seed)
    : dims_(dims), k_(k) {
    if (points < k || k == 0 || dims == 0)
        throw std::invalid_argument("SpKMeansKernel: invalid sizes");
    util::Rng rng(seed);
    // Synthetic gaussian clusters around k well-separated centres.
    std::vector<double> true_centres(k * dims);
    for (auto& c : true_centres) c = rng.uniform(-10.0, 10.0);
    points_.resize(points * dims);
    for (std::size_t p = 0; p < points; ++p) {
        const std::size_t c = p % k;
        for (std::size_t d = 0; d < dims; ++d)
            points_[p * dims + d] = true_centres[c * dims + d] + rng.normal(0.0, 1.0);
    }
    // Random initial centroids drawn from the data.
    centroids_.resize(k * dims);
    for (std::size_t c = 0; c < k; ++c) {
        const std::size_t p = rng.index(points);
        for (std::size_t d = 0; d < dims; ++d) centroids_[c * dims + d] = points_[p * dims + d];
    }
    assignment_.assign(points, 0);
    // Initial inertia under the random centroids.
    double acc = 0.0;
    for (std::size_t p = 0; p < points; ++p) {
        double best = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
            double dist = 0.0;
            for (std::size_t d = 0; d < dims; ++d) {
                const double delta = points_[p * dims + d] - centroids_[c * dims + d];
                dist += delta * delta;
            }
            best = std::min(best, dist);
        }
        acc += best;
    }
    initial_inertia_ = acc;
    last_inertia_ = acc;
}

void SpKMeansKernel::run_iteration(std::size_t workers) {
    const std::size_t points = assignment_.size();
    std::vector<std::size_t> new_assignment(points);
    std::vector<double> inertia_parts(std::max<std::size_t>(1, workers), 0.0);
    workers = std::max<std::size_t>(1, workers);
    const std::size_t chunk = (points + workers - 1) / workers;
    parallel_rows(workers, points, [&](std::size_t begin, std::size_t end) {
        const std::size_t slot = std::min(begin / std::max<std::size_t>(1, chunk), workers - 1);
        for (std::size_t p = begin; p < end; ++p) {
            double best = std::numeric_limits<double>::max();
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < k_; ++c) {
                double dist = 0.0;
                for (std::size_t d = 0; d < dims_; ++d) {
                    const double delta = points_[p * dims_ + d] - centroids_[c * dims_ + d];
                    dist += delta * delta;
                }
                if (dist < best) {
                    best = dist;
                    best_c = c;
                }
            }
            new_assignment[p] = best_c;
            inertia_parts[slot] += best;
        }
    });
    converged_ = (new_assignment == assignment_) && iterations_ > 0;
    assignment_ = std::move(new_assignment);
    last_inertia_ = 0.0;
    for (double part : inertia_parts) last_inertia_ += part;

    // Update step.
    std::vector<double> sums(k_ * dims_, 0.0);
    std::vector<std::size_t> counts(k_, 0);
    for (std::size_t p = 0; p < points; ++p) {
        const std::size_t c = assignment_[p];
        ++counts[c];
        for (std::size_t d = 0; d < dims_; ++d) sums[c * dims_ + d] += points_[p * dims_ + d];
    }
    for (std::size_t c = 0; c < k_; ++c)
        if (counts[c] > 0)
            for (std::size_t d = 0; d < dims_; ++d)
                centroids_[c * dims_ + d] = sums[c * dims_ + d] / static_cast<double>(counts[c]);
    ++iterations_;
}

double SpKMeansKernel::score() const {
    if (initial_inertia_ <= 0) return 100.0;
    const double improvement = 1.0 - last_inertia_ / initial_inertia_;
    return std::clamp(improvement, 0.0, 1.0) * 100.0;
}

std::unique_ptr<IterativeKernel> make_kernel(const std::string& kernel_name, std::uint64_t seed) {
    if (kernel_name == "jacobi") return std::make_unique<JacobiKernel>(64, seed);
    if (kernel_name == "bfs") return std::make_unique<BfsKernel>(20000, 4, seed);
    if (kernel_name == "spkmeans") return std::make_unique<SpKMeansKernel>(4000, 8, 10, seed);
    throw std::invalid_argument("make_kernel: unknown kernel '" + kernel_name + "'");
}

}  // namespace pipetune::data
