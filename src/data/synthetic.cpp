#include "pipetune/data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipetune::data {

namespace {

// Smooth blob prototype: sum of a few random gaussians on the image plane.
Tensor digit_prototype(std::size_t size, util::Rng& rng) {
    Tensor proto({1, size, size});
    const int blobs = static_cast<int>(rng.uniform_int(2, 4));
    for (int b = 0; b < blobs; ++b) {
        const double cx = rng.uniform(0.2, 0.8) * static_cast<double>(size);
        const double cy = rng.uniform(0.2, 0.8) * static_cast<double>(size);
        const double sigma = rng.uniform(0.08, 0.2) * static_cast<double>(size);
        const double amp = rng.uniform(0.6, 1.0);
        for (std::size_t y = 0; y < size; ++y)
            for (std::size_t x = 0; x < size; ++x) {
                const double dx = static_cast<double>(x) - cx;
                const double dy = static_cast<double>(y) - cy;
                proto(0, y, x) += static_cast<float>(
                    amp * std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma)));
            }
    }
    return proto;
}

// Blocky prototype: random axis-aligned rectangles plus stripes, echoing the
// garment silhouettes of Fashion-MNIST.
Tensor fashion_prototype(std::size_t size, util::Rng& rng) {
    Tensor proto({1, size, size});
    const int rects = static_cast<int>(rng.uniform_int(2, 3));
    for (int r = 0; r < rects; ++r) {
        const auto x0 = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(size / 2)));
        const auto y0 = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(size / 2)));
        const auto w = static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(size / 4),
                                                                static_cast<std::int64_t>(size / 2)));
        const auto h = static_cast<std::size_t>(rng.uniform_int(static_cast<std::int64_t>(size / 4),
                                                                static_cast<std::int64_t>(size / 2)));
        const auto amp = static_cast<float>(rng.uniform(0.5, 1.0));
        for (std::size_t y = y0; y < std::min(y0 + h, size); ++y)
            for (std::size_t x = x0; x < std::min(x0 + w, size); ++x) proto(0, y, x) += amp;
    }
    const std::size_t stripe = static_cast<std::size_t>(rng.uniform_int(2, 4));
    for (std::size_t y = 0; y < size; ++y)
        if (y % stripe == 0)
            for (std::size_t x = 0; x < size; ++x) proto(0, y, x) *= 0.7f;
    return proto;
}

void clamp01(Tensor& t) {
    t.apply([](float v) { return std::clamp(v, 0.0f, 1.0f); });
}

}  // namespace

std::unique_ptr<InMemoryDataset> make_image_dataset(const ImageDatasetConfig& config,
                                                    const std::string& name) {
    if (config.classes == 0 || config.samples == 0 || config.image_size == 0)
        throw std::invalid_argument("make_image_dataset: zero-sized configuration");
    util::Rng rng(config.seed);
    std::vector<Tensor> prototypes;
    prototypes.reserve(config.classes);
    for (std::size_t c = 0; c < config.classes; ++c)
        prototypes.push_back(config.style == ImageStyle::kDigits
                                 ? digit_prototype(config.image_size, rng)
                                 : fashion_prototype(config.image_size, rng));

    std::vector<Tensor> samples;
    std::vector<std::size_t> labels;
    samples.reserve(config.samples);
    labels.reserve(config.samples);
    for (std::size_t i = 0; i < config.samples; ++i) {
        const std::size_t cls = i % config.classes;  // balanced classes
        Tensor sample = prototypes[cls];
        for (std::size_t k = 0; k < sample.numel(); ++k)
            sample[k] += static_cast<float>(rng.normal(0.0, config.noise));
        clamp01(sample);
        samples.push_back(std::move(sample));
        labels.push_back(cls);
    }
    return std::make_unique<InMemoryDataset>(name, std::move(samples), std::move(labels),
                                             config.classes);
}

std::unique_ptr<InMemoryDataset> make_text_dataset(const TextDatasetConfig& config,
                                                   const std::string& name) {
    if (config.classes == 0 || config.samples == 0 || config.vocab_size < config.classes * 4)
        throw std::invalid_argument("make_text_dataset: vocabulary too small for class topics");
    if (config.topic_strength < 0 || config.topic_strength > 1)
        throw std::invalid_argument("make_text_dataset: topic_strength must be in [0, 1]");
    util::Rng rng(config.seed);

    // Zipfian background over the whole vocabulary.
    std::vector<double> background(config.vocab_size);
    for (std::size_t v = 0; v < config.vocab_size; ++v)
        background[v] = 1.0 / static_cast<double>(v + 1);

    // Disjoint per-class topic vocabularies (a handful of characteristic
    // tokens each, like newsgroup jargon).
    const std::size_t topic_words = std::max<std::size_t>(4, config.vocab_size / (config.classes * 8));
    std::vector<std::vector<std::size_t>> topics(config.classes);
    std::size_t next_token = config.vocab_size / 2;  // topics live in the rarer half
    for (std::size_t c = 0; c < config.classes; ++c) {
        for (std::size_t w = 0; w < topic_words; ++w)
            topics[c].push_back((next_token + w) % config.vocab_size);
        next_token += topic_words;
    }

    std::vector<Tensor> samples;
    std::vector<std::size_t> labels;
    samples.reserve(config.samples);
    labels.reserve(config.samples);
    for (std::size_t i = 0; i < config.samples; ++i) {
        const std::size_t cls = i % config.classes;
        Tensor sample({config.seq_len});
        for (std::size_t t = 0; t < config.seq_len; ++t) {
            std::size_t token;
            if (rng.bernoulli(config.topic_strength)) {
                token = topics[cls][rng.index(topics[cls].size())];
            } else {
                token = rng.weighted_index(background);
            }
            sample(t) = static_cast<float>(token);
        }
        samples.push_back(std::move(sample));
        labels.push_back(cls);
    }
    return std::make_unique<InMemoryDataset>(name, std::move(samples), std::move(labels),
                                             config.classes);
}

TrainTestPair make_image_split(ImageDatasetConfig config, const std::string& name,
                               std::size_t test_samples) {
    TrainTestPair pair;
    // Same prototypes require the same seed: generate train+test as one run
    // (prototypes are drawn first, then per-sample noise in index order), and
    // slice off the tail as the test set.
    pair.train = make_image_dataset(config, name + "-train");
    auto full = make_image_dataset(
        [&] {
            ImageDatasetConfig combined = config;
            combined.samples = config.samples + test_samples;
            return combined;
        }(),
        name);
    std::vector<Tensor> test_feats;
    std::vector<std::size_t> test_labels;
    for (std::size_t i = config.samples; i < config.samples + test_samples; ++i) {
        test_feats.push_back(full->features(i));
        test_labels.push_back(full->label(i));
    }
    pair.test = std::make_unique<InMemoryDataset>(name + "-test", std::move(test_feats),
                                                  std::move(test_labels), config.classes);
    return pair;
}

TrainTestPair make_text_split(TextDatasetConfig config, const std::string& name,
                              std::size_t test_samples) {
    TrainTestPair pair;
    TextDatasetConfig combined = config;
    combined.samples = config.samples + test_samples;
    auto full = make_text_dataset(combined, name);
    std::vector<Tensor> train_feats, test_feats;
    std::vector<std::size_t> train_labels, test_labels;
    for (std::size_t i = 0; i < config.samples; ++i) {
        train_feats.push_back(full->features(i));
        train_labels.push_back(full->label(i));
    }
    for (std::size_t i = config.samples; i < combined.samples; ++i) {
        test_feats.push_back(full->features(i));
        test_labels.push_back(full->label(i));
    }
    pair.train = std::make_unique<InMemoryDataset>(name + "-train", std::move(train_feats),
                                                   std::move(train_labels), config.classes);
    pair.test = std::make_unique<InMemoryDataset>(name + "-test", std::move(test_feats),
                                                  std::move(test_labels), config.classes);
    return pair;
}

}  // namespace pipetune::data
