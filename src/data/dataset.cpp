#include "pipetune/data/dataset.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pipetune::data {

InMemoryDataset::InMemoryDataset(std::string name, std::vector<Tensor> samples,
                                 std::vector<std::size_t> labels, std::size_t num_classes)
    : name_(std::move(name)),
      samples_(std::move(samples)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
    if (samples_.empty()) throw std::invalid_argument("InMemoryDataset: no samples");
    if (samples_.size() != labels_.size())
        throw std::invalid_argument("InMemoryDataset: sample/label count mismatch");
    if (num_classes_ == 0) throw std::invalid_argument("InMemoryDataset: zero classes");
    const auto& shape = samples_.front().shape();
    for (const auto& s : samples_)
        if (s.shape() != shape)
            throw std::invalid_argument("InMemoryDataset: inconsistent feature shapes");
    for (std::size_t l : labels_)
        if (l >= num_classes_)
            throw std::invalid_argument("InMemoryDataset: label out of range");
}

const Tensor& InMemoryDataset::features(std::size_t index) const {
    if (index >= samples_.size()) throw std::out_of_range("InMemoryDataset::features");
    return samples_[index];
}

std::size_t InMemoryDataset::label(std::size_t index) const {
    if (index >= labels_.size()) throw std::out_of_range("InMemoryDataset::label");
    return labels_[index];
}

tensor::Shape InMemoryDataset::feature_shape() const { return samples_.front().shape(); }

Batch stack_batch(const Dataset& dataset, const std::vector<std::size_t>& indices) {
    if (indices.empty()) throw std::invalid_argument("stack_batch: empty index list");
    const auto sample_shape = dataset.feature_shape();
    tensor::Shape batch_shape;
    batch_shape.push_back(indices.size());
    for (std::size_t d : sample_shape) batch_shape.push_back(d);
    Batch batch{Tensor(batch_shape), {}};
    batch.labels.reserve(indices.size());
    const std::size_t stride = tensor::shape_numel(sample_shape);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const Tensor& sample = dataset.features(indices[i]);
        std::copy(sample.data(), sample.data() + stride, batch.features.data() + i * stride);
        batch.labels.push_back(dataset.label(indices[i]));
    }
    return batch;
}

SplitDatasets split_dataset(const Dataset& dataset, double train_fraction,
                            std::uint64_t seed) {
    if (train_fraction <= 0.0 || train_fraction >= 1.0)
        throw std::invalid_argument("split_dataset: train_fraction must be in (0, 1)");
    std::vector<std::size_t> order(dataset.size());
    std::iota(order.begin(), order.end(), 0);
    util::Rng rng(seed);
    rng.shuffle(order);
    const auto cut = static_cast<std::size_t>(
        std::llround(train_fraction * static_cast<double>(dataset.size())));
    if (cut == 0 || cut == dataset.size())
        throw std::invalid_argument("split_dataset: a split side would be empty");

    auto take = [&](std::size_t begin, std::size_t end, const std::string& suffix) {
        std::vector<Tensor> features;
        std::vector<std::size_t> labels;
        features.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            features.push_back(dataset.features(order[i]));
            labels.push_back(dataset.label(order[i]));
        }
        return std::make_unique<InMemoryDataset>(dataset.name() + suffix, std::move(features),
                                                 std::move(labels), dataset.num_classes());
    };
    return {take(0, cut, "-train"), take(cut, dataset.size(), "-test")};
}

BatchIterator::BatchIterator(const Dataset& dataset, std::size_t batch_size, util::Rng& rng,
                             bool shuffle)
    : dataset_(dataset), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
    if (batch_size == 0) throw std::invalid_argument("BatchIterator: batch_size must be > 0");
    order_.resize(dataset.size());
    std::iota(order_.begin(), order_.end(), 0);
    reset();
}

void BatchIterator::reset() {
    cursor_ = 0;
    if (shuffle_) rng_.shuffle(order_);
}

std::size_t BatchIterator::batches_per_epoch() const {
    return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

bool BatchIterator::next(Batch& out) {
    if (cursor_ >= order_.size()) return false;
    const std::size_t end = std::min(cursor_ + batch_size_, order_.size());
    std::vector<std::size_t> indices(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                     order_.begin() + static_cast<std::ptrdiff_t>(end));
    cursor_ = end;
    out = stack_batch(dataset_, indices);
    return true;
}

}  // namespace pipetune::data
