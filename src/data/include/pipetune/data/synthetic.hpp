#pragma once
// Synthetic dataset generators — offline substitutes for the paper's MNIST,
// Fashion-MNIST and News20 datasets (Table 3). Each generator is
// deterministic in its seed and produces learnably separable classes: class
// prototypes plus per-sample noise, so real SGD training converges and
// learning curves have the expected shape (accuracy rises with epochs,
// degrades with oversized batch, etc.).

#include <memory>

#include "pipetune/data/dataset.hpp"

namespace pipetune::data {

enum class ImageStyle {
    kDigits,   ///< smooth gaussian-blob prototypes (MNIST-like)
    kFashion,  ///< blockier textured prototypes (Fashion-MNIST-like)
};

struct ImageDatasetConfig {
    std::size_t classes = 10;
    std::size_t samples = 512;
    std::size_t image_size = 28;
    ImageStyle style = ImageStyle::kDigits;
    double noise = 0.15;  ///< per-pixel gaussian noise std
    std::uint64_t seed = 1;
};

/// Grayscale image dataset with shape (1, size, size) per sample, pixel
/// values in [0, 1].
std::unique_ptr<InMemoryDataset> make_image_dataset(const ImageDatasetConfig& config,
                                                    const std::string& name);

struct TextDatasetConfig {
    std::size_t classes = 20;
    std::size_t samples = 512;
    std::size_t vocab_size = 2000;
    std::size_t seq_len = 32;
    /// Probability a token is drawn from the class-specific topic vocabulary
    /// rather than the shared background distribution.
    double topic_strength = 0.5;
    std::uint64_t seed = 1;
};

/// Token-sequence dataset (News20-like): each sample is (seq_len,) token ids
/// stored as floats, drawn from a Zipfian background mixed with a per-class
/// topic vocabulary.
std::unique_ptr<InMemoryDataset> make_text_dataset(const TextDatasetConfig& config,
                                                   const std::string& name);

/// Convenience: train/test split of the same distribution (different seeds).
struct TrainTestPair {
    std::unique_ptr<InMemoryDataset> train;
    std::unique_ptr<InMemoryDataset> test;
};
TrainTestPair make_image_split(ImageDatasetConfig config, const std::string& name,
                               std::size_t test_samples);
TrainTestPair make_text_split(TextDatasetConfig config, const std::string& name,
                              std::size_t test_samples);

}  // namespace pipetune::data
