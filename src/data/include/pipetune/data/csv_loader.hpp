#pragma once
// CSV dataset loader — the adoption path for users with their own tabular
// data. Each row is one sample: numeric feature columns plus one integer
// label column. Returns the same InMemoryDataset the synthetic generators
// produce, so everything downstream (Trainer, RealBackend, tuners) works
// unchanged.

#include <memory>
#include <string>

#include "pipetune/data/dataset.hpp"

namespace pipetune::data {

struct CsvLoadOptions {
    bool has_header = true;
    /// Column index holding the class label; negative counts from the end
    /// (-1 = last column).
    int label_column = -1;
    char delimiter = ',';
};

/// Load a dataset from a CSV file. Throws std::runtime_error on I/O or parse
/// problems (non-numeric cell, ragged rows, label out of range, empty file).
/// The number of classes is max(label) + 1; labels must be non-negative
/// integers.
std::unique_ptr<InMemoryDataset> load_csv_dataset(const std::string& path,
                                                  const CsvLoadOptions& options = {});

/// Parse from text (used by load_csv_dataset and directly testable).
std::unique_ptr<InMemoryDataset> parse_csv_dataset(const std::string& text,
                                                   const std::string& name,
                                                   const CsvLoadOptions& options = {});

}  // namespace pipetune::data
