#pragma once
// Type-III workloads: re-implementations of the Rodinia-style iterative
// kernels the paper evaluates on a single node (Jacobi, BFS, spk-means,
// Fig 12/14). Each kernel exposes the same epoch-iterative contract the DNN
// trainer does — run one iteration, report a convergence score in [0, 100] —
// so the tuning stack treats them uniformly. Iterations are parallelizable
// across a worker count, mirroring the kernels' multicore behaviour.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pipetune::data {

class IterativeKernel {
public:
    virtual ~IterativeKernel() = default;

    /// Execute one iteration (one "epoch" at the tuning layer) using
    /// `workers` parallel workers.
    virtual void run_iteration(std::size_t workers) = 0;

    /// Convergence score in [0, 100]; analogous to model accuracy.
    virtual double score() const = 0;

    virtual bool converged() const = 0;
    virtual std::size_t iterations_done() const = 0;
    virtual std::string name() const = 0;
};

/// 2-D Jacobi solver for the Poisson problem on a square grid with fixed
/// boundary values; score tracks residual reduction.
class JacobiKernel : public IterativeKernel {
public:
    JacobiKernel(std::size_t grid_size, std::uint64_t seed);

    void run_iteration(std::size_t workers) override;
    double score() const override;
    bool converged() const override;
    std::size_t iterations_done() const override { return iterations_; }
    std::string name() const override { return "jacobi"; }

    double residual() const { return last_residual_; }

private:
    double compute_residual() const;

    std::size_t n_;
    std::vector<double> grid_, next_;
    double initial_residual_;
    double last_residual_;
    std::size_t iterations_ = 0;
};

/// Level-synchronous BFS over a random graph; one iteration expands one
/// frontier level. Score is the fraction of reachable nodes visited.
class BfsKernel : public IterativeKernel {
public:
    BfsKernel(std::size_t nodes, std::size_t avg_degree, std::uint64_t seed);

    void run_iteration(std::size_t workers) override;
    double score() const override;
    bool converged() const override { return frontier_.empty(); }
    std::size_t iterations_done() const override { return iterations_; }
    std::string name() const override { return "bfs"; }

    std::size_t visited_count() const { return visited_count_; }

private:
    std::vector<std::vector<std::uint32_t>> adjacency_;
    std::vector<bool> visited_;
    std::vector<std::uint32_t> frontier_;
    std::size_t visited_count_ = 0;
    std::size_t iterations_ = 0;
};

/// Lloyd k-means over synthetic gaussian clusters ("spk-means" in the paper
/// runs k-means on Spark; here one iteration = one assign+update sweep).
/// Score is the relative inertia improvement over the initial assignment.
class SpKMeansKernel : public IterativeKernel {
public:
    SpKMeansKernel(std::size_t points, std::size_t dims, std::size_t k, std::uint64_t seed);

    void run_iteration(std::size_t workers) override;
    double score() const override;
    bool converged() const override { return converged_; }
    std::size_t iterations_done() const override { return iterations_; }
    std::string name() const override { return "spkmeans"; }

    double inertia() const { return last_inertia_; }

private:
    std::size_t dims_, k_;
    std::vector<double> points_;     ///< row-major (points, dims)
    std::vector<double> centroids_;  ///< row-major (k, dims)
    std::vector<std::size_t> assignment_;
    double initial_inertia_ = 0.0;
    double last_inertia_ = 0.0;
    bool converged_ = false;
    std::size_t iterations_ = 0;
};

/// Factory by paper workload name: "jacobi", "bfs", "spkmeans".
std::unique_ptr<IterativeKernel> make_kernel(const std::string& kernel_name, std::uint64_t seed);

}  // namespace pipetune::data
