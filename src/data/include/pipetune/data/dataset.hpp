#pragma once
// Dataset abstraction and minibatching for the NN engine. A workload in the
// paper is a (model, dataset) pair (§3.3); datasets here are in-memory and
// synthetic (offline substitutes for MNIST / Fashion-MNIST / News20, see
// DESIGN.md §2).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pipetune/tensor/tensor.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::data {

using tensor::Tensor;

class Dataset {
public:
    virtual ~Dataset() = default;
    virtual std::size_t size() const = 0;
    /// Feature tensor of one sample (no batch dimension).
    virtual const Tensor& features(std::size_t index) const = 0;
    virtual std::size_t label(std::size_t index) const = 0;
    virtual tensor::Shape feature_shape() const = 0;
    virtual std::size_t num_classes() const = 0;
    virtual std::string name() const = 0;
};

/// Concrete dataset backed by vectors; the generators below produce these.
class InMemoryDataset : public Dataset {
public:
    InMemoryDataset(std::string name, std::vector<Tensor> samples,
                    std::vector<std::size_t> labels, std::size_t num_classes);

    std::size_t size() const override { return samples_.size(); }
    const Tensor& features(std::size_t index) const override;
    std::size_t label(std::size_t index) const override;
    tensor::Shape feature_shape() const override;
    std::size_t num_classes() const override { return num_classes_; }
    std::string name() const override { return name_; }

private:
    std::string name_;
    std::vector<Tensor> samples_;
    std::vector<std::size_t> labels_;
    std::size_t num_classes_;
};

/// Stack samples at `indices` into one batch tensor (batch-major) plus labels.
struct Batch {
    Tensor features;                  ///< (batch, ...feature dims)
    std::vector<std::size_t> labels;  ///< batch labels
};
Batch stack_batch(const Dataset& dataset, const std::vector<std::size_t>& indices);

/// Random train/test partition of any dataset (used with load_csv_dataset to
/// bring user data into the Trainer/Backend pipeline). `train_fraction` in
/// (0, 1); both halves are non-empty or the call throws.
struct SplitDatasets {
    std::unique_ptr<InMemoryDataset> train;
    std::unique_ptr<InMemoryDataset> test;
};
SplitDatasets split_dataset(const Dataset& dataset, double train_fraction, std::uint64_t seed);

/// Shuffled minibatch iterator over a dataset; one pass = one epoch. The last
/// partial batch is kept (paper epochs cover the full dataset).
class BatchIterator {
public:
    BatchIterator(const Dataset& dataset, std::size_t batch_size, util::Rng& rng,
                  bool shuffle = true);

    /// False when the epoch is exhausted.
    bool next(Batch& out);
    void reset();
    std::size_t batches_per_epoch() const;

private:
    const Dataset& dataset_;
    std::size_t batch_size_;
    util::Rng& rng_;
    bool shuffle_;
    std::vector<std::size_t> order_;
    std::size_t cursor_ = 0;
};

}  // namespace pipetune::data
