#include "pipetune/sim/real_backend.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "pipetune/data/kernels.hpp"
#include "pipetune/data/synthetic.hpp"
#include "pipetune/nn/models.hpp"
#include "pipetune/nn/trainer.hpp"
#include "pipetune/sim/sim_backend.hpp"

namespace pipetune::sim {

using workload::EpochResult;
using workload::HyperParams;
using workload::SystemParams;
using workload::TrialSession;
using workload::Workload;

struct RealBackend::Impl {
    RealBackendConfig config;
    energy::PowerModel power;
    util::Rng seed_source;

    Impl(RealBackendConfig cfg) : config(cfg), power(cfg.power), seed_source(cfg.seed) {}
};

namespace {

double elapsed_seconds(const std::chrono::steady_clock::time_point& start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Trial over the real NN trainer.
class RealDnnSession : public TrialSession {
public:
    RealDnnSession(const Workload& workload, HyperParams hyper, const RealBackendConfig& config,
                   const energy::PowerModel& power, std::uint64_t seed)
        : workload_(workload),
          hyper_(hyper),
          config_(config),
          power_(power),
          pmu_(config.pmu),
          rng_(seed) {
        // Datasets: MNIST-like vs Fashion-like vs News20-like per workload.
        if (workload.is_text()) {
            data::TextDatasetConfig text;
            text.classes = config.text_classes;
            text.samples = config.train_samples;
            text.vocab_size = config.text_vocab;
            text.seq_len = config.text_seq_len;
            text.topic_strength = 0.7;
            text.seed = seed ^ 0xa5a5;
            auto pair = data::make_text_split(text, workload.dataset_family, config.test_samples);
            train_ = std::move(pair.train);
            test_ = std::move(pair.test);

            nn::TextModelConfig model_config;
            model_config.vocab_size = config.text_vocab;
            model_config.seq_len = config.text_seq_len;
            model_config.classes = config.text_classes;
            // The paper's embedding range [50, 300] is scaled into a regime a
            // milliseconds-sized model can afford.
            model_config.embedding_dim = std::max<std::size_t>(8, hyper.embedding_dim / 10);
            model_config.dropout = hyper.dropout;
            model_config.seed = seed;
            nn::Sequential model = workload.model_family == "cnn"
                                       ? nn::build_textcnn(model_config)
                                       : nn::build_lstm_classifier(model_config);
            make_trainer(std::move(model), seed);
        } else if (workload.model_family == "lenet") {
            data::ImageDatasetConfig image;
            image.classes = config.image_classes;
            image.samples = config.train_samples;
            image.image_size = config.image_size;
            image.style = workload.dataset_family == "fashion" ? data::ImageStyle::kFashion
                                                               : data::ImageStyle::kDigits;
            image.seed = seed ^ 0x5a5a;
            auto pair = data::make_image_split(image, workload.dataset_family, config.test_samples);
            train_ = std::move(pair.train);
            test_ = std::move(pair.test);

            nn::ImageModelConfig model_config;
            model_config.image_size = config.image_size;
            model_config.classes = config.image_classes;
            model_config.dropout = hyper.dropout;
            model_config.seed = seed;
            make_trainer(nn::build_lenet5(model_config), seed);
        } else {
            throw std::invalid_argument("RealDnnSession: not a DNN workload: " + workload.name);
        }
    }

    EpochResult run_epoch(const SystemParams& system) override {
        if (config_.epoch_observer != nullptr)
            config_.epoch_observer->before_epoch(workload_, hyper_, trainer_->epochs_done() + 1,
                                                 system);
        const std::size_t workers = std::clamp<std::size_t>(system.cores, 1, config_.max_workers);
        const auto start = std::chrono::steady_clock::now();
        const nn::EpochStats stats = trainer_->run_epoch(workers);
        const double duration = std::max(1e-6, elapsed_seconds(start));

        EpochResult result;
        result.epoch = stats.epoch;
        result.train_loss = stats.train_loss;
        result.accuracy = stats.test_accuracy;
        result.duration_s = duration;
        const double watts = power_.power_watts(system.cores, 0.9,
                                                static_cast<double>(system.memory_gb));
        result.energy_j = watts * duration;
        result.counters = pmu_.measure_epoch(
            perf::true_event_rates(SimBackend::fingerprint(workload_, hyper_, system)), duration,
            rng_);
        if (config_.epoch_observer != nullptr)
            config_.epoch_observer->after_epoch(workload_, result.epoch, result);
        return result;
    }

    std::size_t epochs_done() const override { return trainer_->epochs_done(); }
    const Workload& workload() const override { return workload_; }
    const HyperParams& hyperparams() const override { return hyper_; }

private:
    void make_trainer(nn::Sequential model, std::uint64_t seed) {
        nn::TrainerConfig trainer_config;
        trainer_config.batch_size = std::max<std::size_t>(4, hyper_.batch_size / 8);
        trainer_config.sgd.learning_rate = hyper_.learning_rate;
        trainer_config.sgd.momentum = 0.9;
        trainer_config.seed = seed;
        trainer_ = std::make_unique<nn::Trainer>(std::move(model), *train_, *test_,
                                                 trainer_config);
    }

    Workload workload_;
    HyperParams hyper_;
    RealBackendConfig config_;
    const energy::PowerModel& power_;
    perf::PmuSimulator pmu_;
    util::Rng rng_;
    std::unique_ptr<data::InMemoryDataset> train_;
    std::unique_ptr<data::InMemoryDataset> test_;
    std::unique_ptr<nn::Trainer> trainer_;
};

/// Trial over a Type-III iterative kernel.
class RealKernelSession : public TrialSession {
public:
    RealKernelSession(const Workload& workload, HyperParams hyper,
                      const RealBackendConfig& config, const energy::PowerModel& power,
                      std::uint64_t seed)
        : workload_(workload),
          hyper_(hyper),
          config_(config),
          power_(power),
          pmu_(config.pmu),
          rng_(seed),
          kernel_(data::make_kernel(workload.model_family, seed)) {}

    EpochResult run_epoch(const SystemParams& system) override {
        if (config_.epoch_observer != nullptr)
            config_.epoch_observer->before_epoch(workload_, hyper_, epochs_ + 1, system);
        const std::size_t workers = std::clamp<std::size_t>(system.cores, 1, config_.max_workers);
        const auto start = std::chrono::steady_clock::now();
        kernel_->run_iteration(workers);
        const double duration = std::max(1e-6, elapsed_seconds(start));

        EpochResult result;
        result.epoch = ++epochs_;
        result.accuracy = kernel_->score();
        result.train_loss = 1.0 - result.accuracy / 100.0;
        result.duration_s = duration;
        const double watts = power_.power_watts(system.cores, 0.95,
                                                static_cast<double>(system.memory_gb));
        result.energy_j = watts * duration;
        result.counters = pmu_.measure_epoch(
            perf::true_event_rates(SimBackend::fingerprint(workload_, hyper_, system)), duration,
            rng_);
        if (config_.epoch_observer != nullptr)
            config_.epoch_observer->after_epoch(workload_, result.epoch, result);
        return result;
    }

    std::size_t epochs_done() const override { return epochs_; }
    const Workload& workload() const override { return workload_; }
    const HyperParams& hyperparams() const override { return hyper_; }

private:
    Workload workload_;
    HyperParams hyper_;
    RealBackendConfig config_;
    const energy::PowerModel& power_;
    perf::PmuSimulator pmu_;
    util::Rng rng_;
    std::unique_ptr<data::IterativeKernel> kernel_;
    std::size_t epochs_ = 0;
};

}  // namespace

RealBackend::RealBackend(RealBackendConfig config) : impl_(std::make_unique<Impl>(config)) {}
RealBackend::~RealBackend() = default;

std::unique_ptr<TrialSession> RealBackend::start_trial(const Workload& workload,
                                                       const HyperParams& hyper) {
    const std::uint64_t seed = impl_->seed_source.next_u64();
    if (workload.is_kernel())
        return std::make_unique<RealKernelSession>(workload, hyper, impl_->config, impl_->power,
                                                   seed);
    return std::make_unique<RealDnnSession>(workload, hyper, impl_->config, impl_->power, seed);
}

}  // namespace pipetune::sim
