#pragma once
// Learning-curve (accuracy) model for the simulation backend.
//
// Accuracy after epoch e follows a saturating curve toward a hyperparameter-
// dependent ceiling:
//   acc(e) = ceiling(hp) * (1 - exp(-rate(hp) * e)) + noise
// where
//   * rate grows with updates/epoch (smaller batches converge in fewer
//     epochs) and with learning-rate quality (log-gaussian around the
//     workload's optimum — too small is slow, too large swings);
//   * ceiling is reduced by oversized batches (stochasticity loss, Fig 3a),
//     shaped by dropout (regularization sweet spot) and, for text models,
//     raised by richer embeddings (paper §7.1.3).
//
// The model is deterministic given (workload, hyperparams, epoch, trial
// seed), so whole experiments are reproducible.

#include "pipetune/util/rng.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::sim {

struct AccuracyModelConfig {
    double lr_tolerance_log = 1.1;      ///< sigma of log(lr) quality gaussian (~3x band)
    double batch_rate_exponent = 0.25;  ///< convergence speed ~ (32/batch)^x
    double batch_ceiling_penalty = 0.9; ///< ceiling points lost per log2(batch/32)
    double dropout_optimum = 0.2;
    double dropout_curvature = 20.0;    ///< ceiling bonus = 2 - curv*(d-opt)^2
    double embedding_bonus = 3.0;       ///< max ceiling points from embeddings
    double accuracy_noise = 0.4;        ///< per-epoch measurement noise [points]
};

class AccuracyModel {
public:
    explicit AccuracyModel(AccuracyModelConfig config = {});

    /// Ceiling [%] the configuration converges to.
    double effective_ceiling(const workload::Workload& workload,
                             const workload::HyperParams& hyper) const;

    /// Per-epoch progress rate of the saturating curve.
    double progress_rate(const workload::Workload& workload,
                         const workload::HyperParams& hyper) const;

    /// Validation accuracy [%] after `epoch` (1-based) epochs.
    double accuracy_at(const workload::Workload& workload, const workload::HyperParams& hyper,
                       std::size_t epoch, util::Rng* rng = nullptr) const;

    /// Matching training loss (cross-entropy-shaped decay).
    double loss_at(const workload::Workload& workload, const workload::HyperParams& hyper,
                   std::size_t epoch, util::Rng* rng = nullptr) const;

    const AccuracyModelConfig& config() const { return config_; }

private:
    double lr_quality(const workload::Workload& workload,
                      const workload::HyperParams& hyper) const;
    AccuracyModelConfig config_;
};

}  // namespace pipetune::sim
