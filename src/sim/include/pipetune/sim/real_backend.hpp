#pragma once
// Real-engine backend: the Backend contract implemented by actually training
// the from-scratch NN engine (src/nn) on synthetic datasets, or actually
// running the Type-III kernels. Epoch durations are wall-clock measured;
// energy and PMU counters come from the same analytic models as the simulator
// (no PDU or perf access in this environment — DESIGN.md §2).
//
// Dataset/model sizes are scaled down so an epoch takes milliseconds; the
// backend exists to (a) prove the full tuning stack runs end-to-end on real
// training and (b) calibrate the simulator's scaling behaviour in tests.

#include <memory>

#include "pipetune/energy/power.hpp"
#include "pipetune/perf/counter_model.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::sim {

struct RealBackendConfig {
    /// Scale factor on dataset sizes (1.0 = the small defaults below).
    std::size_t train_samples = 192;
    std::size_t test_samples = 64;
    std::size_t image_size = 20;
    std::size_t text_vocab = 400;
    std::size_t text_seq_len = 16;
    std::size_t text_classes = 6;
    std::size_t image_classes = 6;
    /// Cap on actual worker threads (the host may have fewer cores than the
    /// simulated cluster nodes).
    std::size_t max_workers = 4;
    perf::PmuConfig pmu{};
    energy::PowerModelConfig power{};
    std::uint64_t seed = 1;
    /// Epoch instrumentation/fault-injection seam (same contract as
    /// SimBackendConfig::epoch_observer). Not owned; may be null.
    workload::EpochObserver* epoch_observer = nullptr;
};

class RealBackend : public workload::Backend {
public:
    explicit RealBackend(RealBackendConfig config = {});
    ~RealBackend() override;

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override;

    std::string name() const override { return "real"; }

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace pipetune::sim
