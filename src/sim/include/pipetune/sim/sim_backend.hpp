#pragma once
// Calibrated simulation backend: implements the Backend/TrialSession contract
// on top of the analytic cost, accuracy, PMU and power models, producing
// virtual durations. All figure/table benches run on this backend so the full
// evaluation regenerates in seconds on one core (see DESIGN.md §2 for why the
// substitution preserves the paper's shapes).

#include <memory>

#include "pipetune/energy/power.hpp"
#include "pipetune/perf/counter_model.hpp"
#include "pipetune/sim/accuracy_model.hpp"
#include "pipetune/sim/cost_model.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::sim {

struct SimBackendConfig {
    CostModelConfig cost{};
    AccuracyModelConfig accuracy{};
    perf::PmuConfig pmu{};
    energy::PowerModelConfig power{};
    energy::PduConfig pdu{};
    std::uint64_t seed = 1;
    /// Epoch instrumentation/fault-injection seam (ft::FaultInjector plugs in
    /// here). Called at the top of run_epoch — before the session's epoch
    /// counter or RNG advance, so a throwing observer leaves the epoch
    /// retryable — and again with the finished (mutable) result. Not owned;
    /// null disables the hook.
    workload::EpochObserver* epoch_observer = nullptr;
};

class SimBackend : public workload::Backend {
public:
    explicit SimBackend(SimBackendConfig config = {});

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override;

    std::string name() const override { return "sim"; }

    const CostModel& cost_model() const { return cost_; }
    const AccuracyModel& accuracy_model() const { return accuracy_; }
    const energy::PowerModel& power_model() const { return power_; }

    /// Deterministic fingerprint used for PMU signature generation.
    static perf::WorkloadFingerprint fingerprint(const workload::Workload& workload,
                                                 const workload::HyperParams& hyper,
                                                 const workload::SystemParams& system);

private:
    SimBackendConfig config_;
    CostModel cost_;
    AccuracyModel accuracy_;
    energy::PowerModel power_;
    util::Rng trial_seed_source_;
};

}  // namespace pipetune::sim
