#pragma once
// Epoch-duration cost model for the calibrated simulation backend.
//
// Model (synchronous minibatch SGD on BigDL/Spark, paper §3.2):
//   updates/epoch   U = ceil(N / batch)
//   compute/epoch   C = N * c_w / cores^p          (data-parallel work)
//   sync/epoch      S = U * (s0 + s1 * cores)      (per-update aggregation +
//                                                   scheduling, grows with
//                                                   worker count — the Spark
//                                                   overhead Drizzle targets)
//   memory penalty  if mem < working set: multiply by 1 + w*(ws/mem - 1)
//
// The S term is what makes extra cores *hurt* small batches (many updates,
// each paying a larger sync) while they help large batches — the crossover of
// Fig 3b. Constants are calibrated against the real engine's scaling in
// tests/integration/calibration_test.cpp.

#include "pipetune/util/rng.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::sim {

struct CostModelConfig {
    double epoch_fixed_s = 15.0;        ///< per-epoch setup/eval/data-load floor
    double seconds_per_sample = 2e-4;   ///< per-sample fwd+bwd at compute_scale 1, one core
    double parallel_exponent = 0.88;    ///< cores^p effective speedup
    double sync_fixed_s = 0.002;        ///< per-update fixed scheduling cost
    double sync_per_core_s = 0.003;     ///< per-update per-worker aggregation cost
    double memory_pressure_weight = 0.8;
    double duration_noise = 0.02;       ///< lognormal-ish relative jitter
};

class CostModel {
public:
    explicit CostModel(CostModelConfig config = {});

    /// Expected wall-clock seconds of one epoch. Pass rng = nullptr for the
    /// deterministic expectation (used by tests and the bench baselines).
    double epoch_seconds(const workload::Workload& workload, const workload::HyperParams& hyper,
                         const workload::SystemParams& system, util::Rng* rng = nullptr) const;

    /// Working set in GB (grows with batch size and the workload's
    /// memory_scale); the memory system parameter matters when it exceeds
    /// the allocation.
    double working_set_gb(const workload::Workload& workload,
                          const workload::HyperParams& hyper) const;

    /// Fraction of the epoch spent in parallel compute (vs sync) — feeds the
    /// power model's utilization input.
    double compute_utilization(const workload::Workload& workload,
                               const workload::HyperParams& hyper,
                               const workload::SystemParams& system) const;

    /// Arithmetic work multiplier from hyperparameters (text models grow with
    /// embedding dimensions).
    static double hyper_compute_factor(const workload::Workload& workload,
                                       const workload::HyperParams& hyper);

    const CostModelConfig& config() const { return config_; }

private:
    double compute_seconds(const workload::Workload& workload,
                           const workload::HyperParams& hyper,
                           const workload::SystemParams& system) const;
    double sync_seconds(const workload::Workload& workload, const workload::HyperParams& hyper,
                        const workload::SystemParams& system) const;
    double memory_penalty(const workload::Workload& workload,
                          const workload::HyperParams& hyper,
                          const workload::SystemParams& system) const;

    CostModelConfig config_;
};

}  // namespace pipetune::sim
