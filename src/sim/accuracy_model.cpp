#include "pipetune/sim/accuracy_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipetune::sim {

using workload::HyperParams;
using workload::Workload;

AccuracyModel::AccuracyModel(AccuracyModelConfig config) : config_(config) {
    if (config.lr_tolerance_log <= 0 || config.batch_rate_exponent < 0 ||
        config.accuracy_noise < 0)
        throw std::invalid_argument("AccuracyModel: invalid configuration");
}

double AccuracyModel::lr_quality(const Workload& workload, const HyperParams& hyper) const {
    if (hyper.learning_rate <= 0)
        throw std::invalid_argument("AccuracyModel: learning rate must be > 0");
    if (workload.is_kernel()) return 1.0;  // kernels have no learning rate
    const double delta = std::log(hyper.learning_rate) - std::log(workload.learning_rate_optimum);
    return std::exp(-delta * delta / (2 * config_.lr_tolerance_log * config_.lr_tolerance_log));
}

double AccuracyModel::effective_ceiling(const Workload& workload,
                                        const HyperParams& hyper) const {
    double ceiling = workload.accuracy_ceiling;
    if (!workload.is_kernel()) {
        // Oversized batches reduce gradient stochasticity (Fig 3a).
        ceiling -= config_.batch_ceiling_penalty *
                   std::log2(static_cast<double>(hyper.batch_size) / 32.0);
        // Dropout sweet spot: none overfits, too much underfits.
        const double d = hyper.dropout - config_.dropout_optimum;
        ceiling += 2.0 - config_.dropout_curvature * d * d;
        // A badly mis-set learning rate cannot reach the full ceiling at all
        // (large swings / premature plateau).
        ceiling -= 6.0 * (1.0 - lr_quality(workload, hyper));
    }
    if (workload.is_text()) {
        const double richness =
            1.0 - std::exp(-(static_cast<double>(hyper.embedding_dim) - 50.0) / 100.0);
        ceiling += config_.embedding_bonus * std::max(0.0, richness);
    }
    return std::clamp(ceiling, 1.0, 100.0);
}

double AccuracyModel::progress_rate(const Workload& workload, const HyperParams& hyper) const {
    double rate = workload.convergence_rate;
    if (!workload.is_kernel()) {
        // Smaller batches take more SGD steps per epoch.
        rate *= std::pow(32.0 / static_cast<double>(hyper.batch_size),
                         config_.batch_rate_exponent);
        rate *= 0.25 + 0.75 * lr_quality(workload, hyper);
    }
    return rate;
}

double AccuracyModel::accuracy_at(const Workload& workload, const HyperParams& hyper,
                                  std::size_t epoch, util::Rng* rng) const {
    if (epoch == 0) throw std::invalid_argument("AccuracyModel: epoch is 1-based");
    const double ceiling = effective_ceiling(workload, hyper);
    const double rate = progress_rate(workload, hyper);
    double accuracy = ceiling * (1.0 - std::exp(-rate * static_cast<double>(epoch)));
    if (rng != nullptr) accuracy += rng->normal(0.0, config_.accuracy_noise);
    return std::clamp(accuracy, 0.0, 100.0);
}

double AccuracyModel::loss_at(const Workload& workload, const HyperParams& hyper,
                              std::size_t epoch, util::Rng* rng) const {
    if (epoch == 0) throw std::invalid_argument("AccuracyModel: epoch is 1-based");
    const double classes = workload.is_text() ? 20.0 : 10.0;
    const double rate = progress_rate(workload, hyper);
    const double floor = 0.05 + 0.5 * (1.0 - effective_ceiling(workload, hyper) / 100.0);
    double loss = floor + (std::log(classes) - floor) * std::exp(-rate * static_cast<double>(epoch));
    if (rng != nullptr) loss *= std::max(0.5, 1.0 + rng->normal(0.0, 0.03));
    return loss;
}

}  // namespace pipetune::sim
