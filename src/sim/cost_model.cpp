#include "pipetune/sim/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipetune::sim {

using workload::HyperParams;
using workload::SystemParams;
using workload::Workload;

CostModel::CostModel(CostModelConfig config) : config_(config) {
    if (config.epoch_fixed_s < 0 || config.seconds_per_sample <= 0 ||
        config.parallel_exponent <= 0 || config.parallel_exponent > 1 ||
        config.sync_fixed_s < 0 || config.sync_per_core_s < 0 ||
        config.memory_pressure_weight < 0 || config.duration_noise < 0)
        throw std::invalid_argument("CostModel: invalid configuration");
}

double CostModel::hyper_compute_factor(const Workload& workload, const HyperParams& hyper) {
    double factor = 1.0;
    if (workload.is_text()) {
        // Embedding dimensions scale matmul widths; [50, 300] maps to [1, 1.5].
        factor *= 1.0 + 0.5 * (static_cast<double>(hyper.embedding_dim) - 50.0) / 250.0;
    }
    // Dropout adds a mask pass; marginal.
    factor *= 1.0 + 0.05 * hyper.dropout;
    return factor;
}

double CostModel::compute_seconds(const Workload& workload, const HyperParams& hyper,
                                  const SystemParams& system) const {
    const double samples = static_cast<double>(workload.train_files);
    const double per_sample = config_.seconds_per_sample * workload.compute_scale *
                              hyper_compute_factor(workload, hyper);
    // Scalability is a property of the computation: regular stencils scale
    // near-linearly, irregular traversals (BFS) poorly. The workload's
    // exponent overrides the generic default when set.
    const double exponent =
        workload.parallel_exponent > 0 ? workload.parallel_exponent : config_.parallel_exponent;
    const double speedup = std::pow(static_cast<double>(system.cores), exponent);
    // DVFS: arithmetic throughput scales with clock; sync/IO terms do not.
    const double frequency_ratio =
        system.frequency_ghz / workload::SystemParams::kBaseFrequencyGhz;
    return samples * per_sample / (speedup * frequency_ratio);
}

double CostModel::sync_seconds(const Workload& workload, const HyperParams& hyper,
                               const SystemParams& system) const {
    const double updates = std::ceil(static_cast<double>(workload.train_files) /
                                     static_cast<double>(hyper.batch_size));
    // Type-III kernels are single-process (no Spark task waves); their sync
    // cost is an order of magnitude smaller.
    const double kernel_discount = workload.is_kernel() ? 0.1 : 1.0;
    return updates * kernel_discount *
           (config_.sync_fixed_s + config_.sync_per_core_s * static_cast<double>(system.cores));
}

double CostModel::working_set_gb(const Workload& workload, const HyperParams& hyper) const {
    // Base model/runtime footprint plus activation memory that grows with the
    // batch; scaled by the workload's memory intensity.
    const double batch_gb = 6.0 * static_cast<double>(hyper.batch_size) / 1024.0;
    return workload.memory_scale * (2.0 + batch_gb);
}

double CostModel::memory_penalty(const Workload& workload, const HyperParams& hyper,
                                 const SystemParams& system) const {
    const double ws = working_set_gb(workload, hyper);
    const double mem = static_cast<double>(system.memory_gb);
    if (mem >= ws) return 1.0;
    return 1.0 + config_.memory_pressure_weight * (ws / mem - 1.0);
}

double CostModel::epoch_seconds(const Workload& workload, const HyperParams& hyper,
                                const SystemParams& system, util::Rng* rng) const {
    if (hyper.batch_size == 0) throw std::invalid_argument("CostModel: batch_size must be > 0");
    if (system.cores == 0 || system.memory_gb == 0)
        throw std::invalid_argument("CostModel: cores and memory must be > 0");
    if (system.frequency_ghz <= 0)
        throw std::invalid_argument("CostModel: frequency must be > 0");
    // Per-epoch fixed cost (data loading, evaluation pass, scheduling) scales
    // with the dataset size; Type-III kernels pay a small flat per-iteration
    // floor instead.
    const double fixed =
        workload.is_kernel()
            ? 0.3
            : std::max(1.0, config_.epoch_fixed_s *
                                static_cast<double>(workload.train_files) / 60000.0);
    double seconds = (fixed + compute_seconds(workload, hyper, system) +
                      sync_seconds(workload, hyper, system)) *
                     memory_penalty(workload, hyper, system);
    if (rng != nullptr)
        seconds *= std::max(0.5, 1.0 + rng->normal(0.0, config_.duration_noise));
    return seconds;
}

double CostModel::compute_utilization(const Workload& workload, const HyperParams& hyper,
                                      const SystemParams& system) const {
    const double compute = compute_seconds(workload, hyper, system);
    const double sync = sync_seconds(workload, hyper, system);
    if (compute + sync <= 0) return 0.0;
    // Cores idle during sync; attribute a small residual utilization to it.
    return std::clamp((compute + 0.2 * sync) / (compute + sync), 0.0, 1.0);
}

}  // namespace pipetune::sim
