#include "pipetune/sim/sim_backend.hpp"

namespace pipetune::sim {

using workload::EpochResult;
using workload::HyperParams;
using workload::SystemParams;
using workload::TrialSession;
using workload::Workload;

namespace {

class SimTrialSession : public TrialSession {
public:
    SimTrialSession(const Workload& workload, HyperParams hyper, const SimBackend& backend,
                    const SimBackendConfig& config, std::uint64_t seed)
        : workload_(workload),
          hyper_(hyper),
          backend_(backend),
          pmu_(config.pmu),
          pdu_(config.pdu, seed ^ 0x5851f42d4c957f2dULL),
          rng_(seed),
          observer_(config.epoch_observer) {}

    EpochResult run_epoch(const SystemParams& system) override {
        // The observer fires before any session state advances: a throw here
        // (injected epoch failure, simulated crash) leaves the epoch counter
        // and RNG untouched, so a retry of the same epoch is exact.
        if (observer_ != nullptr)
            observer_->before_epoch(workload_, hyper_, epochs_done_ + 1, system);
        const std::size_t epoch = ++epochs_done_;
        EpochResult result;
        result.epoch = epoch;
        result.duration_s =
            backend_.cost_model().epoch_seconds(workload_, hyper_, system, &rng_);
        result.accuracy =
            backend_.accuracy_model().accuracy_at(workload_, hyper_, epoch, &rng_);
        result.train_loss = backend_.accuracy_model().loss_at(workload_, hyper_, epoch, &rng_);

        const double utilization =
            backend_.cost_model().compute_utilization(workload_, hyper_, system);
        const double watts = backend_.power_model().power_watts(
            system.cores, utilization, static_cast<double>(system.memory_gb),
            system.frequency_ghz);
        result.energy_j = pdu_.measure_energy(watts, result.duration_s);

        result.counters = pmu_.measure_epoch(
            perf::true_event_rates(SimBackend::fingerprint(workload_, hyper_, system)),
            result.duration_s, rng_);
        if (observer_ != nullptr) observer_->after_epoch(workload_, epoch, result);
        return result;
    }

    std::size_t epochs_done() const override { return epochs_done_; }
    const Workload& workload() const override { return workload_; }
    const HyperParams& hyperparams() const override { return hyper_; }

private:
    Workload workload_;
    HyperParams hyper_;
    const SimBackend& backend_;
    perf::PmuSimulator pmu_;
    energy::Pdu pdu_;
    util::Rng rng_;
    workload::EpochObserver* observer_;
    std::size_t epochs_done_ = 0;
};

}  // namespace

SimBackend::SimBackend(SimBackendConfig config)
    : config_(config),
      cost_(config.cost),
      accuracy_(config.accuracy),
      power_(config.power),
      trial_seed_source_(config.seed) {}

perf::WorkloadFingerprint SimBackend::fingerprint(const Workload& workload,
                                                  const HyperParams& hyper,
                                                  const SystemParams& system) {
    return perf::WorkloadFingerprint{
        .model_family = workload.model_family,
        .dataset_family = workload.dataset_family,
        .compute_scale = workload.compute_scale * CostModel::hyper_compute_factor(workload, hyper),
        .memory_scale = workload.memory_scale,
        .batch_size = hyper.batch_size,
        .cores = system.cores,
    };
}

std::unique_ptr<TrialSession> SimBackend::start_trial(const Workload& workload,
                                                      const HyperParams& hyper) {
    return std::make_unique<SimTrialSession>(workload, hyper, *this, config_,
                                             trial_seed_source_.next_u64());
}

}  // namespace pipetune::sim
