#include "pipetune/sched/shared_state.hpp"

#include <filesystem>
#include <utility>

#include "pipetune/util/logging.hpp"

namespace pipetune::sched {

SharedClusterState::SharedClusterState(core::GroundTruthConfig config)
    : truth_(config), truth_view_(*this), metrics_view_(*this) {}

SharedClusterState::SharedClusterState(core::GroundTruth ground_truth,
                                       metricsdb::TimeSeriesDb metrics)
    : truth_(std::move(ground_truth)),
      metrics_(std::move(metrics)),
      truth_view_(*this),
      metrics_view_(*this) {
    for (const auto& series : metrics_.series_names()) {
        const auto points = metrics_.select({.series = series});
        if (!points.empty()) series_clock_[series] = points.back().time;
    }
}

core::GroundTruthStore& SharedClusterState::ground_truth() { return truth_view_; }
metricsdb::MetricsSink& SharedClusterState::metrics() { return metrics_view_; }

std::size_t SharedClusterState::ground_truth_size() const {
    std::shared_lock lock(truth_mutex_);
    return truth_.size();
}

bool SharedClusterState::model_ready() const {
    std::shared_lock lock(truth_mutex_);
    return truth_.model_ready();
}

std::size_t SharedClusterState::metric_points() const {
    std::shared_lock lock(metrics_mutex_);
    return metrics_.total_points();
}

core::GroundTruth SharedClusterState::ground_truth_snapshot() const {
    std::shared_lock lock(truth_mutex_);
    return truth_;
}

metricsdb::TimeSeriesDb SharedClusterState::metrics_snapshot() const {
    std::shared_lock lock(metrics_mutex_);
    return metrics_;
}

std::string SharedClusterState::ground_truth_path(const std::string& state_dir) {
    return state_dir.empty() ? std::string() : state_dir + "/ground_truth.json";
}

std::string SharedClusterState::metrics_path(const std::string& state_dir) {
    return state_dir.empty() ? std::string() : state_dir + "/metrics.json";
}

void SharedClusterState::load(const std::string& state_dir,
                              const core::GroundTruthConfig& config) {
    if (state_dir.empty()) return;
    std::error_code ec;
    if (std::filesystem::exists(ground_truth_path(state_dir), ec)) {
        auto loaded = core::GroundTruth::try_load(ground_truth_path(state_dir), config);
        if (!loaded)
            throw std::runtime_error("SharedClusterState::load: " + loaded.error());
        std::unique_lock lock(truth_mutex_);
        truth_ = std::move(loaded).value();
    }
    if (std::filesystem::exists(metrics_path(state_dir), ec)) {
        auto result = metricsdb::TimeSeriesDb::try_load(metrics_path(state_dir));
        if (!result)
            throw std::runtime_error("SharedClusterState::load: " + result.error());
        auto loaded = std::move(result).value();
        std::unique_lock lock(metrics_mutex_);
        series_clock_.clear();
        for (const auto& series : loaded.series_names()) {
            const auto points = loaded.select({.series = series});
            if (!points.empty()) series_clock_[series] = points.back().time;
        }
        metrics_ = std::move(loaded);
    }
}

void SharedClusterState::save(const std::string& state_dir) const {
    if (state_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(state_dir, ec);
    if (ec)
        throw std::runtime_error("SharedClusterState::save: cannot create '" + state_dir +
                                 "': " + ec.message());
    // Serialize under shared locks, write (atomically) without holding them.
    util::Json truth_json = [this] {
        std::shared_lock lock(truth_mutex_);
        return truth_.to_json();
    }();
    util::Json metrics_json = [this] {
        std::shared_lock lock(metrics_mutex_);
        return metrics_.to_json();
    }();
    truth_json.save_file(ground_truth_path(state_dir));
    metrics_json.save_file(metrics_path(state_dir));
}

std::optional<workload::SystemParams> SharedClusterState::LockedGroundTruth::lookup(
    const std::vector<double>& features, double* score_out) const {
    std::shared_lock lock(state_.truth_mutex_);
    return state_.truth_.lookup(features, score_out);
}

void SharedClusterState::LockedGroundTruth::record(const std::vector<double>& features,
                                                   const workload::SystemParams& best,
                                                   double metric) {
    std::unique_lock lock(state_.truth_mutex_);
    state_.truth_.record(features, best, metric);
}

std::size_t SharedClusterState::LockedGroundTruth::size() const {
    std::shared_lock lock(state_.truth_mutex_);
    return state_.truth_.size();
}

bool SharedClusterState::LockedGroundTruth::model_ready() const {
    std::shared_lock lock(state_.truth_mutex_);
    return state_.truth_.model_ready();
}

void SharedClusterState::LockedMetrics::append(const std::string& series, double time,
                                               double value, metricsdb::TagSet tags) {
    std::unique_lock lock(state_.metrics_mutex_);
    // Each job's policy generates locally monotone pseudo-times; interleaved
    // jobs would violate the per-series monotonicity the TSDB enforces, so
    // clamp to the series' shared clock.
    auto& clock = state_.series_clock_[series];
    if (time < clock) time = clock;
    clock = time;
    state_.metrics_.append(series, time, value, std::move(tags));
}

std::size_t SharedClusterState::LockedMetrics::count(const metricsdb::Query& query) const {
    std::shared_lock lock(state_.metrics_mutex_);
    return state_.metrics_.count(query);
}

}  // namespace pipetune::sched
