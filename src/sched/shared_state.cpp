#include "pipetune/sched/shared_state.hpp"

#include <filesystem>
#include <utility>

#include "pipetune/util/logging.hpp"

namespace pipetune::sched {

SharedClusterState::SharedClusterState(core::GroundTruthConfig config)
    : truth_(config), truth_view_(*this), metrics_view_(*this) {
    republish_truth_locked();  // single-threaded in the constructor
    refresh_truth_stats_locked();
}

SharedClusterState::SharedClusterState(core::GroundTruth ground_truth,
                                       metricsdb::TimeSeriesDb metrics)
    : truth_(std::move(ground_truth)),
      metrics_(std::move(metrics)),
      truth_view_(*this),
      metrics_view_(*this) {
    for (const auto& series : metrics_.series_names()) {
        const auto points = metrics_.select({.series = series});
        if (!points.empty()) series_clock_[series] = points.back().time;
    }
    republish_truth_locked();
    refresh_truth_stats_locked();
    refresh_metrics_stats_locked();
}

core::GroundTruthStore& SharedClusterState::ground_truth() { return truth_view_; }
metricsdb::MetricsSink& SharedClusterState::metrics() { return metrics_view_; }

void SharedClusterState::republish_truth_locked() {
    // The O(n) copy happens OUTSIDE the snapshot mutex; only the pointer
    // swap is inside, so lookups are never blocked behind it.
    auto fresh = std::make_shared<const core::GroundTruth>(truth_);
    std::shared_ptr<const core::GroundTruth> old;
    {
        std::lock_guard<std::mutex> lock(snapshot_mutex_);
        old = std::exchange(truth_snapshot_, std::move(fresh));
    }
    // `old` destructs here — outside the mutex, in case this is the last ref.
}

std::shared_ptr<const core::GroundTruth> SharedClusterState::truth_snapshot_ptr() const {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return truth_snapshot_;
}

void SharedClusterState::refresh_truth_stats_locked() {
    const std::uint64_t size = truth_.size();
    const bool ready = truth_.model_ready();
    stats_.update([&](StateStats& s) {
        s.truth_size = size;
        s.model_ready = ready;
    });
}

void SharedClusterState::refresh_metrics_stats_locked() {
    const std::uint64_t points = metrics_.total_points();
    stats_.update([&](StateStats& s) { s.metric_points = points; });
}

std::size_t SharedClusterState::ground_truth_size() const {
    return static_cast<std::size_t>(stats_.read().truth_size);
}

bool SharedClusterState::model_ready() const { return stats_.read().model_ready; }

std::size_t SharedClusterState::metric_points() const {
    return static_cast<std::size_t>(stats_.read().metric_points);
}

core::GroundTruth SharedClusterState::ground_truth_snapshot() const {
    // The RCU snapshot IS a consistent copy — copy from it directly.
    return *truth_snapshot_ptr();
}

metricsdb::TimeSeriesDb SharedClusterState::metrics_snapshot() const {
    std::shared_lock lock(metrics_mutex_);
    return metrics_;
}

std::string SharedClusterState::ground_truth_path(const std::string& state_dir) {
    return state_dir.empty() ? std::string() : state_dir + "/ground_truth.json";
}

std::string SharedClusterState::metrics_path(const std::string& state_dir) {
    return state_dir.empty() ? std::string() : state_dir + "/metrics.json";
}

void SharedClusterState::load(const std::string& state_dir,
                              const core::GroundTruthConfig& config) {
    if (state_dir.empty()) return;
    std::error_code ec;
    if (std::filesystem::exists(ground_truth_path(state_dir), ec)) {
        auto loaded = core::GroundTruth::try_load(ground_truth_path(state_dir), config);
        if (!loaded)
            throw std::runtime_error("SharedClusterState::load: " + loaded.error());
        std::unique_lock lock(truth_mutex_);
        truth_ = std::move(loaded).value();
        republish_truth_locked();
        refresh_truth_stats_locked();
    }
    if (std::filesystem::exists(metrics_path(state_dir), ec)) {
        auto result = metricsdb::TimeSeriesDb::try_load(metrics_path(state_dir));
        if (!result)
            throw std::runtime_error("SharedClusterState::load: " + result.error());
        auto loaded = std::move(result).value();
        std::unique_lock lock(metrics_mutex_);
        series_clock_.clear();
        for (const auto& series : loaded.series_names()) {
            const auto points = loaded.select({.series = series});
            if (!points.empty()) series_clock_[series] = points.back().time;
        }
        metrics_ = std::move(loaded);
        refresh_metrics_stats_locked();
    }
}

void SharedClusterState::save(const std::string& state_dir) const {
    if (state_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(state_dir, ec);
    if (ec)
        throw std::runtime_error("SharedClusterState::save: cannot create '" + state_dir +
                                 "': " + ec.message());
    // Ground truth serializes from the RCU snapshot (no lock at all); the
    // metrics copy is taken under a shared lock, written outside it.
    const auto truth_snap = truth_snapshot_ptr();
    util::Json truth_json = truth_snap->to_json();
    util::Json metrics_json = [this] {
        std::shared_lock lock(metrics_mutex_);
        return metrics_.to_json();
    }();
    truth_json.save_file(ground_truth_path(state_dir));
    metrics_json.save_file(metrics_path(state_dir));
}

std::optional<workload::SystemParams> SharedClusterState::LockedGroundTruth::lookup(
    const std::vector<double>& features, double* score_out) const {
    // Hot path (every trial of every job): one micro-mutexed shared_ptr
    // copy, then a lookup against the immutable snapshot with no lock held.
    // The snapshot may lag a concurrent record() by one publish — the same
    // staleness a reader arriving a moment earlier would have seen.
    const auto snap = state_.truth_snapshot_ptr();
    return snap->lookup(features, score_out);
}

void SharedClusterState::LockedGroundTruth::record(const std::vector<double>& features,
                                                   const workload::SystemParams& best,
                                                   double metric) {
    std::unique_lock lock(state_.truth_mutex_);
    state_.truth_.record(features, best, metric);
    // Copy-on-write republish: O(store size), but records are rare (one per
    // finished campaign) and lookups are the hot path.
    state_.republish_truth_locked();
    state_.refresh_truth_stats_locked();
}

std::size_t SharedClusterState::LockedGroundTruth::size() const {
    return static_cast<std::size_t>(state_.stats_.read().truth_size);
}

bool SharedClusterState::LockedGroundTruth::model_ready() const {
    return state_.stats_.read().model_ready;
}

void SharedClusterState::LockedMetrics::append(const std::string& series, double time,
                                               double value, metricsdb::TagSet tags) {
    std::unique_lock lock(state_.metrics_mutex_);
    // Each job's policy generates locally monotone pseudo-times; interleaved
    // jobs would violate the per-series monotonicity the TSDB enforces, so
    // clamp to the series' shared clock.
    auto& clock = state_.series_clock_[series];
    if (time < clock) time = clock;
    clock = time;
    state_.metrics_.append(series, time, value, std::move(tags));
    // Incremental: one seqlock publish, not a full total_points() rescan.
    state_.stats_.update([](StateStats& s) { ++s.metric_points; });
}

std::size_t SharedClusterState::LockedMetrics::count(const metricsdb::Query& query) const {
    std::shared_lock lock(state_.metrics_mutex_);
    return state_.metrics_.count(query);
}

}  // namespace pipetune::sched
