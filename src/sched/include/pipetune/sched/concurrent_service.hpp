#pragma once
// ConcurrentPipeTuneService — the multi-tenant deployment façade. Mirrors
// core::PipeTuneService::submit() but returns immediately with a future:
// jobs queue up behind N worker slots and run genuinely concurrently against
// one SharedClusterState, so an early finisher's recorded configurations are
// visible to every job still probing (the paper's §7.4 sharing effect, on
// real threads instead of virtual time).
//
//   sim::SimBackend backend;
//   sched::ConcurrentPipeTuneService service(backend, {.worker_slots = 4});
//   auto a = service.submit(workload::find_workload("lenet-mnist"), {});
//   auto b = service.submit(workload::find_workload("lenet-fashion"), {});
//   core::PipeTuneJobResult rb = b->result.get();  // may have warm-started from a
//
// Futures surface failure as the job's exception; a job discarded before
// running (cancelled while queued, queue-deadline exceeded, or shed by a
// full kReject queue at submit time) reports a std::runtime_error naming the
// terminal state.

#include <future>
#include <optional>

#include "pipetune/core/experiment.hpp"
#include "pipetune/core/service.hpp"
#include "pipetune/sched/scheduler.hpp"
#include "pipetune/sched/shared_state.hpp"

namespace pipetune::sched {

struct ConcurrentServiceConfig {
    /// Directory for ground_truth.json / metrics.json; empty = in-memory.
    std::string state_dir;
    core::PipeTuneConfig pipetune{};
    std::size_t worker_slots = 4;  ///< the paper's Type-I/II testbed has 4 machines
    std::size_t queue_capacity = 64;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Re-persist the shared state after every completed job (crash-safe at
    /// job granularity, matching PipeTuneService).
    bool persist_after_each_job = true;
};

class ConcurrentPipeTuneService {
public:
    ConcurrentPipeTuneService(workload::Backend& backend, ConcurrentServiceConfig config = {});
    /// Drains in-flight jobs, persists, joins the workers.
    ~ConcurrentPipeTuneService();
    ConcurrentPipeTuneService(const ConcurrentPipeTuneService&) = delete;
    ConcurrentPipeTuneService& operator=(const ConcurrentPipeTuneService&) = delete;

    struct Submission {
        JobTicket ticket;
        std::future<core::PipeTuneJobResult> result;
    };

    /// Enqueue one HPT job. Returns nullopt when admission control rejected
    /// it (kReject overflow and the queue is full, or the service is shutting
    /// down); under kBlock the call waits for queue space instead.
    std::optional<Submission> submit(const workload::Workload& workload,
                                     const hpt::HptJobConfig& job_config = {},
                                     JobOptions options = {});

    /// Cooperative cancel (see ClusterScheduler::cancel).
    bool cancel(std::uint64_t id) { return scheduler_.cancel(id); }
    JobState state(std::uint64_t id) const { return scheduler_.state(id); }
    /// Block until every submitted job is terminal.
    void drain() { scheduler_.drain(); }

    std::size_t jobs_served() const { return jobs_served_.load(std::memory_order_relaxed); }
    SchedulerStats stats() const { return scheduler_.stats(); }
    /// Completed-job wall-clock trace; feed to cluster::summarize_trace.
    std::vector<cluster::JobRecord> trace() const { return scheduler_.trace(); }

    SharedClusterState& cluster_state() { return state_; }
    const ClusterScheduler& scheduler() const { return scheduler_; }

    /// Snapshot + atomically rewrite the state files (also runs after every
    /// job when persist_after_each_job is set).
    void persist() const;
    std::string ground_truth_path() const;
    std::string metrics_path() const;

private:
    ConcurrentServiceConfig config_;
    SerializedBackend backend_;
    SharedClusterState state_;
    std::atomic<std::size_t> jobs_served_{0};
    ClusterScheduler scheduler_;  ///< after state_: jobs reference it
};

}  // namespace pipetune::sched
