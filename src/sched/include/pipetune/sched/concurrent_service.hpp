#pragma once
// ConcurrentPipeTuneService — the multi-tenant implementation of
// core::TuningService. submit() returns immediately with a future: jobs
// queue up behind `concurrency` worker slots and run genuinely concurrently
// against one SharedClusterState, so an early finisher's recorded
// configurations are visible to every job still probing (the paper's §7.4
// sharing effect, on real threads instead of virtual time).
//
//   sim::SimBackend backend;
//   sched::ConcurrentPipeTuneService service(backend, {.concurrency = 4});
//   auto a = service.submit(workload::find_workload("lenet-mnist"), {});
//   auto b = service.submit(workload::find_workload("lenet-fashion"), {});
//   core::PipeTuneJobResult rb = b->result.get();  // may have warm-started from a
//
// Futures surface failure as the job's exception; a job discarded before
// running (cancelled while queued, queue-deadline exceeded, or shed by a
// full reject-mode queue at submit time) reports a std::runtime_error naming
// the terminal state. Prefer constructing through
// sched::make_tuning_service so serial and concurrent deployments share one
// call site.

#include <future>
#include <optional>

#include "pipetune/core/tuning_service.hpp"
#include "pipetune/sched/scheduler.hpp"
#include "pipetune/sched/shared_state.hpp"

namespace pipetune::sched {

class ConcurrentPipeTuneService final : public core::TuningService {
public:
    /// `options.concurrency` (clamped to >= 1) sets the worker slots; the
    /// warm-start fields seed the shared store when no persisted state is
    /// found, exactly like the serial service.
    ConcurrentPipeTuneService(workload::Backend& backend, core::ServiceOptions options = {});
    /// Drains in-flight jobs, persists, joins the workers.
    ~ConcurrentPipeTuneService();
    ConcurrentPipeTuneService(const ConcurrentPipeTuneService&) = delete;
    ConcurrentPipeTuneService& operator=(const ConcurrentPipeTuneService&) = delete;

    /// Enqueue one HPT job. Returns nullopt when admission control rejected
    /// it (reject_when_full and the queue is full, or the service is shutting
    /// down); otherwise the call may block for queue space.
    std::optional<Submission> submit(const workload::Workload& workload,
                                     const hpt::HptJobConfig& job_config = {},
                                     core::SubmitOptions options = {}) override;

    /// Cooperative cancel (see ClusterScheduler::cancel).
    bool cancel(std::uint64_t id) override { return scheduler_.cancel(id); }
    JobState state(std::uint64_t id) const { return scheduler_.state(id); }
    /// Block until every submitted job is terminal.
    void drain() override { scheduler_.drain(); }
    /// Drop every still-queued job (stays journal-pending; see the interface
    /// contract) — the SIGTERM fast-drain hook used by net::TuningServer.
    std::size_t discard_queued() override { return scheduler_.discard_queued(); }

    std::size_t jobs_served() const override {
        return jobs_served_.load(std::memory_order_relaxed);
    }
    core::ServiceStats stats() const override;
    std::vector<core::JobTiming> job_timings() const override;

    core::GroundTruth ground_truth_snapshot() const override {
        return state_.ground_truth_snapshot();
    }
    metricsdb::TimeSeriesDb metrics_snapshot() const override {
        return state_.metrics_snapshot();
    }

    /// Replay recovered ground-truth mutations (ft::Recovery) into the
    /// shared store. Call before submitting resumed jobs.
    void seed_ground_truth(const std::vector<core::GroundTruthEntry>& entries) override;

    /// Scheduler-native stats (richer than the interface's ServiceStats).
    SchedulerStats scheduler_stats() const { return scheduler_.stats(); }
    /// Completed-job wall-clock trace; feed to cluster::summarize_trace.
    std::vector<cluster::JobRecord> trace() const { return scheduler_.trace(); }

    SharedClusterState& cluster_state() { return state_; }
    const ClusterScheduler& scheduler() const { return scheduler_; }

    /// Snapshot + atomically rewrite the state files (also runs after every
    /// job when persist_after_each_job is set).
    void persist() const override;
    std::string ground_truth_path() const override;
    std::string metrics_path() const override;

    obs::ObsContext* obs() const override { return options_.obs; }

private:
    core::ServiceOptions options_;
    SerializedBackend backend_;
    SharedClusterState state_;
    std::atomic<std::size_t> jobs_served_{0};
    // Instrument references cached at construction (the obs pattern,
    // DESIGN.md §12): the per-job and per-flush paths must not pay a
    // registry lookup. Null when options_.obs is null.
    obs::Counter* obs_flush_total_ = nullptr;
    obs::Histogram* obs_flush_seconds_ = nullptr;
    obs::Gauge* obs_points_ = nullptr;
    obs::Counter* obs_jobs_served_ = nullptr;
    ClusterScheduler scheduler_;  ///< after state_: jobs reference it
};

/// Build the implementation `options.concurrency` asks for: <= 1 — the
/// serial core::PipeTuneService (jobs run inline on the caller's thread);
/// > 1 — a ConcurrentPipeTuneService with that many worker slots. The
/// backend must outlive the returned service.
std::unique_ptr<core::TuningService> make_tuning_service(workload::Backend& backend,
                                                         core::ServiceOptions options = {});

}  // namespace pipetune::sched
