#pragma once
// Bounded lock-free MPMC ring (Vyukov's bounded queue): the per-priority-class
// dispatch lane inside the lock-light scheduler (DESIGN.md §12). Each cell
// carries a sequence number; producers and consumers claim cells with one CAS
// on their respective cursors and publish with a release store on the cell,
// so the hot path is two atomic RMWs and no mutex. Non-blocking by design:
// try_push fails when full, try_pop when empty — sleeping is layered on top
// by the caller (the scheduler parks on a condition variable only after a
// failed scan, and producers gate their notifies on a waiter count).

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace pipetune::sched {

template <typename T>
class MpmcRing {
public:
    /// Capacity is rounded up to a power of two (minimum 2).
    explicit MpmcRing(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
    }

    MpmcRing(const MpmcRing&) = delete;
    MpmcRing& operator=(const MpmcRing&) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /// False when the ring is full (the value is not consumed).
    bool try_push(T value) {
        Cell* cell;
        std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
            const auto diff = static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
            if (diff == 0) {
                if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                                       std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false;  // full: the cell still holds an unconsumed value
            } else {
                pos = enqueue_pos_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /// False when the ring is empty.
    bool try_pop(T* out) {
        Cell* cell;
        std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
            const auto diff =
                static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1);
            if (diff == 0) {
                if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                                       std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false;  // empty: no producer has published this cell yet
            } else {
                pos = dequeue_pos_.load(std::memory_order_relaxed);
            }
        }
        *out = std::move(cell->value);
        cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    /// Approximate occupancy (racy; for stats/backpressure heuristics only).
    std::size_t size_approx() const {
        const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
        const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
        return enq > deq ? enq - deq : 0;
    }

private:
    // Fixed 64 (not hardware_destructive_interference_size): the value is
    // part of cell layout, and GCC warns that the builtin is ABI-unstable.
    static constexpr std::size_t kCacheLine = 64;

    struct alignas(kCacheLine) Cell {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
    alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace pipetune::sched
