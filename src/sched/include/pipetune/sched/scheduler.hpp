#pragma once
// ClusterScheduler: dispatches queued jobs onto a pool of N worker slots —
// the real-concurrency counterpart of cluster::FifoClusterSim's virtual-time
// model (§7.4). Jobs are admitted through a bounded priority queue
// (backpressure per SchedulerConfig::overflow) and executed on
// util::ThreadPool workers; the scheduler tracks each job's lifecycle and
// wall-clock timings so a finished trace feeds the same
// cluster::summarize_trace as the simulator.
//
// Lifecycle:
//
//   submit ── kQueued ──(worker picks up)── kRunning ──┬── kCompleted
//      │          │                                    ├── kFailed (threw)
//      │          ├── cancel() ───────── kCancelled    └── kCancelled (*)
//      │          └── deadline passes ── kTimedOut
//      └── queue full (kReject) ── no ticket, nothing recorded
//
//   (*) cancellation of a RUNNING job is cooperative: the job's JobContext
//   flag flips, and if the function returns while the flag is set the job is
//   accounted kCancelled. Worker threads are never killed.
//
// Deadlines bound *queueing*: a job whose deadline passes before a worker
// picks it up is discarded as kTimedOut without running. Running jobs can
// poll JobContext::deadline_expired() to stop cooperatively.
//
// Concurrency architecture (DESIGN.md §12). The hot path is lock-light:
//  - dispatch runs through a Vyukov MPMC ring per priority class (plus a
//    small mutex-protected retry lane per class for requeued jobs);
//  - job records live in a sharded hash table — each shard has its own
//    mutex, so per-job state transitions never contend globally;
//  - queued jobs are retired by a claim CAS (worker vs canceller race is a
//    single compare-exchange; the loser walks away);
//  - counters are plain atomics; queue-depth/running gauges are flushed in
//    batches; waiter condition variables are only signalled when a waiter
//    has registered (Dekker-paired atomic waiter counts).
// SchedulerConfig::lock_light = false swaps in the coarse baseline (global
// mutex queue, unconditional notifies, per-transition gauge flushes) — kept
// so bench/micro_substrates can measure the before/after honestly.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/ft/retry_policy.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/sched/job_queue.hpp"
#include "pipetune/util/thread_pool.hpp"

namespace pipetune::sched {

enum class JobState { kQueued, kRunning, kCompleted, kFailed, kCancelled, kTimedOut };

const char* to_string(JobState state);
bool is_terminal(JobState state);

class ClusterScheduler;

/// Handed to the running job for cooperative cancellation/deadline checks.
class JobContext {
public:
    std::uint64_t id() const { return id_; }
    bool cancel_requested() const { return cancel_->load(std::memory_order_relaxed); }
    /// True once the job's deadline (if any) has passed.
    bool deadline_expired() const;

private:
    friend class ClusterScheduler;
    JobContext(const ClusterScheduler& scheduler, std::uint64_t id,
               const std::atomic<bool>* cancel, double deadline_s)
        : scheduler_(scheduler), id_(id), cancel_(cancel), deadline_s_(deadline_s) {}

    const ClusterScheduler& scheduler_;
    std::uint64_t id_;
    const std::atomic<bool>* cancel_;
    double deadline_s_;  ///< absolute, scheduler clock; <= 0 means none
};

struct JobOptions {
    Priority priority = Priority::kNormal;
    std::string label;       ///< e.g. workload name; lands in the trace
    double deadline_s = 0.0; ///< budget from submit; 0 = none
};

struct JobInfo {
    std::uint64_t id = 0;
    std::string label;
    Priority priority = Priority::kNormal;
    JobState state = JobState::kQueued;
    double submit_s = 0.0;   ///< scheduler-clock seconds
    double start_s = -1.0;   ///< -1 while never started
    double finish_s = -1.0;  ///< -1 while not terminal (or discarded unstarted)
    double deadline_s = 0.0; ///< absolute; 0 = none
    std::string error;       ///< exception message when kFailed
    std::size_t attempts = 0; ///< times a worker started running the job
};

struct SchedulerConfig {
    std::size_t worker_slots = 4;  ///< concurrently running jobs (cluster nodes)
    std::size_t queue_capacity = 64;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Job-level retry (DESIGN.md §10): a job whose function throws an
    /// ft::TransientFailure is requeued at the front of its priority class —
    /// same id, original priority/deadline/submit time — after the policy's
    /// backoff (slept on the failing worker, so the backoff also acts as
    /// load-shedding). max_retries = 0 (default) keeps the old fail-fast
    /// behaviour. Non-transient failures are always terminal.
    ft::RetryPolicy retry{.max_retries = 0};
    /// Telemetry (queue-depth/running gauges, lifecycle counters, queue-wait
    /// histogram, one "job" span per executed job). Not owned; may be null.
    obs::ObsContext* obs = nullptr;
    /// Default: MPMC-ring dispatch, sharded job table, gated notifies,
    /// batched gauge flushes (DESIGN.md §12). False restores the coarse
    /// global-mutex baseline for before/after benchmarking.
    bool lock_light = true;
};

struct SchedulerStats {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t timed_out = 0;
    std::size_t running = 0;
    std::size_t queued = 0;
    std::size_t max_queue_depth = 0;
    std::size_t requeued = 0;  ///< retry requeues after a transient failure
};

namespace detail {

/// Claim states for the queued→{running,cancelled} race. A queued job is
/// retired by exactly one party: the worker that pops it (kClaimWorker) or a
/// canceller (kClaimCancel) — decided by one compare-exchange on `claimed`.
/// The loser leaves the job alone; a worker popping an already-cancelled
/// entry just skips the stale queue slot. A retried job is republished by
/// storing kClaimNone again before it re-enters the queue.
inline constexpr std::uint8_t kClaimNone = 0;
inline constexpr std::uint8_t kClaimWorker = 1;
inline constexpr std::uint8_t kClaimCancel = 2;

/// One job record, allocated once per submit and stable for the scheduler's
/// lifetime (queues and JobContext hold raw pointers into it). `info` is
/// guarded by the owning shard's mutex; `cancel`/`claimed` are lock-free;
/// `fn` is owned by whoever holds the claim.
struct Job {
    JobInfo info;
    std::atomic<bool> cancel{false};
    std::atomic<std::uint8_t> claimed{kClaimNone};
    std::function<void(JobContext&)> fn;
    std::function<void(const JobInfo&)> on_discard;
    std::function<void(const JobInfo&, std::exception_ptr)> on_failed;
};

/// Internal dispatch-queue interface: the lock-light implementation (MPMC
/// ring per priority class) and the coarse baseline (legacy JobQueue) both
/// implement it; ClusterScheduler picks one per SchedulerConfig::lock_light.
/// pop() returns jobs already claimed for the calling worker.
class DispatchQueue {
public:
    virtual ~DispatchQueue() = default;
    /// Admit per the overflow policy. False: rejected (kReject) or closed.
    virtual bool push(Job* job) = 0;
    /// Requeue at the front of the job's priority class (retry path,
    /// capacity check bypassed). False when closed.
    virtual bool push_front(Job* job) = 0;
    /// Block for the next claimable job. Null: closed and drained.
    virtual Job* pop() = 0;
    /// A queued entry was retired out-of-band (cancel claim): release its
    /// capacity slot. The stale queue entry is skipped by a later pop.
    virtual void retired(Job* job) = 0;
    virtual void close() = 0;
    virtual std::size_t max_depth() const = 0;
};

}  // namespace detail

class ClusterScheduler {
public:
    using JobFn = std::function<void(JobContext&)>;
    /// Invoked (from the discarding thread) when a job is dropped without
    /// ever running — cancelled while queued or timed out in the queue. Lets
    /// a caller holding a promise for the job's result break it deliberately.
    using DiscardFn = std::function<void(const JobInfo&)>;
    /// Invoked (from the worker thread) when a job fails TERMINALLY — its
    /// function threw and the retry policy is exhausted or inapplicable. The
    /// exception_ptr is the original exception, so a promise-holding caller
    /// can forward it with full fidelity. Not called for retried attempts.
    using FailFn = std::function<void(const JobInfo&, std::exception_ptr)>;

    explicit ClusterScheduler(SchedulerConfig config = {});
    ~ClusterScheduler();  // drains the queue, then joins the workers
    ClusterScheduler(const ClusterScheduler&) = delete;
    ClusterScheduler& operator=(const ClusterScheduler&) = delete;

    /// Admit a job. Returns nullopt when the queue rejected it (kReject and
    /// full, or scheduler already shut down).
    std::optional<JobTicket> submit(JobFn fn, JobOptions options = {},
                                    DiscardFn on_discard = {}, FailFn on_failed = {});

    JobState state(std::uint64_t id) const;
    std::optional<JobInfo> info(std::uint64_t id) const;
    /// Every job ever submitted, in id order.
    std::vector<JobInfo> jobs() const;

    /// Cancel a job: a queued job is discarded immediately (true); a running
    /// job gets its cooperative flag set (true). Terminal/unknown: false.
    bool cancel(std::uint64_t id);

    /// Discard every job still waiting in the queue (each retires as
    /// kCancelled through its on_discard). Running jobs are NOT flagged —
    /// unlike shutdown(false), which cancels them cooperatively — so this is
    /// the graceful-drain primitive: callers discard the queue, then drain()
    /// to let the running remainder finish cleanly. Returns the drop count.
    std::size_t discard_queued();

    /// Wait until `id` reaches a terminal state. Negative timeout = forever.
    /// Returns false on timeout or unknown id.
    bool wait(std::uint64_t id, double timeout_s = -1.0);
    /// Wait until every submitted job is terminal (does not close the queue).
    void drain();
    /// Drain (optionally discarding still-queued jobs) and join the workers.
    /// Idempotent; submit() afterwards returns nullopt.
    void shutdown(bool drain_queue = true);

    SchedulerStats stats() const;

    /// Completed jobs as a cluster trace (arrival = submit, wall-clock
    /// seconds on the scheduler clock) — feed to cluster::summarize_trace to
    /// compare against FifoClusterSim runs.
    std::vector<cluster::JobRecord> trace() const;

    /// Seconds since scheduler construction (steady clock).
    double now_s() const;

    const SchedulerConfig& config() const { return config_; }

private:
    /// Job records, sharded by id so per-job transitions don't contend.
    /// Coarse mode collapses to one shard (shard_mask_ = 0).
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::uint64_t, std::unique_ptr<detail::Job>> jobs;
    };
    static constexpr std::size_t kMaxShards = 8;  // power of two
    static constexpr std::uint32_t kGaugeFlushInterval = 32;  // power of two

    Shard& shard(std::uint64_t id) { return shards_[id & shard_mask_]; }
    const Shard& shard(std::uint64_t id) const { return shards_[id & shard_mask_]; }

    void worker_loop();
    /// Mark a RUNNING job terminal + notify waiters (invoking on_failed for
    /// kFailed). Caller must hold the job's claim and no shard mutex.
    void finish(detail::Job* job, JobState state, const std::string& error = {},
                std::exception_ptr failure = nullptr);
    /// Count one terminal transition on the obs counters.
    void count_terminal(JobState state);
    /// One state transition happened: flush gauges per the batching policy
    /// (every transition in coarse mode, every kGaugeFlushInterval-th in
    /// lock-light mode).
    void gauge_tick();
    /// Force the depth/running gauges to the current counters.
    void flush_gauges() const;
    /// Wake terminal waiters — gated on the registered-waiter count in
    /// lock-light mode, unconditional in coarse mode.
    void notify_terminal();

    SchedulerConfig config_;
    std::chrono::steady_clock::time_point epoch_;
    std::unique_ptr<detail::DispatchQueue> queue_;
    std::array<Shard, kMaxShards> shards_;
    std::uint64_t shard_mask_ = 0;

    // Lifecycle counters. queued_/running_ are seq_cst-updated: drain()'s
    // wakeup protocol Dekker-pairs them with terminal_waiters_.
    std::atomic<std::int64_t> queued_{0};
    std::atomic<std::int64_t> running_{0};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::uint64_t> timed_out_{0};
    std::atomic<std::uint64_t> requeued_{0};
    std::atomic<std::uint64_t> next_job_id_{1};
    std::atomic<bool> shut_down_{false};
    mutable std::atomic<std::uint32_t> gauge_ticks_{0};

    // Terminal-wait machinery: waiters register in terminal_waiters_ before
    // evaluating their predicate; notifiers skip the CV entirely when the
    // count is zero (the common case on the hot path).
    std::mutex wait_mutex_;
    std::condition_variable terminal_cv_;
    std::atomic<int> terminal_waiters_{0};

    // Instrument references cached at construction (null when obs is null).
    obs::Counter* obs_submitted_ = nullptr;
    obs::Counter* obs_rejected_ = nullptr;
    obs::Counter* obs_completed_ = nullptr;
    obs::Counter* obs_failed_ = nullptr;
    obs::Counter* obs_cancelled_ = nullptr;
    obs::Counter* obs_timed_out_ = nullptr;
    obs::Counter* obs_requeued_ = nullptr;
    obs::Gauge* obs_queue_depth_ = nullptr;
    obs::Gauge* obs_running_ = nullptr;
    obs::Histogram* obs_queue_wait_ = nullptr;
    util::ThreadPool pool_;  ///< last member: workers must die before state
};

}  // namespace pipetune::sched
