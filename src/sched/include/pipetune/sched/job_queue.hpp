#pragma once
// Bounded multi-class job queue: the admission edge of the concurrent tuning
// scheduler. Three priority classes (interactive > normal > batch) are each
// FIFO; pop always serves the highest non-empty class, so an operator's
// interactive tuning request overtakes a queued batch campaign without
// starving it (batch still drains whenever nothing more urgent waits, and
// capacity is shared so a flood of high-priority work hits the same
// backpressure wall).
//
// Backpressure: the queue holds at most `capacity` jobs across all classes.
// What happens on overflow is the submitter's choice — kReject returns
// nullopt (admission control: shed load at the edge), kBlock parks the
// submitting thread until a slot frees (producer throttling).

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace pipetune::sched {

/// Scheduling classes, highest urgency first.
enum class Priority { kHigh = 0, kNormal = 1, kBatch = 2 };
inline constexpr std::size_t kPriorityClasses = 3;

const char* to_string(Priority priority);

/// What submit() does when the queue is full.
enum class OverflowPolicy { kReject, kBlock };

/// Handle returned on admission; ids are unique per queue, never reused.
struct JobTicket {
    std::uint64_t id = 0;
};

template <typename T>
class JobQueue {
public:
    explicit JobQueue(std::size_t capacity, OverflowPolicy overflow = OverflowPolicy::kReject)
        : capacity_(capacity == 0 ? 1 : capacity), overflow_(overflow) {}

    JobQueue(const JobQueue&) = delete;
    JobQueue& operator=(const JobQueue&) = delete;

    /// Admit one job under a queue-assigned id. Returns the id, or nullopt
    /// when the queue is full under kReject, or when the queue was closed
    /// (also while blocked waiting for space under kBlock).
    std::optional<std::uint64_t> push(T item, Priority priority = Priority::kNormal) {
        std::unique_lock<std::mutex> lock(mutex_);
        const std::uint64_t id = next_id_;
        if (!admit(lock, id, std::move(item), priority)) return std::nullopt;
        next_id_ = id + 1;
        lock.unlock();
        not_empty_.notify_one();
        return id;
    }

    /// Admit one job under a caller-assigned id (the scheduler registers job
    /// metadata under its own id before the entry becomes poppable). The
    /// caller is responsible for id uniqueness. Returns false on reject/close.
    bool push_with_id(std::uint64_t id, T item, Priority priority = Priority::kNormal) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!admit(lock, id, std::move(item), priority)) return false;
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Requeue an already-admitted job at the FRONT of its priority class —
    /// the retry path. The job keeps its original id, so its priority,
    /// submission time and deadline accounting are untouched, and it runs
    /// before anything that arrived after it (a retry is older than every
    /// queued job in its class). Deliberately bypasses the capacity bound:
    /// the job was admitted once, and blocking a worker thread on
    /// backpressure here would deadlock the pool the moment the queue fills.
    /// Still refuses after close().
    bool push_front_with_id(std::uint64_t id, T item, Priority priority = Priority::kNormal) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_) return false;
            classes_[static_cast<std::size_t>(priority)].push_front(Entry{id, std::move(item)});
            ++size_;
            if (size_ > max_depth_) max_depth_ = size_;
        }
        not_empty_.notify_one();
        return true;
    }

    /// Take the next job: highest non-empty priority class, FIFO within the
    /// class. Blocks while the queue is open and empty; returns false once it
    /// is closed and drained.
    bool pop(std::uint64_t* id_out, T* item_out, Priority* priority_out = nullptr) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
        if (size_ == 0) return false;  // closed and drained
        for (std::size_t c = 0; c < kPriorityClasses; ++c) {
            auto& fifo = classes_[c];
            if (fifo.empty()) continue;
            if (id_out != nullptr) *id_out = fifo.front().id;
            if (item_out != nullptr) *item_out = std::move(fifo.front().item);
            if (priority_out != nullptr) *priority_out = static_cast<Priority>(c);
            fifo.pop_front();
            --size_;
            lock.unlock();
            not_full_.notify_one();
            return true;
        }
        return false;  // unreachable: size_ > 0 implies a non-empty class
    }

    /// Remove a still-queued job (cancellation before dispatch). Returns
    /// false when the id already left the queue (running, done, or unknown).
    bool erase(std::uint64_t id, T* item_out = nullptr) {
        std::unique_lock<std::mutex> lock(mutex_);
        for (auto& fifo : classes_) {
            for (auto it = fifo.begin(); it != fifo.end(); ++it) {
                if (it->id != id) continue;
                if (item_out != nullptr) *item_out = std::move(it->item);
                fifo.erase(it);
                --size_;
                lock.unlock();
                not_full_.notify_one();
                return true;
            }
        }
        return false;
    }

    /// No further admissions; blocked pushers return nullopt, poppers drain
    /// what is left and then return false.
    void close() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return size_;
    }

    std::size_t capacity() const { return capacity_; }

    /// High-water mark of the queue depth since construction.
    std::size_t max_depth() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return max_depth_;
    }

private:
    struct Entry {
        std::uint64_t id;
        T item;
    };

    /// Shared admission path; `lock` must hold mutex_. Blocks under kBlock
    /// until space or close. The item is consumed only on success.
    bool admit(std::unique_lock<std::mutex>& lock, std::uint64_t id, T&& item,
               Priority priority) {
        if (overflow_ == OverflowPolicy::kBlock)
            not_full_.wait(lock, [this] { return closed_ || size_ < capacity_; });
        if (closed_ || size_ >= capacity_) return false;
        classes_[static_cast<std::size_t>(priority)].push_back(Entry{id, std::move(item)});
        ++size_;
        if (size_ > max_depth_) max_depth_ = size_;
        return true;
    }

    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::array<std::deque<Entry>, kPriorityClasses> classes_;
    std::size_t size_ = 0;
    std::size_t max_depth_ = 0;
    const std::size_t capacity_;
    std::uint64_t next_id_ = 1;
    const OverflowPolicy overflow_;
    bool closed_ = false;
};

}  // namespace pipetune::sched
