#pragma once
// Thread-safe shared cluster state: the one ground-truth store and metrics
// database that every concurrent tuning job reads and warms (paper §5.4 —
// "the ground truth is shared across jobs"; what makes multi-tenant
// concurrency pay off is that early finishers shorten the probing of jobs
// still in the queue).
//
// Read-path architecture (DESIGN.md §8, §12). The hot reads are wait-bounded:
//  - GroundTruth lookup goes through an RCU-style snapshot: readers copy a
//    shared_ptr to an immutable GroundTruth under a dedicated micro-mutex
//    whose critical section is just the refcount bump — never the store
//    mutation, the O(n) copy-on-write, or serialization, which all happen
//    outside it. record()/load() mutate the master under the write lock and
//    republish a fresh snapshot (records are rare, one per finished
//    campaign, while lookups happen on every trial of every queued job).
//    (A std::atomic<shared_ptr> would make this fully lock-free, but GCC's
//    implementation synchronizes through pointer-bit spinlocks that
//    ThreadSanitizer cannot see; the micro-mutex is tsan-clean.)
//  - The scalar stats (size / model_ready / total points) are read through a
//    util::Seqlock snapshot, refreshed by every writer.
// Writers keep the original discipline:
//  - Each of the two stores has its own std::shared_mutex; they are never
//    held together, so lock ordering is a non-issue.
//  - record / append / load take unique locks; whole-store snapshots
//    (metrics_snapshot / save) take shared locks.
//  - The metrics view additionally clamps pseudo-times per series under the
//    write lock: concurrent jobs each generate locally monotone times, and
//    interleaving them raw would violate the TSDB's per-series monotonicity
//    invariant.

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "pipetune/core/ground_truth.hpp"
#include "pipetune/metricsdb/tsdb.hpp"
#include "pipetune/util/seqlock.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::sched {

class SharedClusterState {
public:
    explicit SharedClusterState(core::GroundTruthConfig config = {});
    /// Seed from existing state (e.g. a warm-start campaign's store).
    SharedClusterState(core::GroundTruth ground_truth, metricsdb::TimeSeriesDb metrics);

    SharedClusterState(const SharedClusterState&) = delete;
    SharedClusterState& operator=(const SharedClusterState&) = delete;

    /// Locked views, safe to hand to concurrently running PipeTunePolicy
    /// instances. Both are owned by (and valid as long as) this object.
    core::GroundTruthStore& ground_truth();
    metricsdb::MetricsSink& metrics();

    // Synchronized reads of the underlying stores. The scalar reads are
    // lock-free (seqlock snapshot); ground_truth_snapshot is the RCU copy.
    std::size_t ground_truth_size() const;
    bool model_ready() const;
    std::size_t metric_points() const;
    core::GroundTruth ground_truth_snapshot() const;
    metricsdb::TimeSeriesDb metrics_snapshot() const;

    /// Replace contents from persisted files under `state_dir` when present.
    void load(const std::string& state_dir, const core::GroundTruthConfig& config = {});
    /// Persist both stores under `state_dir` (atomic temp-file + rename per
    /// file). Snapshots under shared locks, writes outside them.
    void save(const std::string& state_dir) const;

    static std::string ground_truth_path(const std::string& state_dir);
    static std::string metrics_path(const std::string& state_dir);

private:
    /// Scalar hot-read snapshot, published through a seqlock by every writer.
    struct StateStats {
        std::uint64_t truth_size = 0;
        std::uint64_t metric_points = 0;
        bool model_ready = false;
    };

    class LockedGroundTruth final : public core::GroundTruthStore {
    public:
        explicit LockedGroundTruth(SharedClusterState& state) : state_(state) {}
        std::optional<workload::SystemParams> lookup(const std::vector<double>& features,
                                                     double* score_out) const override;
        void record(const std::vector<double>& features, const workload::SystemParams& best,
                    double metric) override;
        std::size_t size() const override;
        bool model_ready() const override;

    private:
        SharedClusterState& state_;
    };

    class LockedMetrics final : public metricsdb::MetricsSink {
    public:
        explicit LockedMetrics(SharedClusterState& state) : state_(state) {}
        void append(const std::string& series, double time, double value,
                    metricsdb::TagSet tags) override;
        std::size_t count(const metricsdb::Query& query) const override;

    private:
        SharedClusterState& state_;
    };

    /// Republish the RCU snapshot from truth_. Caller holds truth_mutex_
    /// exclusively.
    void republish_truth_locked();
    /// Copy the current snapshot pointer (micro-critical-section).
    std::shared_ptr<const core::GroundTruth> truth_snapshot_ptr() const;
    /// Refresh the seqlock scalars. Caller holds the respective write lock
    /// (values are read from the stores, so they must be quiescent).
    void refresh_truth_stats_locked();
    void refresh_metrics_stats_locked();

    mutable std::shared_mutex truth_mutex_;
    mutable std::shared_mutex metrics_mutex_;
    core::GroundTruth truth_;
    metricsdb::TimeSeriesDb metrics_;
    /// Immutable copy for near-lock-free lookup; swapped whole on every
    /// record. snapshot_mutex_ guards ONLY the pointer copy/swap.
    mutable std::mutex snapshot_mutex_;
    std::shared_ptr<const core::GroundTruth> truth_snapshot_;
    util::Seqlock<StateStats> stats_;
    /// Last time appended per series (under metrics_mutex_): appends from
    /// interleaved jobs are clamped up to this to keep series monotone.
    std::map<std::string, double> series_clock_;
    LockedGroundTruth truth_view_;
    LockedMetrics metrics_view_;
};

/// Backend adapter that serializes start_trial() calls. Backend
/// implementations draw per-trial seeds from an internal RNG, which is the
/// one mutation concurrent jobs would race on; the sessions themselves are
/// per-trial objects and safe to drive from their own threads.
class SerializedBackend final : public workload::Backend {
public:
    explicit SerializedBackend(workload::Backend& inner) : inner_(inner) {}

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override {
        std::lock_guard<std::mutex> lock(mutex_);
        return inner_.start_trial(workload, hyper);
    }

    std::string name() const override { return inner_.name(); }

private:
    workload::Backend& inner_;
    std::mutex mutex_;
};

}  // namespace pipetune::sched
