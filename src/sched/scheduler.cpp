#include "pipetune/sched/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <thread>

#include "pipetune/ft/errors.hpp"
#include "pipetune/sched/mpmc_ring.hpp"
#include "pipetune/util/logging.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::sched {

const char* to_string(Priority priority) {
    switch (priority) {
        case Priority::kHigh: return "high";
        case Priority::kNormal: return "normal";
        case Priority::kBatch: return "batch";
    }
    return "?";
}

const char* to_string(JobState state) {
    switch (state) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kCompleted: return "completed";
        case JobState::kFailed: return "failed";
        case JobState::kCancelled: return "cancelled";
        case JobState::kTimedOut: return "timed-out";
    }
    return "?";
}

bool is_terminal(JobState state) {
    return state != JobState::kQueued && state != JobState::kRunning;
}

bool JobContext::deadline_expired() const {
    return deadline_s_ > 0.0 && scheduler_.now_s() > deadline_s_;
}

namespace {

using detail::Job;
using detail::kClaimCancel;
using detail::kClaimNone;
using detail::kClaimWorker;

/// Lock-light dispatch queue (DESIGN.md §12): one Vyukov MPMC ring per
/// priority class plus a small mutex-protected retry lane per class (the
/// retry path is rare and must preserve front-of-class order, which a ring
/// cannot). Capacity admission and occupancy are plain atomics; the mutex +
/// condition variables exist only to PARK — pushers/poppers sleep solely
/// after a failed non-blocking attempt, and the waker side skips the CV
/// entirely unless a waiter has registered (seq_cst Dekker pairing between
/// the waiter counts and the occupancy counters).
///
/// Cancelled-while-queued jobs are retired out-of-band by a claim CAS; their
/// ring entries go STALE and are skipped (and drained) by later pops. Rings
/// are sized 2x the logical capacity to absorb that backlog; a cancel storm
/// deeper than the slack degrades pushes to yield-retry, never deadlock.
class LockLightQueue final : public detail::DispatchQueue {
public:
    LockLightQueue(std::size_t capacity, OverflowPolicy policy)
        : capacity_(static_cast<std::int64_t>(capacity == 0 ? 1 : capacity)),
          policy_(policy) {
        for (auto& ring : rings_)
            ring = std::make_unique<MpmcRing<Job*>>(2 * static_cast<std::size_t>(capacity_));
    }

    bool push(Job* job) override {
        const std::size_t cls = static_cast<std::size_t>(job->info.priority);
        for (;;) {
            if (closed_.load(std::memory_order_acquire)) return false;
            const std::int64_t live = live_.fetch_add(1, std::memory_order_seq_cst);
            if (live >= capacity_) {
                live_.fetch_sub(1, std::memory_order_seq_cst);
                if (policy_ == OverflowPolicy::kReject) return false;
                wait_not_full();
                continue;
            }
            if (rings_[cls]->try_push(job)) break;
            // Ring physically full (stale cancelled backlog): workers are
            // necessarily awake draining it, so yield and retry.
            live_.fetch_sub(1, std::memory_order_seq_cst);
            if (policy_ == OverflowPolicy::kReject) return false;
            std::this_thread::yield();
        }
        bump_depth();
        pending_.fetch_add(1, std::memory_order_seq_cst);
        notify_not_empty();
        return true;
    }

    bool push_front(Job* job) override {
        if (closed_.load(std::memory_order_acquire)) return false;
        const std::size_t cls = static_cast<std::size_t>(job->info.priority);
        live_.fetch_add(1, std::memory_order_seq_cst);  // retries occupy capacity
        {
            std::lock_guard<std::mutex> lock(lanes_[cls].mutex);
            lanes_[cls].jobs.push_back(job);
        }
        lanes_[cls].count.fetch_add(1, std::memory_order_release);
        bump_depth();
        pending_.fetch_add(1, std::memory_order_seq_cst);
        notify_not_empty();
        return true;
    }

    Job* pop() override {
        for (;;) {
            bool popped_any = false;
            for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
                Job* job = take_one(cls);
                if (job == nullptr) continue;
                popped_any = true;
                pending_.fetch_sub(1, std::memory_order_seq_cst);
                std::uint8_t expected = kClaimNone;
                if (job->claimed.compare_exchange_strong(expected, kClaimWorker,
                                                         std::memory_order_acq_rel)) {
                    live_.fetch_sub(1, std::memory_order_seq_cst);
                    notify_not_full();
                    return job;
                }
                // Stale entry (cancelled while queued): its capacity slot was
                // already released via retired(). Rescan from the top so a
                // higher class pushed meanwhile is not starved.
                break;
            }
            if (popped_any) continue;
            if (closed_.load(std::memory_order_acquire) &&
                pending_.load(std::memory_order_seq_cst) <= 0)
                return nullptr;
            wait_not_empty();
            if (closed_.load(std::memory_order_acquire) &&
                pending_.load(std::memory_order_seq_cst) <= 0)
                return nullptr;
        }
    }

    void retired(Job*) override {
        live_.fetch_sub(1, std::memory_order_seq_cst);
        notify_not_full();
    }

    void close() override {
        closed_.store(true, std::memory_order_release);
        { std::lock_guard<std::mutex> lock(park_mutex_); }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    std::size_t max_depth() const override {
        return static_cast<std::size_t>(
            std::max<std::int64_t>(0, max_depth_.load(std::memory_order_relaxed)));
    }

private:
    struct RetryLane {
        std::mutex mutex;
        std::deque<Job*> jobs;
        std::atomic<int> count{0};  ///< cheap emptiness probe before locking
    };

    Job* take_one(std::size_t cls) {
        // Retry lane first: requeued jobs run ahead of fresh ones in their
        // class (front-of-class contract of the retry path).
        if (lanes_[cls].count.load(std::memory_order_acquire) > 0) {
            std::lock_guard<std::mutex> lock(lanes_[cls].mutex);
            if (!lanes_[cls].jobs.empty()) {
                Job* job = lanes_[cls].jobs.front();
                lanes_[cls].jobs.pop_front();
                lanes_[cls].count.fetch_sub(1, std::memory_order_release);
                return job;
            }
        }
        Job* job = nullptr;
        if (rings_[cls]->try_pop(&job)) return job;
        return nullptr;
    }

    void bump_depth() {
        const std::int64_t depth = live_.load(std::memory_order_seq_cst);
        std::int64_t cur = max_depth_.load(std::memory_order_relaxed);
        while (depth > cur &&
               !max_depth_.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
        }
    }

    void wait_not_empty() {
        std::unique_lock<std::mutex> lock(park_mutex_);
        pop_waiters_.fetch_add(1, std::memory_order_seq_cst);
        not_empty_.wait(lock, [this] {
            return closed_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_seq_cst) > 0;
        });
        pop_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }

    void wait_not_full() {
        std::unique_lock<std::mutex> lock(park_mutex_);
        push_waiters_.fetch_add(1, std::memory_order_seq_cst);
        not_full_.wait(lock, [this] {
            return closed_.load(std::memory_order_acquire) ||
                   live_.load(std::memory_order_seq_cst) < capacity_;
        });
        push_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }

    void notify_not_empty() {
        if (pop_waiters_.load(std::memory_order_seq_cst) == 0) return;
        // Empty lock/unlock: a waiter between predicate-false and the actual
        // sleep holds park_mutex_; acquiring it serializes our notify after
        // its wait registration.
        { std::lock_guard<std::mutex> lock(park_mutex_); }
        not_empty_.notify_one();
    }

    void notify_not_full() {
        if (push_waiters_.load(std::memory_order_seq_cst) == 0) return;
        { std::lock_guard<std::mutex> lock(park_mutex_); }
        not_full_.notify_one();
    }

    const std::int64_t capacity_;
    const OverflowPolicy policy_;
    std::array<std::unique_ptr<MpmcRing<Job*>>, kPriorityClasses> rings_;
    std::array<RetryLane, kPriorityClasses> lanes_;
    std::atomic<std::int64_t> live_{0};     ///< claimable entries (capacity accounting)
    std::atomic<std::int64_t> pending_{0};  ///< poppable entries incl. stale
    std::atomic<std::int64_t> max_depth_{0};
    std::atomic<bool> closed_{false};
    std::mutex park_mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::atomic<int> pop_waiters_{0};
    std::atomic<int> push_waiters_{0};
};

/// Coarse baseline: the legacy global-mutex JobQueue, one entry per job.
/// Claim semantics match the lock-light queue (pop() returns claimed jobs;
/// cancelled entries are erased eagerly so capacity frees immediately).
class CoarseQueue final : public detail::DispatchQueue {
public:
    CoarseQueue(std::size_t capacity, OverflowPolicy policy) : queue_(capacity, policy) {}

    bool push(Job* job) override {
        return queue_.push_with_id(job->info.id, job, job->info.priority);
    }

    bool push_front(Job* job) override {
        return queue_.push_front_with_id(job->info.id, job, job->info.priority);
    }

    Job* pop() override {
        std::uint64_t id = 0;
        Job* job = nullptr;
        Priority priority = Priority::kNormal;
        while (queue_.pop(&id, &job, &priority)) {
            std::uint8_t expected = kClaimNone;
            if (job->claimed.compare_exchange_strong(expected, kClaimWorker,
                                                     std::memory_order_acq_rel))
                return job;
            // Lost to a canceller whose erase() raced the pop: skip.
        }
        return nullptr;
    }

    void retired(Job* job) override { queue_.erase(job->info.id); }

    void close() override { queue_.close(); }

    std::size_t max_depth() const override { return queue_.max_depth(); }

private:
    JobQueue<Job*> queue_;
};

}  // namespace

ClusterScheduler::ClusterScheduler(SchedulerConfig config)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      pool_(config.worker_slots == 0 ? 1 : config.worker_slots) {
    if (config_.lock_light) {
        queue_ = std::make_unique<LockLightQueue>(config_.queue_capacity, config_.overflow);
        shard_mask_ = kMaxShards - 1;
    } else {
        queue_ = std::make_unique<CoarseQueue>(config_.queue_capacity, config_.overflow);
        shard_mask_ = 0;  // one shard = the legacy global job-table mutex
    }
    if (config_.obs != nullptr) {
        auto& registry = config_.obs->metrics();
        obs_submitted_ = &registry.counter("pipetune_sched_jobs_submitted_total", {},
                                           "Jobs admitted to the scheduler queue");
        obs_rejected_ = &registry.counter("pipetune_sched_jobs_rejected_total", {},
                                          "Jobs shed at submit (queue full or shut down)");
        obs_completed_ = &registry.counter("pipetune_sched_jobs_completed_total", {},
                                           "Jobs that ran to completion");
        obs_failed_ = &registry.counter("pipetune_sched_jobs_failed_total", {},
                                        "Jobs whose function threw");
        obs_cancelled_ = &registry.counter("pipetune_sched_jobs_cancelled_total", {},
                                           "Jobs cancelled (queued or cooperative)");
        obs_timed_out_ = &registry.counter("pipetune_sched_jobs_timed_out_total", {},
                                           "Jobs discarded after their queueing deadline");
        obs_requeued_ = &registry.counter(
            "pipetune_ft_requeues_total", {},
            "Jobs requeued after a transient failure (scheduler retry path)");
        obs_queue_depth_ =
            &registry.gauge("pipetune_sched_queue_depth", {}, "Jobs waiting in the queue");
        obs_running_ =
            &registry.gauge("pipetune_sched_jobs_running", {}, "Jobs occupying worker slots");
        obs_queue_wait_ = &registry.histogram(
            "pipetune_sched_queue_wait_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0}, {},
            "Queue wait (submit to start) of jobs that ran");
    }
    // Each worker slot is one long-lived pool task looping over the queue;
    // the loops exit when the queue is closed and drained.
    for (std::size_t i = 0; i < pool_.size(); ++i)
        (void)pool_.submit([this] { worker_loop(); });
}

ClusterScheduler::~ClusterScheduler() { shutdown(true); }

double ClusterScheduler::now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void ClusterScheduler::flush_gauges() const {
    if (obs_queue_depth_ != nullptr)
        obs_queue_depth_->set(static_cast<double>(
            std::max<std::int64_t>(0, queued_.load(std::memory_order_seq_cst))));
    if (obs_running_ != nullptr)
        obs_running_->set(static_cast<double>(
            std::max<std::int64_t>(0, running_.load(std::memory_order_seq_cst))));
}

void ClusterScheduler::gauge_tick() {
    if (obs_queue_depth_ == nullptr && obs_running_ == nullptr) return;
    if (!config_.lock_light) {
        flush_gauges();  // coarse baseline: one gauge write per transition
        return;
    }
    // Batched (DESIGN.md §12): gauges are sampling instruments; every
    // kGaugeFlushInterval-th transition refreshes them, and the synchronous
    // readers (stats(), drain(), shutdown()) force a flush for exactness.
    if ((gauge_ticks_.fetch_add(1, std::memory_order_relaxed) &
         (kGaugeFlushInterval - 1)) == 0)
        flush_gauges();
}

void ClusterScheduler::count_terminal(JobState state) {
    switch (state) {
        case JobState::kCompleted:
            if (obs_completed_ != nullptr) obs_completed_->inc();
            break;
        case JobState::kFailed:
            if (obs_failed_ != nullptr) obs_failed_->inc();
            break;
        case JobState::kCancelled:
            if (obs_cancelled_ != nullptr) obs_cancelled_->inc();
            break;
        case JobState::kTimedOut:
            if (obs_timed_out_ != nullptr) obs_timed_out_->inc();
            break;
        default:
            break;
    }
}

void ClusterScheduler::notify_terminal() {
    // Gated wakeup: waiters registered in terminal_waiters_ (seq_cst) before
    // re-checking their predicate, and this load is seq_cst too, so either we
    // see the registration or the waiter sees the state we just published.
    if (config_.lock_light && terminal_waiters_.load(std::memory_order_seq_cst) == 0)
        return;
    // Empty lock/unlock: serializes after a waiter that has evaluated its
    // predicate but not yet slept (it holds wait_mutex_ for that window).
    { std::lock_guard<std::mutex> lock(wait_mutex_); }
    terminal_cv_.notify_all();
}

std::optional<JobTicket> ClusterScheduler::submit(JobFn fn, JobOptions options,
                                                  DiscardFn on_discard, FailFn on_failed) {
    if (!fn) throw std::invalid_argument("ClusterScheduler::submit: empty job");
    if (shut_down_.load(std::memory_order_acquire)) return std::nullopt;
    const std::uint64_t id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
    auto owned = std::make_unique<detail::Job>();
    detail::Job* job = owned.get();
    job->info.id = id;
    job->info.label = std::move(options.label);
    job->info.priority = options.priority;
    job->info.state = JobState::kQueued;
    job->info.submit_s = now_s();
    job->info.deadline_s =
        options.deadline_s > 0 ? job->info.submit_s + options.deadline_s : 0.0;
    job->fn = std::move(fn);
    job->on_discard = std::move(on_discard);
    job->on_failed = std::move(on_failed);
    {
        Shard& sh = shard(id);
        std::lock_guard<std::mutex> lock(sh.mutex);
        sh.jobs.emplace(id, std::move(owned));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (obs_submitted_ != nullptr) obs_submitted_->inc();
    gauge_tick();
    // Pushed outside the shard lock: a kBlock push may park this thread until
    // a worker frees a slot. Workers popping `id` before we return still find
    // its record registered above.
    if (queue_->push(job)) return JobTicket{id};

    // Rejected (queue full under kReject, or closed): roll the ghost back.
    // Claiming under the shard lock excludes a concurrent canceller — only
    // the claim winner may erase, and every other claim attempt happens
    // inside a shard critical section, so nobody holds a dangling Job*.
    {
        Shard& sh = shard(id);
        std::lock_guard<std::mutex> lock(sh.mutex);
        std::uint8_t expected = kClaimNone;
        if (job->claimed.compare_exchange_strong(expected, kClaimWorker,
                                                 std::memory_order_acq_rel)) {
            sh.jobs.erase(id);
            submitted_.fetch_sub(1, std::memory_order_relaxed);
            queued_.fetch_sub(1, std::memory_order_seq_cst);
            // The optimistic admission above already counted it; the rejected
            // counter is the net signal (submitted_total stays monotone).
            if (obs_rejected_ != nullptr) obs_rejected_->inc();
        }
        // else: a canceller already retired it as kCancelled — its record
        // stays, stats were adjusted by the canceller.
    }
    gauge_tick();
    notify_terminal();
    return std::nullopt;
}

JobState ClusterScheduler::state(std::uint64_t id) const {
    const Shard& sh = shard(id);
    std::lock_guard<std::mutex> lock(sh.mutex);
    auto it = sh.jobs.find(id);
    if (it == sh.jobs.end())
        throw std::out_of_range("ClusterScheduler::state: unknown job id " + std::to_string(id));
    return it->second->info.state;
}

std::optional<JobInfo> ClusterScheduler::info(std::uint64_t id) const {
    const Shard& sh = shard(id);
    std::lock_guard<std::mutex> lock(sh.mutex);
    auto it = sh.jobs.find(id);
    if (it == sh.jobs.end()) return std::nullopt;
    return it->second->info;
}

std::vector<JobInfo> ClusterScheduler::jobs() const {
    std::vector<JobInfo> out;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mutex);
        out.reserve(out.size() + shards_[s].jobs.size());
        for (const auto& [id, job] : shards_[s].jobs) out.push_back(job->info);
    }
    std::sort(out.begin(), out.end(),
              [](const JobInfo& a, const JobInfo& b) { return a.id < b.id; });
    return out;
}

bool ClusterScheduler::cancel(std::uint64_t id) {
    JobInfo discarded;
    DiscardFn on_discard;
    detail::Job* retired_job = nullptr;
    {
        Shard& sh = shard(id);
        std::lock_guard<std::mutex> lock(sh.mutex);
        auto it = sh.jobs.find(id);
        if (it == sh.jobs.end() || is_terminal(it->second->info.state)) return false;
        detail::Job* job = it->second.get();
        job->cancel.store(true, std::memory_order_relaxed);
        std::uint8_t expected = kClaimNone;
        if (job->claimed.compare_exchange_strong(expected, kClaimCancel,
                                                 std::memory_order_acq_rel)) {
            // Still queued and we won the claim: retire it here. The queue
            // entry goes stale; retired() releases its capacity slot.
            job->info.state = JobState::kCancelled;
            job->info.finish_s = now_s();
            discarded = job->info;
            on_discard = std::move(job->on_discard);
            retired_job = job;
        }
        // else: a worker owns it (running or retiring) — the flag is set and
        // the job retires as kCancelled when the worker checks it.
    }
    if (retired_job != nullptr) {
        queued_.fetch_sub(1, std::memory_order_seq_cst);
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        count_terminal(JobState::kCancelled);
        gauge_tick();
        queue_->retired(retired_job);
        notify_terminal();
        if (on_discard) on_discard(discarded);
    }
    return true;
}

std::size_t ClusterScheduler::discard_queued() {
    // Claim under the shard lock, run the callbacks outside every lock (an
    // on_discard settles a promise, and the waiter may call back into the
    // scheduler). Jobs a worker claims between scan and CAS stay running —
    // exactly the contract.
    std::vector<std::pair<JobInfo, DiscardFn>> discarded;
    std::vector<detail::Job*> retired_jobs;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mutex);
        for (auto& [id, owned] : shards_[s].jobs) {
            detail::Job* job = owned.get();
            if (job->info.state != JobState::kQueued) continue;
            std::uint8_t expected = kClaimNone;
            if (!job->claimed.compare_exchange_strong(expected, kClaimCancel,
                                                      std::memory_order_acq_rel))
                continue;  // worker-owned (popped or mid-retry): leave it
            job->cancel.store(true, std::memory_order_relaxed);
            job->info.state = JobState::kCancelled;
            job->info.finish_s = now_s();
            discarded.emplace_back(job->info, std::move(job->on_discard));
            retired_jobs.push_back(job);
        }
    }
    if (!discarded.empty()) {
        for (detail::Job* job : retired_jobs) {
            queued_.fetch_sub(1, std::memory_order_seq_cst);
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            count_terminal(JobState::kCancelled);
            queue_->retired(job);
        }
        gauge_tick();
        notify_terminal();
        for (auto& [info, on_discard] : discarded)
            if (on_discard) on_discard(info);
    }
    return discarded.size();
}

void ClusterScheduler::finish(detail::Job* job, JobState state, const std::string& error,
                              std::exception_ptr failure) {
    FailFn on_failed;
    JobInfo failed_info;
    {
        Shard& sh = shard(job->info.id);
        std::lock_guard<std::mutex> lock(sh.mutex);
        JobInfo& info = job->info;
        info.state = state;
        info.finish_s = now_s();
        info.error = error;
        if (state == JobState::kFailed && failure != nullptr && job->on_failed) {
            on_failed = std::move(job->on_failed);
            failed_info = info;
        }
    }
    running_.fetch_sub(1, std::memory_order_seq_cst);
    switch (state) {
        case JobState::kCompleted: completed_.fetch_add(1, std::memory_order_relaxed); break;
        case JobState::kFailed: failed_.fetch_add(1, std::memory_order_relaxed); break;
        case JobState::kCancelled: cancelled_.fetch_add(1, std::memory_order_relaxed); break;
        case JobState::kTimedOut: timed_out_.fetch_add(1, std::memory_order_relaxed); break;
        default: break;
    }
    count_terminal(state);
    gauge_tick();
    notify_terminal();
    if (on_failed) on_failed(failed_info, failure);
}

void ClusterScheduler::worker_loop() {
    for (;;) {
        detail::Job* job = queue_->pop();  // returns already claimed for us
        if (job == nullptr) return;        // closed and drained
        const std::uint64_t id = job->info.id;

        JobFn fn;
        double deadline_s = 0.0;
        double queue_wait_s = 0.0;
        double submit_s = 0.0;
        std::size_t attempts = 0;
        std::string label;
        JobInfo discarded;
        DiscardFn on_discard;
        bool discard = false;
        JobState discard_state = JobState::kCancelled;
        {
            Shard& sh = shard(id);
            std::lock_guard<std::mutex> lock(sh.mutex);
            JobInfo& info = job->info;
            const double now = now_s();
            if (job->cancel.load(std::memory_order_relaxed)) {
                info.state = JobState::kCancelled;
                info.finish_s = now;
                discard = true;
                discard_state = JobState::kCancelled;
            } else if (info.deadline_s > 0 && now > info.deadline_s) {
                // The deadline passed while the job sat in the queue: shed it
                // rather than start work whose response-time budget is spent.
                info.state = JobState::kTimedOut;
                info.finish_s = now;
                discard = true;
                discard_state = JobState::kTimedOut;
            } else {
                info.state = JobState::kRunning;
                info.start_s = now;
                attempts = ++info.attempts;
                deadline_s = info.deadline_s;
                submit_s = info.submit_s;
                queue_wait_s = now - info.submit_s;
                label = info.label;
                fn = std::move(job->fn);
                job->fn = nullptr;
            }
            if (discard) {
                discarded = info;
                on_discard = std::move(job->on_discard);
            }
        }
        if (discard) {
            queued_.fetch_sub(1, std::memory_order_seq_cst);
            if (discard_state == JobState::kCancelled)
                cancelled_.fetch_add(1, std::memory_order_relaxed);
            else
                timed_out_.fetch_add(1, std::memory_order_relaxed);
            count_terminal(discard_state);
            gauge_tick();
            notify_terminal();
            if (on_discard) on_discard(discarded);
            continue;
        }
        queued_.fetch_sub(1, std::memory_order_seq_cst);
        running_.fetch_add(1, std::memory_order_seq_cst);
        gauge_tick();

        if (obs_queue_wait_ != nullptr) obs_queue_wait_->observe(queue_wait_s);
        obs::Tracer::Span job_span;
        if (config_.obs != nullptr) {
            job_span = config_.obs->tracer().span("job", "sched");
            job_span.arg("job_id", std::to_string(id));
            if (!label.empty()) job_span.arg("label", label);
            if (attempts > 1) job_span.arg("attempt", std::to_string(attempts));
        }
        JobContext ctx(*this, id, &job->cancel, deadline_s);
        std::string error;
        bool failed = false;
        bool transient = false;
        std::exception_ptr failure;
        try {
            fn(ctx);
        } catch (const ft::TransientFailure& e) {
            failed = true;
            transient = true;
            error = e.what();
            failure = std::current_exception();
        } catch (const std::exception& e) {
            failed = true;
            error = e.what();
            failure = std::current_exception();
        } catch (...) {
            failed = true;
            error = "unknown exception";
            failure = std::current_exception();
        }

        // Retry path (DESIGN.md §10): a transient failure under a non-zero
        // retry policy puts the job back at the FRONT of its original
        // priority class — same id, so its priority/deadline/submit-time
        // accounting are preserved — after a backoff slept on this worker
        // (the failing slot absorbs the delay, throttling a flapping job
        // without blocking the rest of the pool).
        if (failed && transient && config_.retry.enabled() &&
            !job->cancel.load(std::memory_order_relaxed) &&
            config_.retry.should_retry(attempts, now_s() - submit_s)) {
            {
                Shard& sh = shard(id);
                std::lock_guard<std::mutex> lock(sh.mutex);
                job->info.state = JobState::kQueued;
            }
            running_.fetch_sub(1, std::memory_order_seq_cst);
            queued_.fetch_add(1, std::memory_order_seq_cst);
            requeued_.fetch_add(1, std::memory_order_relaxed);
            if (obs_requeued_ != nullptr) obs_requeued_->inc();
            gauge_tick();
            PT_LOG_WARN("sched").field("job", id).field("attempt", attempts)
                << "transient job failure, requeueing: " << error;
            util::Rng backoff_rng(id * 0x9e3779b97f4a7c15ULL + attempts);
            const double backoff = config_.retry.backoff_s(attempts, backoff_rng);
            if (backoff > 0.0)
                std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
            // Republish: hand the function back and release our claim, THEN
            // enqueue — from the release on, a canceller may win the job.
            job->fn = std::move(fn);
            job->claimed.store(kClaimNone, std::memory_order_release);
            if (queue_->push_front(job)) continue;
            // Queue closed mid-retry: take the job back and fail it so the
            // accounting balances. Losing this claim means a canceller
            // retired it while we were away — nothing left to do.
            std::uint8_t expected = kClaimNone;
            {
                Shard& sh = shard(id);
                std::lock_guard<std::mutex> lock(sh.mutex);
                if (!job->claimed.compare_exchange_strong(expected, kClaimWorker,
                                                          std::memory_order_acq_rel)) {
                    notify_terminal();
                    continue;
                }
                job->info.state = JobState::kRunning;
                job->fn = nullptr;
            }
            running_.fetch_add(1, std::memory_order_seq_cst);
            queued_.fetch_sub(1, std::memory_order_seq_cst);
            requeued_.fetch_sub(1, std::memory_order_relaxed);
            gauge_tick();
        }

        const JobState final_state =
            failed ? JobState::kFailed
                   : (job->cancel.load(std::memory_order_relaxed) ? JobState::kCancelled
                                                                  : JobState::kCompleted);
        if (failed) PT_LOG_WARN("sched") << "job " << id << " failed: " << error;
        finish(job, final_state, error, failure);
    }
}

bool ClusterScheduler::wait(std::uint64_t id, double timeout_s) {
    {
        const Shard& sh = shard(id);
        std::lock_guard<std::mutex> lock(sh.mutex);
        if (sh.jobs.find(id) == sh.jobs.end()) return false;
    }
    auto terminal = [this, id] {
        const Shard& sh = shard(id);
        std::lock_guard<std::mutex> lock(sh.mutex);
        auto it = sh.jobs.find(id);
        return it == sh.jobs.end() || is_terminal(it->second->info.state);
    };
    std::unique_lock<std::mutex> lock(wait_mutex_);
    terminal_waiters_.fetch_add(1, std::memory_order_seq_cst);
    bool ok = true;
    if (timeout_s < 0)
        terminal_cv_.wait(lock, terminal);
    else
        ok = terminal_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), terminal);
    terminal_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    return ok;
}

void ClusterScheduler::drain() {
    {
        std::unique_lock<std::mutex> lock(wait_mutex_);
        terminal_waiters_.fetch_add(1, std::memory_order_seq_cst);
        terminal_cv_.wait(lock, [this] {
            return queued_.load(std::memory_order_seq_cst) == 0 &&
                   running_.load(std::memory_order_seq_cst) == 0;
        });
        terminal_waiters_.fetch_sub(1, std::memory_order_seq_cst);
    }
    flush_gauges();  // quiesced: make the sampled gauges exact
}

void ClusterScheduler::shutdown(bool drain_queue) {
    if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
    if (drain_queue) {
        drain();
    } else {
        // Discard everything still queued; running jobs get cooperative
        // cancel flags and are waited for (threads are never killed).
        for (std::size_t s = 0; s <= shard_mask_; ++s) {
            std::lock_guard<std::mutex> lock(shards_[s].mutex);
            for (auto& [id, job] : shards_[s].jobs)
                job->cancel.store(true, std::memory_order_relaxed);
        }
        discard_queued();
        drain();
    }
    queue_->close();
    pool_.shutdown(true);
    flush_gauges();
}

SchedulerStats ClusterScheduler::stats() const {
    SchedulerStats out;
    out.submitted = submitted_.load(std::memory_order_relaxed);
    out.completed = completed_.load(std::memory_order_relaxed);
    out.failed = failed_.load(std::memory_order_relaxed);
    out.cancelled = cancelled_.load(std::memory_order_relaxed);
    out.timed_out = timed_out_.load(std::memory_order_relaxed);
    out.requeued = requeued_.load(std::memory_order_relaxed);
    out.running = static_cast<std::size_t>(
        std::max<std::int64_t>(0, running_.load(std::memory_order_seq_cst)));
    out.queued = static_cast<std::size_t>(
        std::max<std::int64_t>(0, queued_.load(std::memory_order_seq_cst)));
    out.max_queue_depth = queue_->max_depth();
    flush_gauges();  // synchronous observation point: make gauges exact
    return out;
}

std::vector<cluster::JobRecord> ClusterScheduler::trace() const {
    std::vector<cluster::JobRecord> records;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
        std::lock_guard<std::mutex> lock(shards_[s].mutex);
        for (const auto& [id, job] : shards_[s].jobs) {
            if (job->info.state != JobState::kCompleted) continue;
            cluster::JobRecord record;
            record.index = id;
            record.workload_name = job->info.label;
            record.arrival_s = job->info.submit_s;
            record.start_s = job->info.start_s;
            record.completion_s = job->info.finish_s;
            records.push_back(std::move(record));
        }
    }
    std::sort(records.begin(), records.end(),
              [](const cluster::JobRecord& a, const cluster::JobRecord& b) {
                  return a.index < b.index;
              });
    return records;
}

}  // namespace pipetune::sched
