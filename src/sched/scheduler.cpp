#include "pipetune/sched/scheduler.hpp"

#include <stdexcept>
#include <thread>

#include "pipetune/ft/errors.hpp"
#include "pipetune/util/logging.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::sched {

const char* to_string(Priority priority) {
    switch (priority) {
        case Priority::kHigh: return "high";
        case Priority::kNormal: return "normal";
        case Priority::kBatch: return "batch";
    }
    return "?";
}

const char* to_string(JobState state) {
    switch (state) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kCompleted: return "completed";
        case JobState::kFailed: return "failed";
        case JobState::kCancelled: return "cancelled";
        case JobState::kTimedOut: return "timed-out";
    }
    return "?";
}

bool is_terminal(JobState state) {
    return state != JobState::kQueued && state != JobState::kRunning;
}

bool JobContext::deadline_expired() const {
    return deadline_s_ > 0.0 && scheduler_.now_s() > deadline_s_;
}

ClusterScheduler::ClusterScheduler(SchedulerConfig config)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      queue_(config.queue_capacity, config.overflow),
      pool_(config.worker_slots == 0 ? 1 : config.worker_slots) {
    if (config_.obs != nullptr) {
        auto& registry = config_.obs->metrics();
        obs_submitted_ = &registry.counter("pipetune_sched_jobs_submitted_total", {},
                                           "Jobs admitted to the scheduler queue");
        obs_rejected_ = &registry.counter("pipetune_sched_jobs_rejected_total", {},
                                          "Jobs shed at submit (queue full or shut down)");
        obs_completed_ = &registry.counter("pipetune_sched_jobs_completed_total", {},
                                           "Jobs that ran to completion");
        obs_failed_ = &registry.counter("pipetune_sched_jobs_failed_total", {},
                                        "Jobs whose function threw");
        obs_cancelled_ = &registry.counter("pipetune_sched_jobs_cancelled_total", {},
                                           "Jobs cancelled (queued or cooperative)");
        obs_timed_out_ = &registry.counter("pipetune_sched_jobs_timed_out_total", {},
                                           "Jobs discarded after their queueing deadline");
        obs_requeued_ = &registry.counter(
            "pipetune_ft_requeues_total", {},
            "Jobs requeued after a transient failure (scheduler retry path)");
        obs_queue_depth_ =
            &registry.gauge("pipetune_sched_queue_depth", {}, "Jobs waiting in the queue");
        obs_running_ =
            &registry.gauge("pipetune_sched_jobs_running", {}, "Jobs occupying worker slots");
        obs_queue_wait_ = &registry.histogram(
            "pipetune_sched_queue_wait_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 60.0}, {},
            "Queue wait (submit to start) of jobs that ran");
    }
    // Each worker slot is one long-lived pool task looping over the queue;
    // the loops exit when the queue is closed and drained.
    for (std::size_t i = 0; i < pool_.size(); ++i)
        (void)pool_.submit([this] { worker_loop(); });
}

void ClusterScheduler::update_gauges_locked() {
    if (obs_queue_depth_ != nullptr)
        obs_queue_depth_->set(static_cast<double>(stats_.queued));
    if (obs_running_ != nullptr) obs_running_->set(static_cast<double>(stats_.running));
}

void ClusterScheduler::count_terminal_locked(JobState state) {
    switch (state) {
        case JobState::kCompleted:
            if (obs_completed_ != nullptr) obs_completed_->inc();
            break;
        case JobState::kFailed:
            if (obs_failed_ != nullptr) obs_failed_->inc();
            break;
        case JobState::kCancelled:
            if (obs_cancelled_ != nullptr) obs_cancelled_->inc();
            break;
        case JobState::kTimedOut:
            if (obs_timed_out_ != nullptr) obs_timed_out_->inc();
            break;
        default:
            break;
    }
}

ClusterScheduler::~ClusterScheduler() { shutdown(true); }

double ClusterScheduler::now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

std::optional<JobTicket> ClusterScheduler::submit(JobFn fn, JobOptions options,
                                                  DiscardFn on_discard, FailFn on_failed) {
    if (!fn) throw std::invalid_argument("ClusterScheduler::submit: empty job");
    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shut_down_) return std::nullopt;
        id = next_job_id_++;
        Job job;
        job.info.id = id;
        job.info.label = options.label;
        job.info.priority = options.priority;
        job.info.state = JobState::kQueued;
        job.info.submit_s = now_s();
        job.info.deadline_s = options.deadline_s > 0 ? job.info.submit_s + options.deadline_s : 0.0;
        job.on_discard = std::move(on_discard);
        job.on_failed = std::move(on_failed);
        jobs_.emplace(id, std::move(job));
        ++stats_.submitted;
        ++stats_.queued;
        if (obs_submitted_ != nullptr) obs_submitted_->inc();
        update_gauges_locked();
    }
    // Pushed outside the scheduler lock: a kBlock push may park this thread
    // until a worker frees a slot, and that worker needs the lock to retire
    // its job. Workers popping `id` before we return still find its metadata
    // registered above.
    if (queue_.push_with_id(id, std::move(fn), options.priority)) return JobTicket{id};

    // Rejected (queue full under kReject, or closed): roll the ghost back.
    DiscardFn discard;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it != jobs_.end()) {
            discard = std::move(it->second.on_discard);
            jobs_.erase(it);
            --stats_.submitted;
            --stats_.queued;
            // The optimistic admission above already counted it; the rejected
            // counter is the net signal (submitted_total stays monotone).
            if (obs_rejected_ != nullptr) obs_rejected_->inc();
            update_gauges_locked();
        }
    }
    return std::nullopt;
}

JobState ClusterScheduler::state(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        throw std::out_of_range("ClusterScheduler::state: unknown job id " + std::to_string(id));
    return it->second.info.state;
}

std::optional<JobInfo> ClusterScheduler::info(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    return it->second.info;
}

std::vector<JobInfo> ClusterScheduler::jobs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobInfo> out;
    out.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) out.push_back(job.info);
    return out;
}

bool ClusterScheduler::cancel(std::uint64_t id) {
    JobInfo discarded;
    DiscardFn on_discard;
    bool run_discard = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end() || is_terminal(it->second.info.state)) return false;
        Job& job = it->second;
        job.cancel->store(true, std::memory_order_relaxed);
        if (job.info.state == JobState::kQueued && queue_.erase(id)) {
            job.info.state = JobState::kCancelled;
            job.info.finish_s = now_s();
            --stats_.queued;
            ++stats_.cancelled;
            count_terminal_locked(JobState::kCancelled);
            update_gauges_locked();
            discarded = job.info;
            on_discard = std::move(job.on_discard);
            run_discard = true;
        }
        // else: a worker already popped it (or it is running) — the flag is
        // set and the job will retire as kCancelled when the worker checks.
    }
    if (run_discard) {
        terminal_cv_.notify_all();
        if (on_discard) on_discard(discarded);
    }
    return true;
}

std::size_t ClusterScheduler::discard_queued() {
    // Collect the discards under the lock, run the callbacks outside it
    // (an on_discard settles a promise, and the waiter may call back into
    // the scheduler). Jobs a worker pops between the state check and
    // queue_.erase simply stay running — exactly the contract.
    std::vector<std::pair<JobInfo, DiscardFn>> discarded;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [id, job] : jobs_) {
            if (job.info.state != JobState::kQueued || !queue_.erase(id)) continue;
            job.cancel->store(true, std::memory_order_relaxed);
            job.info.state = JobState::kCancelled;
            job.info.finish_s = now_s();
            --stats_.queued;
            ++stats_.cancelled;
            count_terminal_locked(JobState::kCancelled);
            discarded.emplace_back(job.info, std::move(job.on_discard));
        }
        if (!discarded.empty()) update_gauges_locked();
    }
    if (!discarded.empty()) {
        terminal_cv_.notify_all();
        for (auto& [info, on_discard] : discarded)
            if (on_discard) on_discard(info);
    }
    return discarded.size();
}

void ClusterScheduler::finish(std::uint64_t id, JobState state, const std::string& error,
                              std::exception_ptr failure) {
    FailFn on_failed;
    JobInfo failed_info;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end()) return;
        JobInfo& info = it->second.info;
        info.state = state;
        info.finish_s = now_s();
        info.error = error;
        --stats_.running;
        count_terminal_locked(state);
        update_gauges_locked();
        switch (state) {
            case JobState::kCompleted: ++stats_.completed; break;
            case JobState::kFailed: ++stats_.failed; break;
            case JobState::kCancelled: ++stats_.cancelled; break;
            case JobState::kTimedOut: ++stats_.timed_out; break;
            default: break;
        }
        if (state == JobState::kFailed && failure != nullptr && it->second.on_failed) {
            on_failed = std::move(it->second.on_failed);
            failed_info = info;
        }
    }
    terminal_cv_.notify_all();
    if (on_failed) on_failed(failed_info, failure);
}

void ClusterScheduler::worker_loop() {
    for (;;) {
        std::uint64_t id = 0;
        JobFn fn;
        Priority priority = Priority::kNormal;
        if (!queue_.pop(&id, &fn, &priority)) return;  // closed and drained

        std::shared_ptr<std::atomic<bool>> cancel;
        double deadline_s = 0.0;
        double queue_wait_s = 0.0;
        double submit_s = 0.0;
        std::size_t attempts = 0;
        std::string label;
        JobInfo discarded;
        DiscardFn on_discard;
        bool discard = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = jobs_.find(id);
            if (it == jobs_.end()) continue;  // rolled back by a rejected submit
            Job& job = it->second;
            const double now = now_s();
            if (job.cancel->load(std::memory_order_relaxed)) {
                job.info.state = JobState::kCancelled;
                job.info.finish_s = now;
                --stats_.queued;
                ++stats_.cancelled;
                count_terminal_locked(JobState::kCancelled);
                discard = true;
            } else if (job.info.deadline_s > 0 && now > job.info.deadline_s) {
                // The deadline passed while the job sat in the queue: shed it
                // rather than start work whose response-time budget is spent.
                job.info.state = JobState::kTimedOut;
                job.info.finish_s = now;
                --stats_.queued;
                ++stats_.timed_out;
                count_terminal_locked(JobState::kTimedOut);
                discard = true;
            } else {
                job.info.state = JobState::kRunning;
                job.info.start_s = now;
                attempts = ++job.info.attempts;
                --stats_.queued;
                ++stats_.running;
                cancel = job.cancel;
                deadline_s = job.info.deadline_s;
                submit_s = job.info.submit_s;
                queue_wait_s = now - job.info.submit_s;
                label = job.info.label;
            }
            update_gauges_locked();
            if (discard) {
                discarded = job.info;
                on_discard = std::move(job.on_discard);
            }
        }
        if (discard) {
            terminal_cv_.notify_all();
            if (on_discard) on_discard(discarded);
            continue;
        }

        if (obs_queue_wait_ != nullptr) obs_queue_wait_->observe(queue_wait_s);
        obs::Tracer::Span job_span;
        if (config_.obs != nullptr) {
            job_span = config_.obs->tracer().span("job", "sched");
            job_span.arg("job_id", std::to_string(id));
            if (!label.empty()) job_span.arg("label", label);
            if (attempts > 1) job_span.arg("attempt", std::to_string(attempts));
        }
        JobContext ctx(*this, id, cancel.get(), deadline_s);
        std::string error;
        bool failed = false;
        bool transient = false;
        std::exception_ptr failure;
        try {
            fn(ctx);
        } catch (const ft::TransientFailure& e) {
            failed = true;
            transient = true;
            error = e.what();
            failure = std::current_exception();
        } catch (const std::exception& e) {
            failed = true;
            error = e.what();
            failure = std::current_exception();
        } catch (...) {
            failed = true;
            error = "unknown exception";
            failure = std::current_exception();
        }

        // Retry path (DESIGN.md §10): a transient failure under a non-zero
        // retry policy puts the job back at the FRONT of its original
        // priority class — same id, so its priority/deadline/submit-time
        // accounting are preserved — after a backoff slept on this worker
        // (the failing slot absorbs the delay, throttling a flapping job
        // without blocking the rest of the pool).
        if (failed && transient && config_.retry.enabled() &&
            !cancel->load(std::memory_order_relaxed) &&
            config_.retry.should_retry(attempts, now_s() - submit_s)) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = jobs_.find(id);
                if (it != jobs_.end()) {
                    it->second.info.state = JobState::kQueued;
                    --stats_.running;
                    ++stats_.queued;
                    ++stats_.requeued;
                    update_gauges_locked();
                }
            }
            if (obs_requeued_ != nullptr) obs_requeued_->inc();
            PT_LOG_WARN("sched").field("job", id).field("attempt", attempts)
                << "transient job failure, requeueing: " << error;
            util::Rng backoff_rng(id * 0x9e3779b97f4a7c15ULL + attempts);
            const double backoff = config_.retry.backoff_s(attempts, backoff_rng);
            if (backoff > 0.0)
                std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
            if (queue_.push_front_with_id(id, std::move(fn), priority)) continue;
            // Queue closed mid-retry: restore running so finish() balances.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = jobs_.find(id);
                if (it != jobs_.end()) {
                    it->second.info.state = JobState::kRunning;
                    ++stats_.running;
                    --stats_.queued;
                    --stats_.requeued;
                    update_gauges_locked();
                }
            }
        }

        const JobState final_state =
            failed ? JobState::kFailed
                   : (cancel->load(std::memory_order_relaxed) ? JobState::kCancelled
                                                              : JobState::kCompleted);
        if (failed) PT_LOG_WARN("sched") << "job " << id << " failed: " << error;
        finish(id, final_state, error, failure);
    }
}

bool ClusterScheduler::wait(std::uint64_t id, double timeout_s) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto terminal = [this, id] {
        auto it = jobs_.find(id);
        return it == jobs_.end() || is_terminal(it->second.info.state);
    };
    if (jobs_.find(id) == jobs_.end()) return false;
    if (timeout_s < 0) {
        terminal_cv_.wait(lock, terminal);
        return true;
    }
    return terminal_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), terminal);
}

void ClusterScheduler::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    terminal_cv_.wait(lock, [this] { return stats_.queued == 0 && stats_.running == 0; });
}

void ClusterScheduler::shutdown(bool drain_queue) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shut_down_) return;
        shut_down_ = true;
    }
    if (drain_queue) {
        drain();
    } else {
        // Discard everything still queued; running jobs get cooperative
        // cancel flags and are waited for (threads are never killed).
        std::vector<std::uint64_t> queued;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto& [id, job] : jobs_) {
                job.cancel->store(true, std::memory_order_relaxed);
                if (job.info.state == JobState::kQueued) queued.push_back(id);
            }
        }
        for (const std::uint64_t id : queued) cancel(id);
        drain();
    }
    queue_.close();
    pool_.shutdown(true);
}

SchedulerStats ClusterScheduler::stats() const {
    SchedulerStats out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out = stats_;
    }
    out.max_queue_depth = queue_.max_depth();
    return out;
}

std::vector<cluster::JobRecord> ClusterScheduler::trace() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<cluster::JobRecord> records;
    records.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) {
        if (job.info.state != JobState::kCompleted) continue;
        cluster::JobRecord record;
        record.index = id;
        record.workload_name = job.info.label;
        record.arrival_s = job.info.submit_s;
        record.start_s = job.info.start_s;
        record.completion_s = job.info.finish_s;
        records.push_back(std::move(record));
    }
    return records;
}

}  // namespace pipetune::sched
