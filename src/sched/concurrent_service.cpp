#include "pipetune/sched/concurrent_service.hpp"

#include <filesystem>

#include "pipetune/core/service.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/util/logging.hpp"

namespace pipetune::sched {

namespace {

SchedulerConfig scheduler_config(const core::ServiceOptions& options) {
    SchedulerConfig config;
    config.worker_slots = std::max<std::size_t>(1, options.concurrency);
    config.queue_capacity = options.queue_capacity;
    config.overflow =
        options.reject_when_full ? OverflowPolicy::kReject : OverflowPolicy::kBlock;
    config.obs = options.obs;
    return config;
}

Priority to_sched_priority(core::SubmitPriority priority) {
    switch (priority) {
        case core::SubmitPriority::kHigh: return Priority::kHigh;
        case core::SubmitPriority::kNormal: return Priority::kNormal;
        case core::SubmitPriority::kBatch: return Priority::kBatch;
    }
    return Priority::kNormal;
}

}  // namespace

ConcurrentPipeTuneService::ConcurrentPipeTuneService(workload::Backend& backend,
                                                     core::ServiceOptions options)
    : options_(std::move(options)),
      backend_(backend),
      state_(options_.pipetune.ground_truth),
      scheduler_(scheduler_config(options_)) {
    if (!options_.state_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.state_dir, ec);
        if (ec)
            throw std::runtime_error("ConcurrentPipeTuneService: cannot create state dir '" +
                                     options_.state_dir + "': " + ec.message());
        state_.load(options_.state_dir, options_.pipetune.ground_truth);
        if (state_.ground_truth_size() > 0)
            PT_LOG_INFO("sched").field("profiles", state_.ground_truth_size())
                << "loaded shared ground truth from " << ground_truth_path();
    }
    if (state_.ground_truth_size() == 0 && options_.warm_start_on_first_use &&
        !options_.warm_start_workloads.empty()) {
        core::WarmStartConfig warm;
        warm.ground_truth = options_.pipetune.ground_truth;
        const core::GroundTruth seeded =
            core::build_warm_ground_truth(backend_, options_.warm_start_workloads, warm);
        for (const auto& entry : seeded.entries())
            state_.ground_truth().record(entry.features, entry.best_system, entry.metric);
        PT_LOG_INFO("sched").field("profiles", state_.ground_truth_size())
            << "warm-start campaign finished";
    }
}

ConcurrentPipeTuneService::~ConcurrentPipeTuneService() {
    scheduler_.shutdown(true);
    if (!options_.state_dir.empty()) {
        try {
            persist();
        } catch (const std::exception& e) {
            PT_LOG_ERROR("sched") << "final persist failed: " << e.what();
        }
    }
}

std::string ConcurrentPipeTuneService::ground_truth_path() const {
    return options_.state_dir.empty()
               ? std::string()
               : SharedClusterState::ground_truth_path(options_.state_dir);
}

std::string ConcurrentPipeTuneService::metrics_path() const {
    return options_.state_dir.empty() ? std::string()
                                      : SharedClusterState::metrics_path(options_.state_dir);
}

void ConcurrentPipeTuneService::persist() const {
    if (options_.state_dir.empty()) return;
    const double start_s = options_.obs ? options_.obs->tracer().now_s() : 0.0;
    state_.save(options_.state_dir);
    if (options_.obs) {
        auto& registry = options_.obs->metrics();
        registry
            .counter("pipetune_metricsdb_flush_total", {},
                     "State flushes (ground truth + metrics db)")
            .inc();
        registry
            .histogram("pipetune_metricsdb_flush_seconds",
                       {0.001, 0.005, 0.02, 0.1, 0.5, 2.0}, {},
                       "Wall-clock latency of one state flush")
            .observe(options_.obs->tracer().now_s() - start_s);
        registry
            .gauge("pipetune_metricsdb_points", {}, "Points in the metrics database")
            .set(static_cast<double>(state_.metric_points()));
    }
}

core::ServiceStats ConcurrentPipeTuneService::stats() const {
    const SchedulerStats sched = scheduler_.stats();
    core::ServiceStats out;
    out.submitted = sched.submitted;
    out.completed = sched.completed;
    out.failed = sched.failed;
    out.cancelled = sched.cancelled;
    out.timed_out = sched.timed_out;
    out.running = sched.running;
    out.queued = sched.queued;
    out.max_queue_depth = sched.max_queue_depth;
    return out;
}

std::vector<core::JobTiming> ConcurrentPipeTuneService::job_timings() const {
    std::vector<core::JobTiming> out;
    for (const JobInfo& info : scheduler_.jobs()) {
        core::JobTiming timing;
        timing.id = info.id;
        timing.label = info.label;
        timing.submit_s = info.submit_s;
        timing.start_s = info.start_s;
        timing.finish_s = info.finish_s;
        timing.ok = info.state == JobState::kCompleted;
        timing.error = info.state == JobState::kCompleted ? std::string()
                       : info.error.empty() ? std::string(to_string(info.state))
                                            : info.error;
        out.push_back(std::move(timing));
    }
    return out;
}

std::optional<core::TuningService::Submission> ConcurrentPipeTuneService::submit(
    const workload::Workload& workload, const hpt::HptJobConfig& job_config,
    core::SubmitOptions options) {
    JobOptions sched_options;
    sched_options.label = options.label.empty() ? workload.name : options.label;
    sched_options.priority = to_sched_priority(options.priority);
    sched_options.deadline_s = options.deadline_s;

    auto promise = std::make_shared<std::promise<core::PipeTuneJobResult>>();
    auto future = promise->get_future();

    // The job body runs on a scheduler worker slot. Copies of the workload
    // and job config keep it self-contained; shared state is reached only
    // through the locked views.
    ClusterScheduler::JobFn run = [this, workload, job_config,
                                   promise](JobContext& ctx) mutable {
        try {
            core::PipeTuneConfig pipetune = options_.pipetune;
            pipetune.metrics = &state_.metrics();
            pipetune.obs = options_.obs;
            hpt::HptJobConfig job = job_config;
            job.obs = options_.obs;
            auto result =
                core::run_pipetune(backend_, workload, job, pipetune, &state_.ground_truth());
            jobs_served_.fetch_add(1, std::memory_order_relaxed);
            if (options_.obs)
                options_.obs->metrics()
                    .counter("pipetune_service_jobs_served_total", {},
                             "HPT jobs run to completion by a tuning service")
                    .inc();
            if (options_.persist_after_each_job && !options_.state_dir.empty()) persist();
            PT_LOG_INFO("sched")
                    .field("workload", workload.name)
                    .field("hits", result.ground_truth_hits)
                    .field("probes", result.probes_started)
                    .field("store", result.ground_truth_size)
                << "job " << ctx.id() << " done";
            promise->set_value(std::move(result));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    };
    // Discarded without running → the future reports why instead of dangling
    // as a broken promise.
    ClusterScheduler::DiscardFn on_discard = [promise](const JobInfo& info) {
        promise->set_exception(std::make_exception_ptr(std::runtime_error(
            "pipetune job " + std::to_string(info.id) + " " + to_string(info.state) +
            " before running")));
    };

    auto ticket =
        scheduler_.submit(std::move(run), std::move(sched_options), std::move(on_discard));
    if (!ticket) return std::nullopt;
    return Submission{ticket->id, std::move(future)};
}

std::unique_ptr<core::TuningService> make_tuning_service(workload::Backend& backend,
                                                         core::ServiceOptions options) {
    if (options.concurrency <= 1)
        return std::make_unique<core::PipeTuneService>(backend, std::move(options));
    return std::make_unique<ConcurrentPipeTuneService>(backend, std::move(options));
}

}  // namespace pipetune::sched
