#include "pipetune/sched/concurrent_service.hpp"

#include <filesystem>

#include "pipetune/core/service.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/ft/errors.hpp"
#include "pipetune/ft/journal.hpp"
#include "pipetune/util/logging.hpp"

namespace pipetune::sched {

namespace {

SchedulerConfig scheduler_config(const core::ServiceOptions& options) {
    SchedulerConfig config;
    config.worker_slots = std::max<std::size_t>(1, options.concurrency);
    config.queue_capacity = options.queue_capacity;
    config.overflow =
        options.reject_when_full ? OverflowPolicy::kReject : OverflowPolicy::kBlock;
    config.retry = options.retry;
    config.obs = options.obs;
    return config;
}

Priority to_sched_priority(core::SubmitPriority priority) {
    switch (priority) {
        case core::SubmitPriority::kHigh: return Priority::kHigh;
        case core::SubmitPriority::kNormal: return Priority::kNormal;
        case core::SubmitPriority::kBatch: return Priority::kBatch;
    }
    return Priority::kNormal;
}

}  // namespace

ConcurrentPipeTuneService::ConcurrentPipeTuneService(workload::Backend& backend,
                                                     core::ServiceOptions options)
    : options_(std::move(options)),
      backend_(backend),
      state_(options_.pipetune.ground_truth),
      scheduler_(scheduler_config(options_)) {
    if (options_.obs != nullptr) {
        auto& registry = options_.obs->metrics();
        obs_flush_total_ = &registry.counter("pipetune_metricsdb_flush_total", {},
                                             "State flushes (ground truth + metrics db)");
        obs_flush_seconds_ =
            &registry.histogram("pipetune_metricsdb_flush_seconds",
                                {0.001, 0.005, 0.02, 0.1, 0.5, 2.0}, {},
                                "Wall-clock latency of one state flush");
        obs_points_ =
            &registry.gauge("pipetune_metricsdb_points", {}, "Points in the metrics database");
        obs_jobs_served_ =
            &registry.counter("pipetune_service_jobs_served_total", {},
                              "HPT jobs run to completion by a tuning service");
    }
    if (!options_.state_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.state_dir, ec);
        if (ec)
            throw std::runtime_error("ConcurrentPipeTuneService: cannot create state dir '" +
                                     options_.state_dir + "': " + ec.message());
        state_.load(options_.state_dir, options_.pipetune.ground_truth);
        if (state_.ground_truth_size() > 0)
            PT_LOG_INFO("sched").field("profiles", state_.ground_truth_size())
                << "loaded shared ground truth from " << ground_truth_path();
    }
    if (state_.ground_truth_size() == 0 && options_.warm_start_on_first_use &&
        !options_.warm_start_workloads.empty()) {
        core::WarmStartConfig warm;
        warm.ground_truth = options_.pipetune.ground_truth;
        const core::GroundTruth seeded =
            core::build_warm_ground_truth(backend_, options_.warm_start_workloads, warm);
        for (const auto& entry : seeded.entries())
            state_.ground_truth().record(entry.features, entry.best_system, entry.metric);
        PT_LOG_INFO("sched").field("profiles", state_.ground_truth_size())
            << "warm-start campaign finished";
    }
}

ConcurrentPipeTuneService::~ConcurrentPipeTuneService() {
    scheduler_.shutdown(true);
    if (!options_.state_dir.empty()) {
        try {
            persist();
        } catch (const std::exception& e) {
            PT_LOG_ERROR("sched") << "final persist failed: " << e.what();
        }
    }
}

std::string ConcurrentPipeTuneService::ground_truth_path() const {
    return options_.state_dir.empty()
               ? std::string()
               : SharedClusterState::ground_truth_path(options_.state_dir);
}

std::string ConcurrentPipeTuneService::metrics_path() const {
    return options_.state_dir.empty() ? std::string()
                                      : SharedClusterState::metrics_path(options_.state_dir);
}

void ConcurrentPipeTuneService::persist() const {
    if (options_.state_dir.empty()) return;
    const double start_s = options_.obs ? options_.obs->tracer().now_s() : 0.0;
    state_.save(options_.state_dir);
    if (options_.obs) {
        obs_flush_total_->inc();
        obs_flush_seconds_->observe(options_.obs->tracer().now_s() - start_s);
        obs_points_->set(static_cast<double>(state_.metric_points()));
    }
}

void ConcurrentPipeTuneService::seed_ground_truth(
    const std::vector<core::GroundTruthEntry>& entries) {
    for (const core::GroundTruthEntry& entry : entries)
        state_.ground_truth().record(entry.features, entry.best_system, entry.metric);
    if (!entries.empty())
        PT_LOG_INFO("sched").field("entries", entries.size())
            << "ground truth seeded from recovery";
}

core::ServiceStats ConcurrentPipeTuneService::stats() const {
    const SchedulerStats sched = scheduler_.stats();
    core::ServiceStats out;
    out.submitted = sched.submitted;
    out.completed = sched.completed;
    out.failed = sched.failed;
    out.cancelled = sched.cancelled;
    out.timed_out = sched.timed_out;
    out.running = sched.running;
    out.queued = sched.queued;
    out.max_queue_depth = sched.max_queue_depth;
    return out;
}

std::vector<core::JobTiming> ConcurrentPipeTuneService::job_timings() const {
    std::vector<core::JobTiming> out;
    for (const JobInfo& info : scheduler_.jobs()) {
        core::JobTiming timing;
        timing.id = info.id;
        timing.label = info.label;
        timing.submit_s = info.submit_s;
        timing.start_s = info.start_s;
        timing.finish_s = info.finish_s;
        timing.ok = info.state == JobState::kCompleted;
        timing.error = info.state == JobState::kCompleted ? std::string()
                       : info.error.empty() ? std::string(to_string(info.state))
                                            : info.error;
        out.push_back(std::move(timing));
    }
    return out;
}

std::optional<core::TuningService::Submission> ConcurrentPipeTuneService::submit(
    const workload::Workload& workload, const hpt::HptJobConfig& job_config,
    core::SubmitOptions options) {
    JobOptions sched_options;
    sched_options.label = options.label.empty() ? workload.name : options.label;
    sched_options.priority = to_sched_priority(options.priority);
    sched_options.deadline_s = options.deadline_s;

    auto promise = std::make_shared<std::promise<core::PipeTuneJobResult>>();
    auto future = promise->get_future();

    // The job body runs on a scheduler worker slot. Copies of the workload
    // and job config keep it self-contained; shared state is reached only
    // through the locked views. Exceptions PROPAGATE to the scheduler: a
    // transient failure under the service retry policy is requeued (same id,
    // front of its priority class) instead of resolving the future, so the
    // promise is settled exactly once — here on success, in on_failed on
    // terminal failure, or in on_discard when the job never runs.
    ClusterScheduler::JobFn run = [this, workload, job_config,
                                   promise](JobContext& ctx) mutable {
        core::PipeTuneConfig pipetune = options_.pipetune;
        pipetune.metrics = &state_.metrics();
        pipetune.obs = options_.obs;
        pipetune.journal = options_.journal;
        pipetune.journal_job_id = ctx.id();
        hpt::HptJobConfig job = job_config;
        job.obs = options_.obs;
        auto result =
            core::run_pipetune(backend_, workload, job, pipetune, &state_.ground_truth());
        jobs_served_.fetch_add(1, std::memory_order_relaxed);
        if (options_.journal != nullptr) {
            util::Json payload = util::Json::object();
            payload["job_id"] = ctx.id();
            (void)options_.journal->append(ft::record_type::kJobCompleted,
                                           std::move(payload));
        }
        if (obs_jobs_served_ != nullptr) obs_jobs_served_->inc();
        if (options_.persist_after_each_job && !options_.state_dir.empty()) persist();
        PT_LOG_INFO("sched")
                .field("workload", workload.name)
                .field("hits", result.ground_truth_hits)
                .field("probes", result.probes_started)
                .field("store", result.ground_truth_size)
            << "job " << ctx.id() << " done";
        promise->set_value(std::move(result));
    };
    // Discarded without running → the future reports why instead of dangling
    // as a broken promise.
    ClusterScheduler::DiscardFn on_discard = [promise](const JobInfo& info) {
        promise->set_exception(std::make_exception_ptr(std::runtime_error(
            "pipetune job " + std::to_string(info.id) + " " + to_string(info.state) +
            " before running")));
    };
    // Terminal failure (retries exhausted or non-transient): journal it —
    // except for a SimulatedCrash, which models process death (a dead
    // process writes nothing, so recovery re-runs the job) — and forward
    // the original exception to the future.
    ClusterScheduler::FailFn on_failed = [this, promise](const JobInfo& info,
                                                         std::exception_ptr failure) {
        if (options_.journal != nullptr) {
            bool journal_failure = true;
            try {
                std::rethrow_exception(failure);
            } catch (const ft::SimulatedCrash&) {
                journal_failure = false;
            } catch (...) {
            }
            if (journal_failure) {
                util::Json payload = util::Json::object();
                payload["job_id"] = info.id;
                payload["error"] = info.error;
                (void)options_.journal->append(ft::record_type::kJobFailed,
                                               std::move(payload));
            }
        }
        promise->set_exception(failure);
    };

    const std::string job_label = sched_options.label;
    auto ticket = scheduler_.submit(std::move(run), std::move(sched_options),
                                    std::move(on_discard), std::move(on_failed));
    if (!ticket) return std::nullopt;
    if (options_.journal != nullptr)
        (void)options_.journal->append(
            ft::record_type::kJobSubmitted,
            core::journal_submit_payload(ticket->id, job_label, workload, job_config,
                                         options));
    return Submission{ticket->id, std::move(future)};
}

std::unique_ptr<core::TuningService> make_tuning_service(workload::Backend& backend,
                                                         core::ServiceOptions options) {
    if (options.concurrency <= 1)
        return std::make_unique<core::PipeTuneService>(backend, std::move(options));
    return std::make_unique<ConcurrentPipeTuneService>(backend, std::move(options));
}

}  // namespace pipetune::sched
