#include "pipetune/sched/concurrent_service.hpp"

#include <filesystem>

#include "pipetune/util/logging.hpp"

namespace pipetune::sched {

ConcurrentPipeTuneService::ConcurrentPipeTuneService(workload::Backend& backend,
                                                     ConcurrentServiceConfig config)
    : config_(std::move(config)),
      backend_(backend),
      state_(config_.pipetune.ground_truth),
      scheduler_({.worker_slots = config_.worker_slots,
                  .queue_capacity = config_.queue_capacity,
                  .overflow = config_.overflow}) {
    if (!config_.state_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config_.state_dir, ec);
        if (ec)
            throw std::runtime_error("ConcurrentPipeTuneService: cannot create state dir '" +
                                     config_.state_dir + "': " + ec.message());
        state_.load(config_.state_dir, config_.pipetune.ground_truth);
        if (state_.ground_truth_size() > 0)
            PT_LOG_INFO("sched") << "loaded shared ground truth with "
                                 << state_.ground_truth_size() << " profiles from "
                                 << ground_truth_path();
    }
}

ConcurrentPipeTuneService::~ConcurrentPipeTuneService() {
    scheduler_.shutdown(true);
    if (!config_.state_dir.empty()) {
        try {
            persist();
        } catch (const std::exception& e) {
            PT_LOG_ERROR("sched") << "final persist failed: " << e.what();
        }
    }
}

std::string ConcurrentPipeTuneService::ground_truth_path() const {
    return SharedClusterState::ground_truth_path(config_.state_dir);
}

std::string ConcurrentPipeTuneService::metrics_path() const {
    return SharedClusterState::metrics_path(config_.state_dir);
}

void ConcurrentPipeTuneService::persist() const { state_.save(config_.state_dir); }

std::optional<ConcurrentPipeTuneService::Submission> ConcurrentPipeTuneService::submit(
    const workload::Workload& workload, const hpt::HptJobConfig& job_config,
    JobOptions options) {
    if (options.label.empty()) options.label = workload.name;
    auto promise = std::make_shared<std::promise<core::PipeTuneJobResult>>();
    auto future = promise->get_future();

    // The job body runs on a scheduler worker slot. Copies of the workload
    // and job config keep it self-contained; shared state is reached only
    // through the locked views.
    ClusterScheduler::JobFn run = [this, workload, job_config,
                                   promise](JobContext& ctx) mutable {
        try {
            core::PipeTuneConfig pipetune = config_.pipetune;
            pipetune.metrics = &state_.metrics();
            auto result = core::run_pipetune(backend_, workload, job_config, pipetune,
                                             &state_.ground_truth());
            jobs_served_.fetch_add(1, std::memory_order_relaxed);
            if (config_.persist_after_each_job && !config_.state_dir.empty()) persist();
            PT_LOG_INFO("sched") << "job " << ctx.id() << " (" << workload.name
                                 << "): " << result.ground_truth_hits << " hits / "
                                 << result.probes_started << " probes, store "
                                 << result.ground_truth_size;
            promise->set_value(std::move(result));
        } catch (...) {
            promise->set_exception(std::current_exception());
        }
    };
    // Discarded without running → the future reports why instead of dangling
    // as a broken promise.
    ClusterScheduler::DiscardFn on_discard = [promise](const JobInfo& info) {
        promise->set_exception(std::make_exception_ptr(std::runtime_error(
            "pipetune job " + std::to_string(info.id) + " " + to_string(info.state) +
            " before running")));
    };

    auto ticket = scheduler_.submit(std::move(run), std::move(options), std::move(on_discard));
    if (!ticket) return std::nullopt;
    return Submission{*ticket, std::move(future)};
}

}  // namespace pipetune::sched
