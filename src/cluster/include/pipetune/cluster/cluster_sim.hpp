#pragma once
// Multi-tenant cluster simulation (paper §7.4): HPT jobs arrive randomly with
// exponentially distributed interarrival times, are scheduled FIFO onto
// cluster nodes, and the reported metric is average response time
// (completion - arrival). A fraction of jobs is "unseen" (new workload
// characteristics the ground truth has not profiled — 20% in the paper).

#include <functional>
#include <string>
#include <vector>

#include "pipetune/util/rng.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::cluster {

struct ClusterSpec {
    std::size_t nodes = 4;  ///< the paper's Type-I/II testbed has 4 machines
};

struct ArrivalConfig {
    double mean_interarrival_s = 2000.0;
    std::size_t job_count = 20;
    double unseen_fraction = 0.2;  ///< §7.4: "portion of overall unseen jobs corresponds to 20%"
    std::uint64_t seed = 1;
};

/// One job instance in the arrival stream.
struct ArrivedJob {
    std::size_t index = 0;
    workload::Workload workload;
    double arrival_s = 0.0;
    bool unseen = false;  ///< workload variant the ground truth has never profiled
};

/// Completion record for response-time accounting.
struct JobRecord {
    std::size_t index = 0;
    std::string workload_name;
    bool unseen = false;
    double arrival_s = 0.0;
    double start_s = 0.0;
    double completion_s = 0.0;

    double response_time_s() const { return completion_s - arrival_s; }
    double wait_time_s() const { return start_s - arrival_s; }
};

/// Poisson arrivals over a round-robin workload mix (§7.4: "within a given
/// workload type, the workloads are chosen following a round-robin strategy").
/// Unseen jobs get a perturbed dataset family so their hardware signature —
/// and therefore their ground-truth cluster distance — genuinely differs.
std::vector<ArrivedJob> generate_arrivals(const std::vector<workload::Workload>& mix,
                                          const ArrivalConfig& config);

/// FIFO scheduler: jobs start on the earliest-free node, in arrival order,
/// each occupying one node exclusively for its makespan.
class FifoClusterSim {
public:
    explicit FifoClusterSim(ClusterSpec spec);

    /// Run the trace. `job_makespan` is invoked once per job, in start order,
    /// and returns the job's duration in virtual seconds (this is where the
    /// actual tuning pipeline executes, so earlier jobs warm the ground truth
    /// before later ones query it).
    std::vector<JobRecord> run(const std::vector<ArrivedJob>& jobs,
                               const std::function<double(const ArrivedJob&)>& job_makespan);

    const ClusterSpec& spec() const { return spec_; }

private:
    ClusterSpec spec_;
};

/// Mean response time of a trace.
double average_response_time(const std::vector<JobRecord>& records);

/// One step of the queue-depth-over-time series: at `time_s` the number of
/// jobs that have arrived but not yet started became `depth`.
struct QueueDepthSample {
    double time_s = 0.0;
    std::size_t depth = 0;
};

/// Aggregate queueing statistics of a completed trace. Produced identically
/// from the virtual-time FifoClusterSim and from the real scheduler's
/// wall-clock trace (sched::ClusterScheduler::trace()), so the two modes
/// report comparable numbers.
struct TraceStats {
    double mean_response_s = 0.0;
    double p50_response_s = 0.0;
    double p95_response_s = 0.0;
    double mean_wait_s = 0.0;
    double makespan_s = 0.0;          ///< last completion time
    double busy_node_seconds = 0.0;   ///< sum of job service times
    /// busy_node_seconds / (nodes * makespan): how loaded the cluster ran.
    double utilization = 0.0;
    /// Stepwise #jobs waiting (arrived, not started) whenever it changes.
    std::vector<QueueDepthSample> queue_depth;
    std::size_t max_queue_depth = 0;
};
TraceStats summarize_trace(const std::vector<JobRecord>& records, std::size_t nodes);

/// Co-location slowdown used by the Fig 5 characterization: `jobs` processes
/// pinned to the same `cores` cores contend for CPU time; the slowdown is the
/// oversubscription ratio (plus a small context-switch tax once contended).
double co_location_slowdown(std::size_t jobs, std::size_t cores);

}  // namespace pipetune::cluster
