#include "pipetune/cluster/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "pipetune/util/stats.hpp"

namespace pipetune::cluster {

std::vector<ArrivedJob> generate_arrivals(const std::vector<workload::Workload>& mix,
                                          const ArrivalConfig& config) {
    if (mix.empty()) throw std::invalid_argument("generate_arrivals: empty workload mix");
    if (config.mean_interarrival_s <= 0)
        throw std::invalid_argument("generate_arrivals: interarrival must be > 0");
    if (config.unseen_fraction < 0 || config.unseen_fraction > 1)
        throw std::invalid_argument("generate_arrivals: unseen_fraction must be in [0, 1]");

    util::Rng rng(config.seed);
    std::vector<ArrivedJob> jobs;
    double clock = 0.0;
    for (std::size_t i = 0; i < config.job_count; ++i) {
        clock += rng.exponential(1.0 / config.mean_interarrival_s);
        ArrivedJob job;
        job.index = i;
        job.workload = mix[i % mix.size()];  // round-robin within the mix
        job.arrival_s = clock;
        job.unseen = rng.bernoulli(config.unseen_fraction);
        if (job.unseen) {
            // An unseen job is the same kind of computation on data the
            // system has never profiled: perturb the dataset identity (which
            // shifts the PMU signature) and its scale slightly.
            job.workload.name += "-unseen";
            job.workload.dataset_family += "-v" + std::to_string(1 + i % 3);
            job.workload.memory_scale *= 1.0 + 0.2 * ((i % 3) + 1) / 3.0;
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

FifoClusterSim::FifoClusterSim(ClusterSpec spec) : spec_(spec) {
    if (spec.nodes == 0) throw std::invalid_argument("FifoClusterSim: need at least one node");
}

std::vector<JobRecord> FifoClusterSim::run(
    const std::vector<ArrivedJob>& jobs,
    const std::function<double(const ArrivedJob&)>& job_makespan) {
    std::vector<double> node_free(spec_.nodes, 0.0);
    std::vector<JobRecord> records;
    records.reserve(jobs.size());
    // FIFO: jobs are served strictly in arrival order (the paper schedules
    // HPT jobs "in a FIFO manner", §5.1).
    for (const auto& job : jobs) {
        auto node = std::min_element(node_free.begin(), node_free.end());
        JobRecord record;
        record.index = job.index;
        record.workload_name = job.workload.name;
        record.unseen = job.unseen;
        record.arrival_s = job.arrival_s;
        record.start_s = std::max(job.arrival_s, *node);
        record.completion_s = record.start_s + job_makespan(job);
        *node = record.completion_s;
        records.push_back(std::move(record));
    }
    return records;
}

double average_response_time(const std::vector<JobRecord>& records) {
    if (records.empty()) throw std::invalid_argument("average_response_time: empty trace");
    double acc = 0.0;
    for (const auto& record : records) acc += record.response_time_s();
    return acc / static_cast<double>(records.size());
}

TraceStats summarize_trace(const std::vector<JobRecord>& records, std::size_t nodes) {
    if (records.empty()) throw std::invalid_argument("summarize_trace: empty trace");
    if (nodes == 0) throw std::invalid_argument("summarize_trace: nodes must be > 0");
    TraceStats stats;
    std::vector<double> responses;
    responses.reserve(records.size());
    for (const auto& record : records) {
        responses.push_back(record.response_time_s());
        stats.mean_wait_s += record.wait_time_s();
        stats.busy_node_seconds += record.completion_s - record.start_s;
        stats.makespan_s = std::max(stats.makespan_s, record.completion_s);
    }
    stats.mean_wait_s /= static_cast<double>(records.size());
    stats.mean_response_s = util::mean(responses);
    stats.p50_response_s = util::percentile(responses, 50.0);
    stats.p95_response_s = util::percentile(responses, 95.0);
    if (stats.makespan_s > 0)
        stats.utilization =
            stats.busy_node_seconds / (static_cast<double>(nodes) * stats.makespan_s);

    // Queue depth over time: +1 at each arrival, -1 at each start. Starts
    // sort before arrivals at equal timestamps so a job dispatched the moment
    // it arrives never registers as queued.
    std::vector<std::pair<double, int>> events;
    events.reserve(records.size() * 2);
    for (const auto& record : records) {
        events.emplace_back(record.arrival_s, +1);
        events.emplace_back(record.start_s, -1);
    }
    std::sort(events.begin(), events.end());
    long depth = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        depth += events[i].second;
        const bool last_at_time = i + 1 == events.size() || events[i + 1].first > events[i].first;
        if (!last_at_time) continue;
        const auto d = static_cast<std::size_t>(std::max(0L, depth));
        if (!stats.queue_depth.empty() && stats.queue_depth.back().depth == d) continue;
        stats.queue_depth.push_back({events[i].first, d});
        stats.max_queue_depth = std::max(stats.max_queue_depth, d);
    }
    return stats;
}

double co_location_slowdown(std::size_t jobs, std::size_t cores) {
    if (jobs == 0 || cores == 0)
        throw std::invalid_argument("co_location_slowdown: jobs and cores must be > 0");
    if (jobs == 1) return 1.0;
    // `jobs` single-node processes pinned to `cores` cores: each receives a
    // 1/jobs CPU share once the cores are oversubscribed, plus a 5%
    // context-switch tax per extra co-runner.
    const double oversubscription = std::max(1.0, static_cast<double>(jobs));
    const double tax = 1.0 + 0.05 * static_cast<double>(jobs - 1);
    (void)cores;  // share is per-core-set; the set size cancels out for identical jobs
    return oversubscription * tax;
}

}  // namespace pipetune::cluster
