#include "pipetune/hpt/baselines.hpp"

namespace pipetune::hpt {

using workload::HyperParams;
using workload::SystemParams;
using workload::Workload;

BaselineResult run_hyperband_job(workload::Backend& backend, const Workload& workload,
                                 const ParamSpace& space, Objective objective,
                                 const HptJobConfig& config, SystemTuningPolicy* policy,
                                 double cohort_scale) {
    RunnerConfig runner_config;
    runner_config.parallel_slots = config.parallel_slots;
    runner_config.objective = objective;
    runner_config.default_system = config.default_system;
    runner_config.obs = config.obs;

    TuningJobRunner runner(backend, workload, runner_config, policy);
    HyperBand searcher(space, config.hyperband_resource, config.hyperband_eta, config.seed,
                       cohort_scale);

    BaselineResult result;
    result.tuning = runner.run(searcher);
    result.best_hyper = result.tuning.best_hyperparams;
    result.best_hyper.epochs = config.final_epochs;
    // V2's winning point carries its searched system parameters; V1's (and
    // PipeTune's) points do not, so the default applies — PipeTune's policy
    // then overrides per epoch.
    result.final_system = to_systemparams(result.tuning.best_point, config.default_system);
    const auto final_run = runner.run_final_training(result.best_hyper, result.final_system);
    result.training_time_s = final_run.duration_s;
    result.training_energy_j = final_run.energy_j;
    result.final_accuracy = final_run.accuracy;
    return result;
}

BaselineResult run_tune_v1(workload::Backend& backend, const Workload& workload,
                           const HptJobConfig& config) {
    return run_hyperband_job(backend, workload, hyperband_hyperparameter_space(),
                             Objective::kAccuracy, config);
}

BaselineResult run_tune_v2(workload::Backend& backend, const Workload& workload,
                           const HptJobConfig& config) {
    return run_hyperband_job(backend, workload, combined_space(), Objective::kAccuracyPerTime,
                             config, nullptr, config.v2_cohort_scale);
}

BaselineResult run_arbitrary(workload::Backend& backend, const Workload& workload,
                             const HptJobConfig& config) {
    // A plausible hand-pick: mid-size batch, no dropout, slightly hot
    // learning rate — the kind of guess §4 shows "lead[s] to both worse
    // accuracy and training time".
    HyperParams hyper;
    hyper.batch_size = 64;
    hyper.dropout = 0.0;
    hyper.embedding_dim = 100;
    hyper.learning_rate = 0.08;
    hyper.epochs = config.final_epochs;

    RunnerConfig runner_config;
    runner_config.default_system = config.default_system;
    runner_config.obs = config.obs;
    TuningJobRunner runner(backend, workload, runner_config);

    BaselineResult result;
    result.best_hyper = hyper;
    result.final_system = config.default_system;
    const auto final_run = runner.run_final_training(hyper, config.default_system);
    result.training_time_s = final_run.duration_s;
    result.training_energy_j = final_run.energy_j;
    result.final_accuracy = final_run.accuracy;
    result.tuning.best_accuracy = final_run.accuracy;
    result.tuning.best_hyperparams = hyper;
    return result;
}

}  // namespace pipetune::hpt
