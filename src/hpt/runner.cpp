#include "pipetune/hpt/runner.hpp"

#include <algorithm>
#include <stdexcept>

namespace pipetune::hpt {

using workload::EpochResult;
using workload::HyperParams;
using workload::SystemParams;

double objective_score(Objective objective, double accuracy, double duration_s) {
    switch (objective) {
        case Objective::kAccuracy:
            return accuracy;
        case Objective::kAccuracyPerTime:
            // Accuracy points per kilosecond of training; the scaling keeps
            // the score in a readable range without affecting the argmax.
            return accuracy / std::max(duration_s, 1e-6) * 1000.0;
    }
    throw std::logic_error("objective_score: bad objective");
}

TuningJobRunner::TuningJobRunner(workload::Backend& backend, const workload::Workload& workload,
                                 RunnerConfig config, SystemTuningPolicy* policy)
    : backend_(backend),
      workload_(workload),
      config_(config),
      policy_(policy != nullptr ? policy : &fallback_policy_) {
    if (config.parallel_slots == 0)
        throw std::invalid_argument("TuningJobRunner: parallel_slots must be > 0");
    if (config_.obs != nullptr) {
        auto& registry = config_.obs->metrics();
        trials_started_ = &registry.counter("pipetune_hpt_trials_started_total", {},
                                            "Distinct trial configurations started");
        trials_completed_ = &registry.counter("pipetune_hpt_trials_completed_total", {},
                                              "Trials retired (policy notified)");
        epochs_total_ = &registry.counter("pipetune_hpt_epochs_total", {},
                                          "Training epochs executed (incl. final training)");
    }
}

TrialOutcome TuningJobRunner::execute(const TrialRequest& request) {
    auto [it, inserted] = live_.try_emplace(request.config_id);
    LiveTrial& trial = it->second;
    const HyperParams hyper = to_hyperparams(request.point);
    // Tune V2 folds system parameters into the search point; V1/PipeTune
    // points carry none and fall back to the cluster default.
    const SystemParams trial_default = to_systemparams(request.point, config_.default_system);
    if (inserted) {
        trial.session = backend_.start_trial(workload_, hyper);
        trial.last_system = trial_default;
        if (trials_started_ != nullptr) trials_started_->inc();
    }

    obs::Tracer::Span trial_span;
    if (config_.obs != nullptr) {
        trial_span = config_.obs->tracer().span("trial", "hpt");
        trial_span.arg("trial", std::to_string(request.config_id));
        trial_span.arg("target_epochs", std::to_string(request.target_epochs));
    }

    TrialOutcome outcome;
    outcome.config_id = request.config_id;
    outcome.point = request.point;
    while (trial.session->epochs_done() < request.target_epochs) {
        const std::size_t next_epoch = trial.session->epochs_done() + 1;
        // The epoch span opens before choose() so the policy's cluster/probe
        // phase spans nest under it.
        obs::Tracer::Span epoch_span;
        if (config_.obs != nullptr) {
            epoch_span = config_.obs->tracer().span("epoch", "hpt");
            epoch_span.arg("epoch", std::to_string(next_epoch));
        }
        const SystemParams system = policy_->choose(request.config_id, workload_, hyper,
                                                    next_epoch, trial.history, trial_default);
        if (epochs_total_ != nullptr) epochs_total_->inc();
        EpochResult result = trial.session->run_epoch(system);
        result.system = system;
        const double overhead =
            policy_->epoch_overhead_s(request.config_id, result.epoch, result.duration_s);
        result.duration_s += overhead;
        trial.total_duration_s += result.duration_s;
        outcome.duration_s += result.duration_s;
        outcome.energy_j += result.energy_j;
        trial.history.push_back(result);
        trial.last_system = system;
    }
    outcome.epochs_done = trial.session->epochs_done();
    outcome.total_duration_s = trial.total_duration_s;
    if (!trial.history.empty()) outcome.last_accuracy = trial.history.back().accuracy;
    for (const auto& epoch : trial.history)
        outcome.best_accuracy = std::max(outcome.best_accuracy, epoch.accuracy);
    outcome.score =
        objective_score(config_.objective, outcome.best_accuracy, outcome.total_duration_s);
    return outcome;
}

TuningResult TuningJobRunner::run(Searcher& searcher) {
    TuningResult result;
    std::vector<double> slot_time(config_.parallel_slots, 0.0);
    double clock = 0.0;

    while (true) {
        const std::vector<TrialRequest> wave = searcher.next_wave();
        if (wave.empty()) break;
        for (const auto& request : wave) {
            // Greedy list scheduling: next request goes to the earliest-free
            // slot; its trial's epochs run there sequentially.
            auto slot = std::min_element(slot_time.begin(), slot_time.end());
            const bool is_new = live_.find(request.config_id) == live_.end();
            TrialOutcome outcome = execute(request);
            *slot += outcome.duration_s;
            result.tuning_energy_j += outcome.energy_j;
            result.epochs += outcome.epochs_done;  // adjusted below to count increments
            if (is_new) ++result.trials;

            ConvergencePoint point;
            point.time_s = *slot;
            point.accuracy = outcome.last_accuracy;
            point.best_accuracy = std::max(
                outcome.best_accuracy,
                result.convergence.empty() ? 0.0 : result.convergence.back().best_accuracy);
            point.trial_duration_s = outcome.total_duration_s;
            result.convergence.push_back(point);

            if (outcome.score > result.best_score || result.convergence.size() == 1) {
                result.best_score = outcome.score;
                result.best_accuracy = outcome.best_accuracy;
                result.best_point = outcome.point;
                result.best_hyperparams = to_hyperparams(outcome.point);
                result.best_system = live_.at(request.config_id).last_system;
            }
            searcher.report(outcome);
        }
        // Wave barrier: the searcher only plans the next wave once every
        // request of this one finished (successive-halving semantics).
        clock = *std::max_element(slot_time.begin(), slot_time.end());
        std::fill(slot_time.begin(), slot_time.end(), clock);
    }

    // `epochs` accumulated cumulative counts for continued trials; recompute
    // exactly from the live sessions.
    result.epochs = 0;
    for (const auto& [id, trial] : live_) result.epochs += trial.history.size();
    result.tuning_duration_s = clock;

    // Notify the policy (ground-truth persistence happens here).
    for (const auto& [id, trial] : live_) {
        const HyperParams hyper = trial.session->hyperparams();
        policy_->trial_finished(id, workload_, hyper, trial.history);
        if (trials_completed_ != nullptr) trials_completed_->inc();
    }
    live_.clear();
    return result;
}

TuningJobRunner::FinalTraining TuningJobRunner::run_final_training(
    const HyperParams& hyper, const SystemParams& system_default) {
    auto session = backend_.start_trial(workload_, hyper);
    std::vector<EpochResult> history;
    FinalTraining out;
    // Final-training runs use a reserved trial id outside the searcher range.
    const std::uint64_t kFinalTrainingId = ~0ULL - (final_training_counter_++);
    obs::Tracer::Span train_span;
    if (config_.obs != nullptr) {
        train_span = config_.obs->tracer().span("train", "hpt");
        train_span.arg("epochs", std::to_string(hyper.epochs));
    }
    for (std::size_t epoch = 1; epoch <= hyper.epochs; ++epoch) {
        obs::Tracer::Span epoch_span;
        if (config_.obs != nullptr) {
            epoch_span = config_.obs->tracer().span("epoch", "hpt");
            epoch_span.arg("epoch", std::to_string(epoch));
        }
        const SystemParams system =
            policy_->choose(kFinalTrainingId, workload_, hyper, epoch, history, system_default);
        if (epochs_total_ != nullptr) epochs_total_->inc();
        EpochResult result = session->run_epoch(system);
        result.system = system;
        result.duration_s +=
            policy_->epoch_overhead_s(kFinalTrainingId, result.epoch, result.duration_s);
        out.duration_s += result.duration_s;
        out.energy_j += result.energy_j;
        out.accuracy = result.accuracy;
        history.push_back(result);
    }
    policy_->trial_finished(kFinalTrainingId, workload_, hyper, history);
    return out;
}

}  // namespace pipetune::hpt
