#include "pipetune/hpt/median_stopping.hpp"

#include <algorithm>
#include <stdexcept>

#include "pipetune/util/stats.hpp"

namespace pipetune::hpt {

MedianStoppingSearch::MedianStoppingSearch(ParamSpace space, std::size_t num_trials,
                                           std::size_t total_epochs, std::size_t interval_epochs,
                                           std::uint64_t seed, std::size_t grace_intervals)
    : space_(std::move(space)),
      num_trials_(num_trials),
      total_epochs_(total_epochs),
      interval_(interval_epochs),
      rng_(seed),
      grace_intervals_(grace_intervals) {
    if (num_trials < 2 || total_epochs == 0 || interval_epochs == 0)
        throw std::invalid_argument("MedianStoppingSearch: invalid sizes");
}

std::vector<TrialRequest> MedianStoppingSearch::next_wave() {
    if (!started_) {
        started_ = true;
        for (std::size_t i = 0; i < num_trials_; ++i)
            members_.push_back({i + 1, space_.sample(rng_), 0, 0.0, false});
    } else {
        ++intervals_completed_;
        if (intervals_completed_ >= grace_intervals_) {
            // Prune: any running trial strictly below the median best score
            // of all trials (running or stopped) is cut.
            std::vector<double> scores;
            for (const auto& member : members_) scores.push_back(member.best_score);
            const double median = util::median(scores);
            for (auto& member : members_) {
                if (member.stopped || member.epochs_done >= total_epochs_) continue;
                if (member.best_score < median) {
                    member.stopped = true;
                    ++stopped_;
                }
            }
        }
    }

    std::vector<TrialRequest> wave;
    for (const auto& member : members_) {
        if (member.stopped || member.epochs_done >= total_epochs_) continue;
        TrialRequest request;
        request.config_id = member.config_id;
        request.point = member.point;
        request.target_epochs = std::min(total_epochs_, member.epochs_done + interval_);
        wave.push_back(std::move(request));
    }
    return wave;
}

void MedianStoppingSearch::report(const TrialOutcome& outcome) {
    for (auto& member : members_)
        if (member.config_id == outcome.config_id) {
            member.epochs_done = outcome.epochs_done;
            member.best_score = std::max(member.best_score, outcome.score);
        }
}

}  // namespace pipetune::hpt
