#include "pipetune/hpt/space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pipetune::hpt {

double ParamDomain::sample(util::Rng& rng) const {
    switch (kind) {
        case Kind::kDiscrete: return values[rng.index(values.size())];
        case Kind::kContinuous: return rng.uniform(lo, hi);
        case Kind::kLogContinuous: return rng.log_uniform(lo, hi);
    }
    throw std::logic_error("ParamDomain::sample: bad kind");
}

std::vector<double> ParamDomain::grid_values(std::size_t n) const {
    if (kind == Kind::kDiscrete) return values;
    if (n == 0) throw std::invalid_argument("ParamDomain::grid_values: n must be > 0");
    std::vector<double> out;
    out.reserve(n);
    if (n == 1) {
        out.push_back(kind == Kind::kLogContinuous ? std::sqrt(lo * hi) : 0.5 * (lo + hi));
        return out;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(n - 1);
        if (kind == Kind::kLogContinuous)
            out.push_back(std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo))));
        else
            out.push_back(lo + t * (hi - lo));
    }
    return out;
}

double ParamDomain::clamp(double value) const {
    if (kind == Kind::kDiscrete) {
        double best = values.front();
        for (double v : values)
            if (std::fabs(v - value) < std::fabs(best - value)) best = v;
        return best;
    }
    return std::clamp(value, lo, hi);
}

ParamSpace& ParamSpace::add_discrete(std::string name, std::vector<double> values) {
    if (values.empty()) throw std::invalid_argument("ParamSpace: empty discrete domain");
    if (has(name)) throw std::invalid_argument("ParamSpace: duplicate dimension '" + name + "'");
    ParamDomain domain;
    domain.name = std::move(name);
    domain.kind = ParamDomain::Kind::kDiscrete;
    domain.values = std::move(values);
    domains_.push_back(std::move(domain));
    return *this;
}

ParamSpace& ParamSpace::add_continuous(std::string name, double lo, double hi, bool log_scale) {
    if (hi < lo) throw std::invalid_argument("ParamSpace: hi < lo");
    if (log_scale && lo <= 0) throw std::invalid_argument("ParamSpace: log domain needs lo > 0");
    if (has(name)) throw std::invalid_argument("ParamSpace: duplicate dimension '" + name + "'");
    ParamDomain domain;
    domain.name = std::move(name);
    domain.kind = log_scale ? ParamDomain::Kind::kLogContinuous : ParamDomain::Kind::kContinuous;
    domain.lo = lo;
    domain.hi = hi;
    domains_.push_back(std::move(domain));
    return *this;
}

ParamPoint ParamSpace::sample(util::Rng& rng) const {
    ParamPoint point;
    for (const auto& domain : domains_) point[domain.name] = domain.sample(rng);
    return point;
}

std::vector<ParamPoint> ParamSpace::grid(std::size_t per_dim) const {
    std::vector<ParamPoint> points{ParamPoint{}};
    for (const auto& domain : domains_) {
        const auto values = domain.grid_values(per_dim);
        std::vector<ParamPoint> expanded;
        expanded.reserve(points.size() * values.size());
        for (const auto& base : points)
            for (double v : values) {
                ParamPoint point = base;
                point[domain.name] = v;
                expanded.push_back(std::move(point));
            }
        points = std::move(expanded);
    }
    return points;
}

const ParamDomain& ParamSpace::domain(const std::string& name) const {
    for (const auto& d : domains_)
        if (d.name == name) return d;
    throw std::invalid_argument("ParamSpace::domain: unknown dimension '" + name + "'");
}

bool ParamSpace::has(const std::string& name) const {
    for (const auto& d : domains_)
        if (d.name == name) return true;
    return false;
}

ParamSpace ParamSpace::prefix(std::size_t n) const {
    if (n > domains_.size()) throw std::invalid_argument("ParamSpace::prefix: n too large");
    ParamSpace out;
    out.domains_.assign(domains_.begin(), domains_.begin() + static_cast<std::ptrdiff_t>(n));
    return out;
}

ParamSpace hyperparameter_space() {
    ParamSpace space;
    space.add_discrete("batch_size", {32, 64, 128, 256, 512, 1024});
    space.add_continuous("dropout", 0.0, 0.5);
    space.add_continuous("embedding_dim", 50, 300);
    space.add_continuous("learning_rate", 0.001, 0.1, /*log_scale=*/true);
    space.add_discrete("epochs", {10, 20, 50, 100});
    return space;
}

ParamSpace hyperband_hyperparameter_space() {
    ParamSpace space;
    space.add_discrete("batch_size", {32, 64, 128, 256, 512, 1024});
    space.add_continuous("dropout", 0.0, 0.5);
    space.add_continuous("embedding_dim", 50, 300);
    space.add_continuous("learning_rate", 0.001, 0.1, /*log_scale=*/true);
    return space;
}

ParamSpace system_parameter_space() {
    ParamSpace space;
    space.add_discrete("cores", {4, 8, 16});
    space.add_discrete("memory_gb", {4, 8, 16, 32});
    return space;
}

ParamSpace combined_space() {
    ParamSpace space = hyperband_hyperparameter_space();
    space.add_discrete("cores", {4, 8, 16});
    space.add_discrete("memory_gb", {4, 8, 16, 32});
    return space;
}

namespace {
double get_or(const ParamPoint& point, const std::string& name, double fallback) {
    auto it = point.find(name);
    return it == point.end() ? fallback : it->second;
}
}  // namespace

workload::HyperParams to_hyperparams(const ParamPoint& point, workload::HyperParams defaults) {
    workload::HyperParams hp = defaults;
    hp.batch_size = static_cast<std::size_t>(
        std::llround(get_or(point, "batch_size", static_cast<double>(defaults.batch_size))));
    hp.dropout = get_or(point, "dropout", defaults.dropout);
    hp.embedding_dim = static_cast<std::size_t>(
        std::llround(get_or(point, "embedding_dim", static_cast<double>(defaults.embedding_dim))));
    hp.learning_rate = get_or(point, "learning_rate", defaults.learning_rate);
    hp.epochs = static_cast<std::size_t>(
        std::llround(get_or(point, "epochs", static_cast<double>(defaults.epochs))));
    return hp;
}

workload::SystemParams to_systemparams(const ParamPoint& point, workload::SystemParams defaults) {
    workload::SystemParams sp = defaults;
    sp.cores = static_cast<std::size_t>(
        std::llround(get_or(point, "cores", static_cast<double>(defaults.cores))));
    sp.memory_gb = static_cast<std::size_t>(
        std::llround(get_or(point, "memory_gb", static_cast<double>(defaults.memory_gb))));
    return sp;
}

std::string point_to_string(const ParamPoint& point) {
    std::ostringstream out;
    out << "{";
    bool first = true;
    for (const auto& [name, value] : point) {
        if (!first) out << ", ";
        first = false;
        out << name << "=" << value;
    }
    out << "}";
    return out.str();
}

}  // namespace pipetune::hpt
