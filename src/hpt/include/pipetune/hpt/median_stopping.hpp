#pragma once
// Median stopping rule — the early-stop technique behind HyperDrive's POP
// scheduler, which the paper lists among the industry tuning systems
// PipeTune composes with (§2: "combines probabilistic model-based
// classification with dynamic scheduling and early stop techniques").
//
// Trials train in fixed-size intervals. After each interval, a trial whose
// best accuracy falls below the median best-accuracy of all trials at the
// same progress is stopped; survivors continue to the full budget. Compared
// to HyperBand this makes no bracket commitments — any number of trials can
// survive — which suits objective landscapes where early performance is
// predictive.

#include "pipetune/hpt/searcher.hpp"

namespace pipetune::hpt {

class MedianStoppingSearch : public Searcher {
public:
    /// `num_trials` random configurations, each trained up to `total_epochs`
    /// in chunks of `interval_epochs`, pruned against the median after every
    /// chunk. `grace_intervals` chunks run before pruning starts.
    MedianStoppingSearch(ParamSpace space, std::size_t num_trials, std::size_t total_epochs,
                         std::size_t interval_epochs, std::uint64_t seed,
                         std::size_t grace_intervals = 1);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "median-stopping"; }

    /// Trials pruned so far (for tests/benches).
    std::size_t stopped_trials() const { return stopped_; }

private:
    struct Member {
        std::uint64_t config_id = 0;
        ParamPoint point;
        std::size_t epochs_done = 0;
        double best_score = 0.0;
        bool stopped = false;
    };

    ParamSpace space_;
    std::size_t num_trials_;
    std::size_t total_epochs_;
    std::size_t interval_;
    util::Rng rng_;
    std::size_t grace_intervals_;
    std::vector<Member> members_;
    bool started_ = false;
    std::size_t intervals_completed_ = 0;
    std::size_t stopped_ = 0;
};

}  // namespace pipetune::hpt
