#pragma once
// Search-algorithm interface. PipeTune is agnostic to the trial scheduler
// (paper Fig 7 lists grid search, genetic optimization, random search,
// bayesian gradient optimization and hyperband); each algorithm implements
// this wave-synchronous protocol:
//
//   while (auto wave = searcher.next_wave(); !wave.empty())
//       run each request (resuming earlier sessions), report outcomes
//
// Requests address trials by config_id so budget-based algorithms (HyperBand,
// PBT) can *continue* a previously started trial instead of restarting it.

#include <cstdint>
#include <string>
#include <vector>

#include "pipetune/hpt/space.hpp"

namespace pipetune::hpt {

struct TrialRequest {
    std::uint64_t config_id = 0;  ///< stable identity across continuations
    ParamPoint point;
    std::size_t target_epochs = 0;  ///< run until the trial has done this many
};

struct TrialOutcome {
    std::uint64_t config_id = 0;
    ParamPoint point;
    std::size_t epochs_done = 0;
    double last_accuracy = 0.0;    ///< accuracy after the final epoch run
    double best_accuracy = 0.0;    ///< best accuracy seen over the whole trial
    double duration_s = 0.0;       ///< virtual seconds spent in this continuation
    double total_duration_s = 0.0; ///< whole-trial virtual seconds so far
    double energy_j = 0.0;         ///< energy of this continuation
    /// Scalar the searcher maximizes; computed by the runner from its
    /// objective (accuracy for V1/PipeTune, accuracy/duration for V2).
    double score = 0.0;
};

class Searcher {
public:
    virtual ~Searcher() = default;

    /// Next synchronized wave of trial (continuation) requests; an empty wave
    /// means the search is finished.
    virtual std::vector<TrialRequest> next_wave() = 0;

    /// Report one completed request of the current wave. The runner reports
    /// every request of a wave before asking for the next.
    virtual void report(const TrialOutcome& outcome) = 0;

    virtual std::string name() const = 0;
};

}  // namespace pipetune::hpt
