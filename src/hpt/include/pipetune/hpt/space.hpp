#pragma once
// Parameter search spaces. A ParamPoint is a named assignment of doubles,
// convertible to the strongly typed HyperParams / SystemParams; keeping the
// search generic lets Tune V2 fold system parameters into the same space the
// hyperparameters live in (paper §4) and lets Fig 1 sweep "number of tuned
// parameters" from 1 to 6.

#include <map>
#include <string>
#include <vector>

#include "pipetune/util/rng.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::hpt {

using ParamPoint = std::map<std::string, double>;

struct ParamDomain {
    enum class Kind { kDiscrete, kContinuous, kLogContinuous };
    std::string name;
    Kind kind = Kind::kDiscrete;
    std::vector<double> values;  ///< discrete choices (Kind::kDiscrete)
    double lo = 0.0, hi = 0.0;   ///< bounds (continuous kinds)

    double sample(util::Rng& rng) const;
    /// Representative grid values (discrete: all; continuous: n spaced points).
    std::vector<double> grid_values(std::size_t n) const;
    /// Clamp/snap an arbitrary value into the domain.
    double clamp(double value) const;
};

class ParamSpace {
public:
    ParamSpace& add_discrete(std::string name, std::vector<double> values);
    ParamSpace& add_continuous(std::string name, double lo, double hi, bool log_scale = false);

    ParamPoint sample(util::Rng& rng) const;
    /// Full cartesian grid; continuous dimensions contribute `per_dim` points.
    std::vector<ParamPoint> grid(std::size_t per_dim) const;

    const std::vector<ParamDomain>& domains() const { return domains_; }
    const ParamDomain& domain(const std::string& name) const;
    bool has(const std::string& name) const;
    std::size_t size() const { return domains_.size(); }

    /// Subspace of the first `n` dimensions (Fig 1's parameter-count sweep).
    ParamSpace prefix(std::size_t n) const;

private:
    std::vector<ParamDomain> domains_;
};

/// The paper's five hyperparameters with their §7.1.3 ranges. Batch size and
/// epochs are discrete; dropout, embedding and learning rate continuous
/// (learning rate log-scaled).
ParamSpace hyperparameter_space();
/// Hyperparameters minus epochs — HyperBand treats epochs as the resource.
ParamSpace hyperband_hyperparameter_space();
/// System parameters as search dimensions (what Tune V2 appends).
ParamSpace system_parameter_space();
/// hyperparameters + system parameters (Tune V2's full space).
ParamSpace combined_space();

/// Conversions (missing names keep the default's value).
workload::HyperParams to_hyperparams(const ParamPoint& point,
                                     workload::HyperParams defaults = {});
workload::SystemParams to_systemparams(const ParamPoint& point,
                                       workload::SystemParams defaults);
std::string point_to_string(const ParamPoint& point);

}  // namespace pipetune::hpt
