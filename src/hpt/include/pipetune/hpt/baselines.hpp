#pragma once
// The paper's two baselines (§7.1.5), packaged as one-call experiments:
//
//   Tune V1 — hyperparameter tuning only, HyperBand, objective = accuracy,
//             every trial on the default system configuration.
//   Tune V2 — system parameters folded into the search space, objective =
//             accuracy/duration ratio (§4).
//
// Both return the tuning result plus the cost of training the final model
// with the winning configuration (the three columns of Table 2).

#include "pipetune/hpt/runner.hpp"
#include "pipetune/hpt/searchers.hpp"

namespace pipetune::hpt {

struct HptJobConfig {
    std::size_t parallel_slots = 4;     ///< trials running concurrently
    std::size_t hyperband_resource = 27;  ///< R: max epochs per configuration
    std::size_t hyperband_eta = 3;
    std::size_t final_epochs = 27;      ///< epochs for the final training run
    /// Cohort multiplier for Tune V2: covering a search space enlarged by the
    /// system dimensions takes proportionally more samples — the mechanism
    /// behind the paper's "tuning runtime significantly increases" claim (§4).
    double v2_cohort_scale = 2.0;
    workload::SystemParams default_system = workload::default_system_params();
    std::uint64_t seed = 1;
    /// Telemetry context threaded into the runner. Not owned; may be null.
    obs::ObsContext* obs = nullptr;
};

struct BaselineResult {
    TuningResult tuning;
    workload::HyperParams best_hyper;
    workload::SystemParams final_system;  ///< system config used to train the final model
    double training_time_s = 0.0;
    double training_energy_j = 0.0;
    /// Accuracy of the fully trained final model — what Table 2's "Accuracy"
    /// column reports (a V2 winner picked for its accuracy/time ratio can
    /// score well at a short budget yet converge lower when fully trained).
    double final_accuracy = 0.0;
};

/// Run a HyperBand tuning job over `space` with the given objective and
/// optional per-epoch system policy, then train the winner.
BaselineResult run_hyperband_job(workload::Backend& backend,
                                 const workload::Workload& workload, const ParamSpace& space,
                                 Objective objective, const HptJobConfig& config,
                                 SystemTuningPolicy* policy = nullptr,
                                 double cohort_scale = 1.0);

/// Baseline I (§7.1.5).
BaselineResult run_tune_v1(workload::Backend& backend, const workload::Workload& workload,
                           const HptJobConfig& config);

/// Baseline II (§7.1.5).
BaselineResult run_tune_v2(workload::Backend& backend, const workload::Workload& workload,
                           const HptJobConfig& config);

/// "Arbitrary" row of Table 2: no tuning, a plausible-but-unlucky fixed
/// configuration trained directly.
BaselineResult run_arbitrary(workload::Backend& backend, const workload::Workload& workload,
                             const HptJobConfig& config);

}  // namespace pipetune::hpt
