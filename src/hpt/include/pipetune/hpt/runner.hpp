#pragma once
// Tuning-job runner: executes a Searcher's waves of trial requests against a
// Backend, schedules trials onto parallel cluster slots on a virtual clock,
// applies a SystemTuningPolicy per epoch, and accounts tuning duration,
// energy and convergence series (the raw material of Figs 9-14 and Table 2).

#include <cstdint>
#include <map>
#include <memory>

#include "pipetune/hpt/policy.hpp"
#include "pipetune/hpt/searcher.hpp"
#include "pipetune/obs/obs_context.hpp"

namespace pipetune::hpt {

/// What the search maximizes (paper §5.1): accuracy only, or accuracy with
/// minimum training time (Tune V2's ratio objective, §4).
enum class Objective { kAccuracy, kAccuracyPerTime };

/// Scalar score for ranking trial outcomes under an objective. Duration is
/// the trial's full (virtual) training time in seconds.
double objective_score(Objective objective, double accuracy, double duration_s);

struct RunnerConfig {
    std::size_t parallel_slots = 4;  ///< concurrently running trials (cluster nodes)
    Objective objective = Objective::kAccuracy;
    workload::SystemParams default_system = workload::default_system_params();
    /// Telemetry (trial/epoch/train spans, trial and epoch counters). Not
    /// owned; null disables instrumentation.
    obs::ObsContext* obs = nullptr;
};

/// One completed trial-continuation, stamped with its virtual completion
/// time; the sequence over a run is the convergence trajectory (Figs 9, 10).
struct ConvergencePoint {
    double time_s = 0.0;            ///< virtual wall-clock at completion
    double accuracy = 0.0;          ///< accuracy of this trial at completion
    double best_accuracy = 0.0;     ///< best accuracy of any trial so far
    double trial_duration_s = 0.0;  ///< this trial's cumulative training time
};

struct TuningResult {
    ParamPoint best_point;
    workload::HyperParams best_hyperparams;
    workload::SystemParams best_system;  ///< system config of the winning trial's last epoch
    double best_score = 0.0;
    double best_accuracy = 0.0;
    double tuning_duration_s = 0.0;  ///< virtual makespan of the whole HPT job
    double tuning_energy_j = 0.0;    ///< summed epoch energies incl. overheads
    std::size_t trials = 0;          ///< distinct configurations executed
    std::size_t epochs = 0;          ///< total epochs executed
    std::vector<ConvergencePoint> convergence;
};

class TuningJobRunner {
public:
    /// `policy` may be null (falls back to FixedSystemPolicy). The backend
    /// and policy must outlive the runner.
    TuningJobRunner(workload::Backend& backend, const workload::Workload& workload,
                    RunnerConfig config, SystemTuningPolicy* policy = nullptr);

    /// Drive the searcher to completion.
    TuningResult run(Searcher& searcher);

    /// Costs and quality of training the final model with the winning
    /// configuration (Table 2's "Accuracy" and "Training Time" columns).
    struct FinalTraining {
        double duration_s = 0.0;
        double energy_j = 0.0;
        double accuracy = 0.0;  ///< accuracy after the last epoch
    };

    /// Train a final model with the given hyperparameters under the runner's
    /// policy.
    FinalTraining run_final_training(const workload::HyperParams& hyper,
                                     const workload::SystemParams& system_default);

    const RunnerConfig& config() const { return config_; }

private:
    struct LiveTrial {
        std::unique_ptr<workload::TrialSession> session;
        std::vector<workload::EpochResult> history;
        double total_duration_s = 0.0;
        workload::SystemParams last_system;
    };

    /// Execute one request (possibly resuming); returns the outcome.
    TrialOutcome execute(const TrialRequest& request);

    workload::Backend& backend_;
    workload::Workload workload_;
    RunnerConfig config_;
    FixedSystemPolicy fallback_policy_;
    SystemTuningPolicy* policy_;
    std::map<std::uint64_t, LiveTrial> live_;
    std::uint64_t final_training_counter_ = 0;
    // Instrument references cached at construction (null when obs is null);
    // the hot epoch loop then touches only atomics.
    obs::Counter* trials_started_ = nullptr;
    obs::Counter* trials_completed_ = nullptr;
    obs::Counter* epochs_total_ = nullptr;
};

}  // namespace pipetune::hpt
