#pragma once
// The search algorithms PipeTune supports (paper Fig 7): grid, random,
// HyperBand, TPE-style bayesian, genetic, and population-based training.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "pipetune/hpt/searcher.hpp"

namespace pipetune::hpt {

/// Exhaustive cartesian grid, one wave. Continuous dims contribute
/// `points_per_dim` values. Each trial runs its own "epochs" value (or
/// `default_epochs` when the space has no epochs dimension).
class GridSearch : public Searcher {
public:
    GridSearch(ParamSpace space, std::size_t points_per_dim, std::size_t default_epochs = 10);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "grid"; }

private:
    ParamSpace space_;
    std::size_t points_per_dim_;
    std::size_t default_epochs_;
    bool emitted_ = false;
};

/// Uniform random sampling, one wave of `num_trials`.
class RandomSearch : public Searcher {
public:
    RandomSearch(ParamSpace space, std::size_t num_trials, std::size_t default_epochs,
                 std::uint64_t seed);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "random"; }

private:
    ParamSpace space_;
    std::size_t num_trials_;
    std::size_t default_epochs_;
    util::Rng rng_;
    bool emitted_ = false;
};

/// HyperBand (Li et al., JMLR'17): brackets of successive halving over the
/// epoch budget. `max_resource` R is the maximum epochs any configuration
/// receives; eta is the halving factor. The searcher continues surviving
/// configurations rather than restarting them.
class HyperBand : public Searcher {
public:
    /// `cohort_scale` multiplies each bracket's initial cohort size; > 1 gives
    /// proportionally more samples to larger search spaces (Tune V2).
    HyperBand(ParamSpace space, std::size_t max_resource, std::size_t eta, std::uint64_t seed,
              double cohort_scale = 1.0);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "hyperband"; }

    struct Rung {
        std::size_t bracket = 0;
        std::size_t round = 0;
        std::size_t configs = 0;
        std::size_t epochs = 0;
    };
    /// The bracket/rung schedule (exposed for tests).
    const std::vector<Rung>& schedule() const { return schedule_; }

private:
    void plan();

    ParamSpace space_;
    std::size_t max_resource_;
    std::size_t eta_;
    double cohort_scale_;
    util::Rng rng_;
    std::vector<Rung> schedule_;
    std::size_t next_rung_ = 0;
    std::uint64_t next_config_id_ = 1;

    struct Member {
        std::uint64_t config_id;
        ParamPoint point;
        double score = 0.0;
    };
    std::vector<Member> current_;   ///< survivors entering the pending rung
    std::vector<TrialOutcome> wave_outcomes_;
};

/// Tree-structured Parzen Estimator flavoured bayesian search: after a random
/// warm-up, candidates are scored by the ratio of "good" vs "bad" kernel
/// densities per dimension and the best of `candidates_per_step` is run.
class TpeSearch : public Searcher {
public:
    TpeSearch(ParamSpace space, std::size_t num_trials, std::size_t default_epochs,
              std::uint64_t seed, std::size_t warmup = 5, std::size_t candidates_per_step = 24,
              double good_fraction = 0.25);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "tpe"; }

private:
    double density(const std::vector<ParamPoint>& observations, const ParamPoint& candidate) const;
    ParamPoint propose();

    ParamSpace space_;
    std::size_t num_trials_;
    std::size_t default_epochs_;
    util::Rng rng_;
    std::size_t warmup_;
    std::size_t candidates_;
    double good_fraction_;
    std::size_t issued_ = 0;
    std::uint64_t next_config_id_ = 1;
    std::vector<std::pair<ParamPoint, double>> history_;  ///< (point, score)
};

/// Generational genetic search: tournament selection, uniform crossover,
/// per-dimension mutation.
class GeneticSearch : public Searcher {
public:
    GeneticSearch(ParamSpace space, std::size_t population, std::size_t generations,
                  std::size_t default_epochs, std::uint64_t seed, double mutation_rate = 0.2);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "genetic"; }

private:
    ParamPoint crossover_mutate(const ParamPoint& a, const ParamPoint& b);

    ParamSpace space_;
    std::size_t population_;
    std::size_t generations_;
    std::size_t default_epochs_;
    util::Rng rng_;
    double mutation_rate_;
    std::size_t generation_ = 0;
    std::uint64_t next_config_id_ = 1;
    std::vector<std::pair<ParamPoint, double>> scored_;  ///< last generation results
};

/// Population-based training (Jaderberg et al.): a fixed population trains in
/// intervals; after each interval the bottom quantile clones the top
/// quantile's configuration with perturbation and training continues.
class PbtSearch : public Searcher {
public:
    PbtSearch(ParamSpace space, std::size_t population, std::size_t total_epochs,
              std::size_t interval_epochs, std::uint64_t seed, double quantile = 0.25);

    std::vector<TrialRequest> next_wave() override;
    void report(const TrialOutcome& outcome) override;
    std::string name() const override { return "pbt"; }

private:
    ParamPoint perturb(const ParamPoint& point);

    ParamSpace space_;
    std::size_t population_;
    std::size_t total_epochs_;
    std::size_t interval_;
    util::Rng rng_;
    double quantile_;
    std::size_t epochs_assigned_ = 0;
    std::uint64_t next_config_id_ = 1;

    struct Member {
        std::uint64_t config_id;
        ParamPoint point;
        double score = 0.0;
        std::size_t epochs_done = 0;
    };
    std::vector<Member> population_members_;
    bool started_ = false;
};

}  // namespace pipetune::hpt
