#pragma once
// System-parameter policy: decides, before every epoch of every trial, which
// system configuration that epoch runs under.
//
// This is the seam PipeTune plugs into (paper §5.2: "within each trial, a
// collection of sub-trials is executed ... varying the system configuration
// on the epoch level"):
//   * Tune V1  -> FixedSystemPolicy(default cluster configuration)
//   * Tune V2  -> FixedSystemPolicy(the trial's searched system parameters)
//   * PipeTune -> core::PipeTunePolicy (profile, match ground truth, probe)

#include <memory>
#include <string>
#include <vector>

#include "pipetune/workload/types.hpp"

namespace pipetune::hpt {

class SystemTuningPolicy {
public:
    virtual ~SystemTuningPolicy() = default;

    /// System configuration for `epoch` (1-based, about to run) of the trial
    /// identified by `trial_id` (stable across continuations). `history`
    /// holds this trial's completed epochs; `trial_default` is the
    /// configuration the trial would use absent any policy (V1's cluster
    /// default, or V2's searched values).
    virtual workload::SystemParams choose(std::uint64_t trial_id,
                                          const workload::Workload& workload,
                                          const workload::HyperParams& hyper, std::size_t epoch,
                                          const std::vector<workload::EpochResult>& history,
                                          const workload::SystemParams& trial_default) = 0;

    /// Extra virtual seconds the policy's own work adds to this epoch
    /// (profiling overhead, §7.3). Charged by the runner so overhead claims
    /// are measurable.
    virtual double epoch_overhead_s(std::uint64_t /*trial_id*/, std::size_t /*epoch*/,
                                    double /*epoch_duration_s*/) {
        return 0.0;
    }

    /// Notification that a trial completed (PipeTune stores ground truth here).
    virtual void trial_finished(std::uint64_t /*trial_id*/,
                                const workload::Workload& /*workload*/,
                                const workload::HyperParams& /*hyper*/,
                                const std::vector<workload::EpochResult>& /*history*/) {}

    virtual std::string name() const = 0;
};

/// Run every epoch under the trial's default configuration.
class FixedSystemPolicy final : public SystemTuningPolicy {
public:
    FixedSystemPolicy() = default;

    workload::SystemParams choose(std::uint64_t, const workload::Workload&,
                                  const workload::HyperParams&, std::size_t,
                                  const std::vector<workload::EpochResult>&,
                                  const workload::SystemParams& trial_default) override {
        return trial_default;
    }
    std::string name() const override { return "fixed"; }
};

}  // namespace pipetune::hpt
