#include "pipetune/hpt/searchers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipetune::hpt {

namespace {
std::size_t epochs_of(const ParamPoint& point, std::size_t fallback) {
    auto it = point.find("epochs");
    if (it == point.end()) return fallback;
    return static_cast<std::size_t>(std::llround(it->second));
}
}  // namespace

// ---------------------------------------------------------------- GridSearch

GridSearch::GridSearch(ParamSpace space, std::size_t points_per_dim, std::size_t default_epochs)
    : space_(std::move(space)), points_per_dim_(points_per_dim), default_epochs_(default_epochs) {
    if (points_per_dim == 0 || default_epochs == 0)
        throw std::invalid_argument("GridSearch: zero-sized configuration");
}

std::vector<TrialRequest> GridSearch::next_wave() {
    if (emitted_) return {};
    emitted_ = true;
    std::vector<TrialRequest> wave;
    std::uint64_t id = 1;
    for (auto& point : space_.grid(points_per_dim_)) {
        TrialRequest request;
        request.config_id = id++;
        request.target_epochs = epochs_of(point, default_epochs_);
        request.point = std::move(point);
        wave.push_back(std::move(request));
    }
    return wave;
}

void GridSearch::report(const TrialOutcome&) {}

// -------------------------------------------------------------- RandomSearch

RandomSearch::RandomSearch(ParamSpace space, std::size_t num_trials, std::size_t default_epochs,
                           std::uint64_t seed)
    : space_(std::move(space)),
      num_trials_(num_trials),
      default_epochs_(default_epochs),
      rng_(seed) {
    if (num_trials == 0 || default_epochs == 0)
        throw std::invalid_argument("RandomSearch: zero-sized configuration");
}

std::vector<TrialRequest> RandomSearch::next_wave() {
    if (emitted_) return {};
    emitted_ = true;
    std::vector<TrialRequest> wave;
    for (std::size_t i = 0; i < num_trials_; ++i) {
        TrialRequest request;
        request.config_id = i + 1;
        request.point = space_.sample(rng_);
        request.target_epochs = epochs_of(request.point, default_epochs_);
        wave.push_back(std::move(request));
    }
    return wave;
}

void RandomSearch::report(const TrialOutcome&) {}

// ----------------------------------------------------------------- HyperBand

HyperBand::HyperBand(ParamSpace space, std::size_t max_resource, std::size_t eta,
                     std::uint64_t seed, double cohort_scale)
    : space_(std::move(space)),
      max_resource_(max_resource),
      eta_(eta),
      cohort_scale_(cohort_scale),
      rng_(seed) {
    if (max_resource == 0 || eta < 2)
        throw std::invalid_argument("HyperBand: need max_resource > 0 and eta >= 2");
    if (cohort_scale <= 0) throw std::invalid_argument("HyperBand: cohort_scale must be > 0");
    plan();
}

void HyperBand::plan() {
    const double R = static_cast<double>(max_resource_);
    const double eta = static_cast<double>(eta_);
    const auto s_max = static_cast<std::size_t>(std::floor(std::log(R) / std::log(eta)));
    const double budget = static_cast<double>(s_max + 1) * R;
    for (std::size_t s = s_max + 1; s-- > 0;) {
        const double n0 = std::ceil(cohort_scale_ * budget / R *
                                    std::pow(eta, static_cast<double>(s)) /
                                    static_cast<double>(s + 1));
        for (std::size_t i = 0; i <= s; ++i) {
            Rung rung;
            rung.bracket = s;
            rung.round = i;
            rung.configs = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::floor(n0 * std::pow(eta, -static_cast<double>(i)))));
            rung.epochs = std::max<std::size_t>(
                1, static_cast<std::size_t>(std::round(
                       R * std::pow(eta, -static_cast<double>(s) + static_cast<double>(i)))));
            schedule_.push_back(rung);
        }
    }
}

std::vector<TrialRequest> HyperBand::next_wave() {
    // Fold the completed wave's outcomes into the survivor set.
    if (!wave_outcomes_.empty()) {
        for (auto& member : current_)
            for (const auto& outcome : wave_outcomes_)
                if (outcome.config_id == member.config_id) member.score = outcome.score;
        wave_outcomes_.clear();
    }
    if (next_rung_ >= schedule_.size()) return {};
    const Rung& rung = schedule_[next_rung_++];

    if (rung.round == 0) {
        // New bracket: sample a fresh cohort.
        current_.clear();
        for (std::size_t i = 0; i < rung.configs; ++i)
            current_.push_back({next_config_id_++, space_.sample(rng_), 0.0});
    } else {
        // Successive halving: keep the top `rung.configs` by score.
        std::sort(current_.begin(), current_.end(),
                  [](const Member& a, const Member& b) { return a.score > b.score; });
        if (current_.size() > rung.configs) current_.resize(rung.configs);
    }

    std::vector<TrialRequest> wave;
    wave.reserve(current_.size());
    for (const auto& member : current_) {
        TrialRequest request;
        request.config_id = member.config_id;
        request.point = member.point;
        request.target_epochs = rung.epochs;  // cumulative resource
        wave.push_back(std::move(request));
    }
    return wave;
}

void HyperBand::report(const TrialOutcome& outcome) { wave_outcomes_.push_back(outcome); }

// ----------------------------------------------------------------- TpeSearch

TpeSearch::TpeSearch(ParamSpace space, std::size_t num_trials, std::size_t default_epochs,
                     std::uint64_t seed, std::size_t warmup, std::size_t candidates_per_step,
                     double good_fraction)
    : space_(std::move(space)),
      num_trials_(num_trials),
      default_epochs_(default_epochs),
      rng_(seed),
      warmup_(warmup),
      candidates_(candidates_per_step),
      good_fraction_(good_fraction) {
    if (num_trials == 0 || candidates_per_step == 0 || good_fraction <= 0 || good_fraction >= 1)
        throw std::invalid_argument("TpeSearch: invalid configuration");
}

double TpeSearch::density(const std::vector<ParamPoint>& observations,
                          const ParamPoint& candidate) const {
    if (observations.empty()) return 1e-12;
    double log_density = 0.0;
    for (const auto& domain : space_.domains()) {
        const double x = candidate.at(domain.name);
        if (domain.kind == ParamDomain::Kind::kDiscrete) {
            std::size_t matches = 0;
            for (const auto& obs : observations)
                if (std::fabs(obs.at(domain.name) - x) < 1e-9) ++matches;
            // Laplace-smoothed categorical likelihood.
            log_density += std::log(
                (static_cast<double>(matches) + 1.0) /
                (static_cast<double>(observations.size()) + static_cast<double>(domain.values.size())));
        } else {
            const bool log_scale = domain.kind == ParamDomain::Kind::kLogContinuous;
            const double lo = log_scale ? std::log(domain.lo) : domain.lo;
            const double hi = log_scale ? std::log(domain.hi) : domain.hi;
            const double bandwidth = std::max(1e-9, (hi - lo) / 4.0);
            const double xv = log_scale ? std::log(x) : x;
            double kde = 0.0;
            for (const auto& obs : observations) {
                const double ov = log_scale ? std::log(obs.at(domain.name)) : obs.at(domain.name);
                const double z = (xv - ov) / bandwidth;
                kde += std::exp(-0.5 * z * z);
            }
            log_density += std::log(std::max(kde / static_cast<double>(observations.size()), 1e-12));
        }
    }
    return log_density;  // comparisons only; log-space avoids underflow
}

ParamPoint TpeSearch::propose() {
    if (history_.size() < warmup_) return space_.sample(rng_);
    auto sorted = history_;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const std::size_t good_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(good_fraction_ * static_cast<double>(sorted.size()))));
    std::vector<ParamPoint> good, bad;
    for (std::size_t i = 0; i < sorted.size(); ++i)
        (i < good_count ? good : bad).push_back(sorted[i].first);
    if (bad.empty()) bad.push_back(sorted.back().first);

    ParamPoint best_candidate = space_.sample(rng_);
    double best_ratio = -1e300;
    for (std::size_t c = 0; c < candidates_; ++c) {
        // Half the candidates perturb a good observation, half explore.
        ParamPoint candidate;
        if (rng_.bernoulli(0.5)) {
            const ParamPoint& base = good[rng_.index(good.size())];
            candidate = base;
            for (const auto& domain : space_.domains()) {
                if (domain.kind == ParamDomain::Kind::kDiscrete) {
                    if (rng_.bernoulli(0.3)) candidate[domain.name] = domain.sample(rng_);
                } else {
                    const double span = (domain.hi - domain.lo) * 0.15;
                    candidate[domain.name] =
                        domain.clamp(base.at(domain.name) + rng_.normal(0.0, span));
                }
            }
        } else {
            candidate = space_.sample(rng_);
        }
        const double ratio = density(good, candidate) - density(bad, candidate);
        if (ratio > best_ratio) {
            best_ratio = ratio;
            best_candidate = candidate;
        }
    }
    return best_candidate;
}

std::vector<TrialRequest> TpeSearch::next_wave() {
    if (issued_ >= num_trials_) return {};
    ++issued_;
    TrialRequest request;
    request.config_id = next_config_id_++;
    request.point = propose();
    request.target_epochs = epochs_of(request.point, default_epochs_);
    return {request};
}

void TpeSearch::report(const TrialOutcome& outcome) {
    history_.emplace_back(outcome.point, outcome.score);
}

// ------------------------------------------------------------- GeneticSearch

GeneticSearch::GeneticSearch(ParamSpace space, std::size_t population, std::size_t generations,
                             std::size_t default_epochs, std::uint64_t seed, double mutation_rate)
    : space_(std::move(space)),
      population_(population),
      generations_(generations),
      default_epochs_(default_epochs),
      rng_(seed),
      mutation_rate_(mutation_rate) {
    if (population < 2 || generations == 0)
        throw std::invalid_argument("GeneticSearch: need population >= 2 and generations > 0");
    if (mutation_rate < 0 || mutation_rate > 1)
        throw std::invalid_argument("GeneticSearch: mutation_rate must be in [0, 1]");
}

ParamPoint GeneticSearch::crossover_mutate(const ParamPoint& a, const ParamPoint& b) {
    ParamPoint child;
    for (const auto& domain : space_.domains()) {
        child[domain.name] = rng_.bernoulli(0.5) ? a.at(domain.name) : b.at(domain.name);
        if (rng_.bernoulli(mutation_rate_)) child[domain.name] = domain.sample(rng_);
    }
    return child;
}

std::vector<TrialRequest> GeneticSearch::next_wave() {
    if (generation_ >= generations_) return {};
    std::vector<ParamPoint> cohort;
    if (generation_ == 0) {
        for (std::size_t i = 0; i < population_; ++i) cohort.push_back(space_.sample(rng_));
    } else {
        if (scored_.size() < 2)
            throw std::logic_error("GeneticSearch: generation finished without reports");
        std::sort(scored_.begin(), scored_.end(),
                  [](const auto& a, const auto& b) { return a.second > b.second; });
        cohort.push_back(scored_.front().first);  // elitism
        auto tournament = [&]() -> const ParamPoint& {
            const auto& a = scored_[rng_.index(scored_.size())];
            const auto& b = scored_[rng_.index(scored_.size())];
            return a.second >= b.second ? a.first : b.first;
        };
        while (cohort.size() < population_) cohort.push_back(crossover_mutate(tournament(), tournament()));
        scored_.clear();
    }
    ++generation_;
    std::vector<TrialRequest> wave;
    for (auto& point : cohort) {
        TrialRequest request;
        request.config_id = next_config_id_++;
        request.target_epochs = epochs_of(point, default_epochs_);
        request.point = std::move(point);
        wave.push_back(std::move(request));
    }
    return wave;
}

void GeneticSearch::report(const TrialOutcome& outcome) {
    scored_.emplace_back(outcome.point, outcome.score);
}

// ----------------------------------------------------------------- PbtSearch

PbtSearch::PbtSearch(ParamSpace space, std::size_t population, std::size_t total_epochs,
                     std::size_t interval_epochs, std::uint64_t seed, double quantile)
    : space_(std::move(space)),
      population_(population),
      total_epochs_(total_epochs),
      interval_(interval_epochs),
      rng_(seed),
      quantile_(quantile) {
    if (population < 2 || total_epochs == 0 || interval_epochs == 0)
        throw std::invalid_argument("PbtSearch: invalid sizes");
    if (quantile <= 0 || quantile >= 0.5)
        throw std::invalid_argument("PbtSearch: quantile must be in (0, 0.5)");
}

ParamPoint PbtSearch::perturb(const ParamPoint& point) {
    ParamPoint out = point;
    for (const auto& domain : space_.domains()) {
        if (domain.kind == ParamDomain::Kind::kDiscrete) {
            // Hop to an adjacent choice.
            const auto& values = domain.values;
            std::size_t index = 0;
            for (std::size_t i = 0; i < values.size(); ++i)
                if (std::fabs(values[i] - point.at(domain.name)) < 1e-9) index = i;
            if (rng_.bernoulli(0.5) && index + 1 < values.size()) ++index;
            else if (index > 0) --index;
            out[domain.name] = values[index];
        } else {
            const double factor = rng_.bernoulli(0.5) ? 0.8 : 1.25;
            out[domain.name] = domain.clamp(point.at(domain.name) * factor);
        }
    }
    return out;
}

std::vector<TrialRequest> PbtSearch::next_wave() {
    if (!started_) {
        started_ = true;
        for (std::size_t i = 0; i < population_; ++i)
            population_members_.push_back({next_config_id_++, space_.sample(rng_), 0.0, 0});
    } else {
        const bool everyone_done = std::all_of(
            population_members_.begin(), population_members_.end(),
            [&](const Member& m) { return m.epochs_done >= total_epochs_; });
        if (everyone_done) return {};
        // Exploit/explore, but only while the leader is still training —
        // replacements reset a member's progress, so continuing to exploit
        // after the leader finishes would never converge. NOTE: unlike
        // canonical PBT, replaced members restart training from scratch (the
        // Backend contract ties learned state to a fixed hyperparameter
        // configuration); they inherit the winner's configuration, not its
        // weights.
        std::sort(population_members_.begin(), population_members_.end(),
                  [](const Member& a, const Member& b) { return a.score > b.score; });
        const bool leader_done = population_members_.front().epochs_done >= total_epochs_;
        if (!leader_done) {
            const std::size_t cut = std::max<std::size_t>(
                1,
                static_cast<std::size_t>(std::floor(quantile_ * static_cast<double>(population_))));
            for (std::size_t loser = population_members_.size() - cut;
                 loser < population_members_.size(); ++loser) {
                const Member& winner =
                    population_members_[loser - (population_members_.size() - cut)];
                population_members_[loser] =
                    Member{next_config_id_++, perturb(winner.point), 0.0, 0};
            }
        }
    }

    std::vector<TrialRequest> wave;
    for (auto& member : population_members_) {
        if (member.epochs_done >= total_epochs_) continue;
        TrialRequest request;
        request.config_id = member.config_id;
        request.point = member.point;
        request.target_epochs = std::min(total_epochs_, member.epochs_done + interval_);
        wave.push_back(std::move(request));
    }
    return wave;
}

void PbtSearch::report(const TrialOutcome& outcome) {
    for (auto& member : population_members_)
        if (member.config_id == outcome.config_id) {
            member.score = outcome.score;
            member.epochs_done = outcome.epochs_done;
        }
}

}  // namespace pipetune::hpt
