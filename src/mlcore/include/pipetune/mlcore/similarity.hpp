#pragma once
// Pluggable similarity function over workload profiles (paper §5.4: "Our
// design allows the similarity function to be pluggable, and while we do
// settle on k-means in the current implementation, PipeTune allows to easily
// switch to alternative techniques").

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pipetune/mlcore/kmeans.hpp"
#include "pipetune/util/stats.hpp"

namespace pipetune::mlcore {

/// Result of querying the similarity function with a new job's profile.
struct SimilarityMatch {
    std::size_t cluster = 0;  ///< identifier of the matched group
    double score = 0.0;       ///< confidence in [0, 1]; 1 = dead centre of cluster
};

class SimilarityFunction {
public:
    virtual ~SimilarityFunction() = default;

    /// (Re)build the model from profile feature vectors.
    virtual void fit(const std::vector<std::vector<double>>& features) = 0;

    /// Query with a new feature vector; nullopt until fitted.
    virtual std::optional<SimilarityMatch> match(const std::vector<double>& features) const = 0;

    virtual bool fitted() const = 0;
    virtual std::string name() const = 0;
};

/// k-means-backed similarity (paper §5.6: "the threshold matches the distance
/// from the new set of data points to their current cluster's centroid. The
/// distance is compared against the models' inertia").
///
/// Cluster membership comes from the k-means model; the *confidence* score is
/// calibrated against the nearest-neighbour distance distribution of the
/// training profiles rather than centroid distances. Both the query's and the
/// training points' distances are measured in the same standardized space, so
/// the small-sample shrinkage that deflates distance-to-fitted-centroid
/// cancels out — without this, a store holding near-identical profiles
/// rejects legitimate repeats of the same workload.
class KMeansSimilarity : public SimilarityFunction {
public:
    explicit KMeansSimilarity(KMeansConfig config = {});

    void fit(const std::vector<std::vector<double>>& features) override;
    std::optional<SimilarityMatch> match(const std::vector<double>& features) const override;
    bool fitted() const override;
    std::string name() const override { return "kmeans"; }

    const KMeans& model() const { return model_; }
    /// Calibration scale: ~90th percentile nearest-neighbour distance of the
    /// training set in standardized space.
    double neighbor_radius() const { return neighbor_radius_; }

    util::Json to_json() const;
    static KMeansSimilarity from_json(const util::Json& json);

private:
    KMeansConfig config_;
    KMeans model_;
    util::Standardizer standardizer_;
    std::vector<std::vector<double>> training_z_;  ///< standardized training rows
    double neighbor_radius_ = 0.0;
};

/// Nearest-neighbour similarity (an alternative plug-in): confidence decays
/// with distance to the closest stored profile.
class NearestNeighborSimilarity : public SimilarityFunction {
public:
    explicit NearestNeighborSimilarity(double length_scale = 1.0);

    void fit(const std::vector<std::vector<double>>& features) override;
    std::optional<SimilarityMatch> match(const std::vector<double>& features) const override;
    bool fitted() const override { return !stored_.empty(); }
    std::string name() const override { return "nearest-neighbor"; }

private:
    double length_scale_;
    std::vector<std::vector<double>> stored_;
    util::Standardizer standardizer_;
};

}  // namespace pipetune::mlcore
