#pragma once
// k-means clustering — the similarity function of PipeTune's ground-truth
// phase (§5.4). The paper uses scikit-learn's battle-tested implementation
// with k = 2; this is the C++ substitute: k-means++ seeding, Lloyd
// iterations, inertia, and the distance-vs-inertia confidence test PipeTune
// uses to decide between reusing a known configuration and probing (§5.6).

#include <cstdint>
#include <vector>

#include "pipetune/util/json.hpp"
#include "pipetune/util/rng.hpp"

namespace pipetune::mlcore {

struct KMeansConfig {
    std::size_t k = 2;
    std::size_t max_iterations = 100;
    double tolerance = 1e-6;  ///< stop when centroid shift falls below this
    std::uint64_t seed = 1;
};

struct KMeansResult {
    std::vector<std::vector<double>> centroids;
    std::vector<std::size_t> assignments;
    double inertia = 0.0;  ///< sum of squared distances to assigned centroids
    std::size_t iterations = 0;
};

class KMeans {
public:
    explicit KMeans(KMeansConfig config = {});

    /// Fit on row vectors (all the same dimension, at least k rows).
    KMeansResult fit(const std::vector<std::vector<double>>& rows);

    /// Nearest centroid of a fitted model.
    std::size_t predict(const std::vector<double>& row) const;
    /// Euclidean distance to the nearest centroid.
    double distance_to_nearest(const std::vector<double>& row) const;

    bool fitted() const { return !centroids_.empty(); }
    const std::vector<std::vector<double>>& centroids() const { return centroids_; }
    double inertia() const { return inertia_; }
    std::size_t sample_count() const { return sample_count_; }

    /// Mean squared distance of training points to their centroid; the scale
    /// against which new points' distances are judged (paper: "the distance
    /// is compared against the model's inertia").
    double mean_inertia_per_sample() const;

    /// 90th-percentile distance of training points to their assigned
    /// centroid — the cluster "radius" the similarity confidence is measured
    /// against. 0 until fitted.
    double radius() const { return radius_; }

    /// Serialization for the persistent ground-truth store.
    util::Json to_json() const;
    static KMeans from_json(const util::Json& json);

private:
    KMeansConfig config_;
    std::vector<std::vector<double>> centroids_;
    double inertia_ = 0.0;
    double radius_ = 0.0;
    std::size_t sample_count_ = 0;
};

}  // namespace pipetune::mlcore
