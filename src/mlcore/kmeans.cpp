#include "pipetune/mlcore/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "pipetune/util/stats.hpp"

namespace pipetune::mlcore {

namespace {
double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) {
        const double delta = a[d] - b[d];
        acc += delta * delta;
    }
    return acc;
}
}  // namespace

KMeans::KMeans(KMeansConfig config) : config_(config) {
    if (config.k == 0) throw std::invalid_argument("KMeans: k must be > 0");
    if (config.max_iterations == 0) throw std::invalid_argument("KMeans: max_iterations must be > 0");
}

KMeansResult KMeans::fit(const std::vector<std::vector<double>>& rows) {
    if (rows.size() < config_.k)
        throw std::invalid_argument("KMeans::fit: fewer rows than clusters");
    const std::size_t dims = rows.front().size();
    for (const auto& row : rows)
        if (row.size() != dims) throw std::invalid_argument("KMeans::fit: ragged rows");

    util::Rng rng(config_.seed);

    // k-means++ seeding: first centre uniform, subsequent centres proportional
    // to squared distance from the nearest chosen centre.
    centroids_.clear();
    centroids_.push_back(rows[rng.index(rows.size())]);
    std::vector<double> nearest_sq(rows.size(), std::numeric_limits<double>::max());
    while (centroids_.size() < config_.k) {
        for (std::size_t i = 0; i < rows.size(); ++i)
            nearest_sq[i] = std::min(nearest_sq[i], squared_distance(rows[i], centroids_.back()));
        centroids_.push_back(rows[rng.weighted_index(nearest_sq)]);
    }

    KMeansResult result;
    result.assignments.assign(rows.size(), 0);
    for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
        // Assignment step.
        result.inertia = 0.0;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            std::size_t best_c = 0;
            for (std::size_t c = 0; c < centroids_.size(); ++c) {
                const double d = squared_distance(rows[i], centroids_[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            result.assignments[i] = best_c;
            result.inertia += best;
        }
        // Update step.
        std::vector<std::vector<double>> sums(config_.k, std::vector<double>(dims, 0.0));
        std::vector<std::size_t> counts(config_.k, 0);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            ++counts[result.assignments[i]];
            for (std::size_t d = 0; d < dims; ++d) sums[result.assignments[i]][d] += rows[i][d];
        }
        double shift = 0.0;
        for (std::size_t c = 0; c < config_.k; ++c) {
            if (counts[c] == 0) {
                // Empty cluster: reseed at the farthest point (standard fix).
                std::size_t far_i = 0;
                double far_d = -1.0;
                for (std::size_t i = 0; i < rows.size(); ++i) {
                    const double d = squared_distance(rows[i], centroids_[result.assignments[i]]);
                    if (d > far_d) {
                        far_d = d;
                        far_i = i;
                    }
                }
                centroids_[c] = rows[far_i];
                shift += far_d;
                continue;
            }
            std::vector<double> updated(dims);
            for (std::size_t d = 0; d < dims; ++d)
                updated[d] = sums[c][d] / static_cast<double>(counts[c]);
            shift += squared_distance(updated, centroids_[c]);
            centroids_[c] = std::move(updated);
        }
        result.iterations = iter + 1;
        if (shift < config_.tolerance) break;
    }

    // Final inertia and point distances under the converged centroids.
    result.inertia = 0.0;
    std::vector<double> distances(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        double best = std::numeric_limits<double>::max();
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < centroids_.size(); ++c) {
            const double d = squared_distance(rows[i], centroids_[c]);
            if (d < best) {
                best = d;
                best_c = c;
            }
        }
        result.assignments[i] = best_c;
        result.inertia += best;
        distances[i] = std::sqrt(best);
    }
    result.centroids = centroids_;
    inertia_ = result.inertia;
    radius_ = util::percentile(distances, 90.0);
    sample_count_ = rows.size();
    return result;
}

std::size_t KMeans::predict(const std::vector<double>& row) const {
    if (!fitted()) throw std::runtime_error("KMeans::predict before fit");
    if (row.size() != centroids_.front().size())
        throw std::invalid_argument("KMeans::predict: dimension mismatch");
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
        const double d = squared_distance(row, centroids_[c]);
        if (d < best) {
            best = d;
            best_c = c;
        }
    }
    return best_c;
}

double KMeans::distance_to_nearest(const std::vector<double>& row) const {
    if (!fitted()) throw std::runtime_error("KMeans::distance_to_nearest before fit");
    if (row.size() != centroids_.front().size())
        throw std::invalid_argument("KMeans::distance_to_nearest: dimension mismatch");
    double best = std::numeric_limits<double>::max();
    for (const auto& centroid : centroids_)
        best = std::min(best, squared_distance(row, centroid));
    return std::sqrt(best);
}

double KMeans::mean_inertia_per_sample() const {
    if (sample_count_ == 0) return 0.0;
    return inertia_ / static_cast<double>(sample_count_);
}

util::Json KMeans::to_json() const {
    util::Json json;
    json["k"] = config_.k;
    json["seed"] = config_.seed;
    json["inertia"] = inertia_;
    json["radius"] = radius_;
    json["samples"] = sample_count_;
    util::Json centroid_list = util::Json::array();
    for (const auto& centroid : centroids_) centroid_list.push_back(util::Json::array_of(centroid));
    json["centroids"] = std::move(centroid_list);
    return json;
}

KMeans KMeans::from_json(const util::Json& json) {
    KMeansConfig config;
    config.k = static_cast<std::size_t>(json.at("k").as_int());
    config.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
    KMeans model(config);
    for (const auto& centroid : json.at("centroids").as_array())
        model.centroids_.push_back(centroid.as_double_vector());
    model.inertia_ = json.get_number("inertia", 0.0);
    model.radius_ = json.get_number("radius", 0.0);
    model.sample_count_ = static_cast<std::size_t>(json.get_number("samples", 0));
    return model;
}

}  // namespace pipetune::mlcore
