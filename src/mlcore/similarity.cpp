#include "pipetune/mlcore/similarity.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pipetune::mlcore {

namespace {
double nearest_distance(const std::vector<std::vector<double>>& rows,
                        const std::vector<double>& query, std::size_t skip_index) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i == skip_index) continue;
        best = std::min(best, util::euclidean(rows[i], query));
    }
    return best;
}
}  // namespace

KMeansSimilarity::KMeansSimilarity(KMeansConfig config) : config_(config), model_(config) {}

void KMeansSimilarity::fit(const std::vector<std::vector<double>>& features) {
    standardizer_.fit(features);
    training_z_ = standardizer_.transform(features);
    model_ = KMeans(config_);
    model_.fit(training_z_);
    // Calibration radius: 90th percentile of leave-one-out nearest-neighbour
    // distances. With a single row there is no pair; fall back to the floor.
    if (training_z_.size() >= 2) {
        std::vector<double> nn(training_z_.size());
        for (std::size_t i = 0; i < training_z_.size(); ++i)
            nn[i] = nearest_distance(training_z_, training_z_[i], i);
        neighbor_radius_ = util::percentile(nn, 90.0);
    } else {
        neighbor_radius_ = 0.0;
    }
}

bool KMeansSimilarity::fitted() const { return model_.fitted() && standardizer_.fitted(); }

std::optional<SimilarityMatch> KMeansSimilarity::match(const std::vector<double>& features) const {
    if (!fitted()) return std::nullopt;
    const auto z = standardizer_.transform(features);
    SimilarityMatch result;
    result.cluster = model_.predict(z);
    const double distance = nearest_distance(training_z_, z, training_z_.size());
    // Small-sample correction: the standardizer's per-dimension std is
    // estimated from n training rows, so an *independent* query's z-scores
    // are inflated by ~sqrt((n-1)/(n-3)) relative to the in-sample rows the
    // radius was measured on (chi-squared shrinkage). Without this, a store
    // holding a handful of profiles rejects legitimate repeats.
    const double n = static_cast<double>(training_z_.size());
    const double correction = n > 3.5 ? std::sqrt((n - 1.0) / (n - 3.0)) : 2.0;
    // Floor protects degenerate training sets (identical profiles).
    const double scale = std::max(neighbor_radius_ * correction, 0.5);
    // Gaussian confidence: 1 on top of a stored profile, ~0.61 at one
    // neighbour-radius, near zero for unseen workloads (tens of radii away).
    result.score = std::exp(-0.5 * (distance / scale) * (distance / scale));
    return result;
}

util::Json KMeansSimilarity::to_json() const {
    util::Json json;
    json["model"] = model_.to_json();
    json["means"] = util::Json::array_of(standardizer_.means());
    json["stds"] = util::Json::array_of(standardizer_.stds());
    json["neighbor_radius"] = neighbor_radius_;
    util::Json rows = util::Json::array();
    for (const auto& row : training_z_) rows.push_back(util::Json::array_of(row));
    json["training_z"] = std::move(rows);
    return json;
}

KMeansSimilarity KMeansSimilarity::from_json(const util::Json& json) {
    KMeans model = KMeans::from_json(json.at("model"));
    KMeansSimilarity similarity;
    similarity.model_ = model;
    similarity.neighbor_radius_ = json.get_number("neighbor_radius", 0.0);
    if (json.contains("training_z"))
        for (const auto& row : json.at("training_z").as_array())
            similarity.training_z_.push_back(row.as_double_vector());
    // Rebuild the standardizer from persisted moments. Standardizer has no
    // direct setter, so fit on two synthetic rows that reproduce mean/std.
    const auto means = json.at("means").as_double_vector();
    const auto stds = json.at("stds").as_double_vector();
    std::vector<std::vector<double>> synth(2, means);
    for (std::size_t d = 0; d < means.size(); ++d) {
        synth[0][d] = means[d] - stds[d];
        synth[1][d] = means[d] + stds[d];
    }
    similarity.standardizer_.fit(synth);
    return similarity;
}

NearestNeighborSimilarity::NearestNeighborSimilarity(double length_scale)
    : length_scale_(length_scale) {
    if (length_scale <= 0)
        throw std::invalid_argument("NearestNeighborSimilarity: length_scale must be > 0");
}

void NearestNeighborSimilarity::fit(const std::vector<std::vector<double>>& features) {
    if (features.empty())
        throw std::invalid_argument("NearestNeighborSimilarity::fit: no features");
    standardizer_.fit(features);
    stored_ = standardizer_.transform(features);
}

std::optional<SimilarityMatch> NearestNeighborSimilarity::match(
    const std::vector<double>& features) const {
    if (stored_.empty()) return std::nullopt;
    const auto z = standardizer_.transform(features);
    double best = std::numeric_limits<double>::max();
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < stored_.size(); ++i) {
        const double d = util::euclidean(z, stored_[i]);
        if (d < best) {
            best = d;
            best_i = i;
        }
    }
    return SimilarityMatch{best_i, std::exp(-best / length_scale_)};
}

}  // namespace pipetune::mlcore
