#include "pipetune/core/ground_truth.hpp"

#include <limits>

#include "pipetune/util/stats.hpp"
#include <stdexcept>

namespace pipetune::core {

GroundTruth::GroundTruth(GroundTruthConfig config)
    : config_(config),
      similarity_(mlcore::KMeansConfig{.k = config.k,
                                       .max_iterations = 100,
                                       .tolerance = 1e-6,
                                       .seed = config.seed}) {
    if (config.similarity_threshold < 0 || config.similarity_threshold > 1)
        throw std::invalid_argument("GroundTruth: threshold must be in [0, 1]");
    if (config.min_entries_for_model < config.k)
        throw std::invalid_argument("GroundTruth: need at least k entries before modeling");
    if (config.refit_interval == 0)
        throw std::invalid_argument("GroundTruth: refit_interval must be > 0");
}

bool GroundTruth::model_ready() const {
    return fitted_ && entries_.size() >= config_.min_entries_for_model;
}

void GroundTruth::refit() {
    if (entries_.size() < config_.min_entries_for_model) return;
    std::vector<std::vector<double>> features;
    features.reserve(entries_.size());
    for (const auto& entry : entries_) features.push_back(entry.features);
    similarity_.fit(features);
    fitted_ = true;
    inserts_since_fit_ = 0;
}

void GroundTruth::record(const std::vector<double>& features,
                         const workload::SystemParams& best, double metric) {
    if (features.empty()) throw std::invalid_argument("GroundTruth::record: empty features");
    if (!entries_.empty() && entries_.front().features.size() != features.size())
        throw std::invalid_argument("GroundTruth::record: feature dimension mismatch");
    entries_.push_back({features, best, metric});
    if (++inserts_since_fit_ >= config_.refit_interval || !fitted_) refit();
}

std::optional<workload::SystemParams> GroundTruth::lookup(const std::vector<double>& features,
                                                          double* score_out) const {
    if (score_out != nullptr) *score_out = 0.0;
    if (!model_ready()) return std::nullopt;
    const auto match = similarity_.match(features);
    if (!match) return std::nullopt;
    if (score_out != nullptr) *score_out = match->score;
    if (match->score < config_.similarity_threshold) return std::nullopt;

    // Configuration of the most similar entry within the matched cluster.
    // (Not the cluster's minimum-metric entry: raw metrics are incomparable
    // across trials with different hyperparameters — a config probed on a
    // fast large-batch trial always has the lowest epoch time, yet is exactly
    // wrong for a small-batch query. The nearest profile shares the query's
    // characteristics, batch effects included.)
    const auto clusters = entry_clusters();
    const GroundTruthEntry* nearest = nullptr;
    double nearest_distance = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (clusters[i] != match->cluster) continue;
        const double distance = util::euclidean(entries_[i].features, features);
        if (distance < nearest_distance) {
            nearest_distance = distance;
            nearest = &entries_[i];
        }
    }
    if (nearest == nullptr) return std::nullopt;  // empty cluster
    return nearest->best_system;
}

std::vector<std::size_t> GroundTruth::entry_clusters() const {
    std::vector<std::size_t> clusters(entries_.size(), 0);
    if (!fitted_) return clusters;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto match = similarity_.match(entries_[i].features);
        clusters[i] = match ? match->cluster : 0;
    }
    return clusters;
}

util::Json GroundTruth::to_json() const {
    util::Json json;
    util::Json list = util::Json::array();
    for (const auto& entry : entries_) {
        util::Json e;
        e["features"] = util::Json::array_of(entry.features);
        e["cores"] = entry.best_system.cores;
        e["memory_gb"] = entry.best_system.memory_gb;
        e["frequency_ghz"] = entry.best_system.frequency_ghz;
        e["metric"] = entry.metric;
        list.push_back(std::move(e));
    }
    json["entries"] = std::move(list);
    return json;
}

GroundTruth GroundTruth::from_json(const util::Json& json, GroundTruthConfig config) {
    GroundTruth gt(config);
    for (const auto& e : json.at("entries").as_array()) {
        workload::SystemParams system;
        system.cores = static_cast<std::size_t>(e.at("cores").as_int());
        system.memory_gb = static_cast<std::size_t>(e.at("memory_gb").as_int());
        system.frequency_ghz =
            e.get_number("frequency_ghz", workload::SystemParams::kBaseFrequencyGhz);
        gt.entries_.push_back({e.at("features").as_double_vector(), system,
                               e.get_number("metric", 0.0)});
    }
    gt.refit();
    return gt;
}

void GroundTruth::save(const std::string& path) const { to_json().save_file(path); }

util::Result<GroundTruth> GroundTruth::try_load(const std::string& path,
                                                GroundTruthConfig config) {
    auto json = util::Json::try_load_file(path);
    if (!json) return util::Result<GroundTruth>::failure("ground truth: " + json.error());
    try {
        return from_json(json.value(), config);
    } catch (const std::exception& e) {
        return util::Result<GroundTruth>::failure("ground truth " + path + ": " + e.what());
    }
}

GroundTruth GroundTruth::load(const std::string& path, GroundTruthConfig config) {
    return std::move(try_load(path, config)).value();
}

}  // namespace pipetune::core
