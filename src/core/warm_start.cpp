#include "pipetune/core/warm_start.hpp"

#include <limits>

#include "pipetune/perf/profiler.hpp"

namespace pipetune::core {

using workload::EpochResult;
using workload::HyperParams;
using workload::SystemParams;

GroundTruth build_warm_ground_truth(workload::Backend& backend,
                                    const std::vector<workload::Workload>& workloads,
                                    const WarmStartConfig& config) {
    GroundTruth ground_truth(config.ground_truth);
    for (const auto& workload : workloads) {
        for (const std::size_t batch : config.batch_sizes) {
            for (std::size_t repeat = 0; repeat < config.repeats; ++repeat) {
                HyperParams hyper;
                hyper.batch_size = batch;
                auto session = backend.start_trial(workload, hyper);

                // Profile under the cluster default — the same condition a
                // live job's profiling epochs run under, so features match.
                EpochResult profiled = session->run_epoch(workload::default_system_params());
                perf::EpochProfile profile;
                profile.epoch = profiled.epoch;
                profile.events = profiled.counters;
                profile.duration_s = profiled.duration_s;
                profile.energy_j = profiled.energy_j;
                const auto features = perf::profile_features(profile);

                // One epoch per grid configuration; keep the fastest.
                double best_duration = std::numeric_limits<double>::max();
                SystemParams best = workload::default_system_params();
                for (const auto& system : workload::system_param_grid()) {
                    const EpochResult result = session->run_epoch(system);
                    if (result.duration_s < best_duration) {
                        best_duration = result.duration_s;
                        best = system;
                    }
                }
                ground_truth.record(features, best, best_duration);
            }
        }
    }
    return ground_truth;
}

}  // namespace pipetune::core
