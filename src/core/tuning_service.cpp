#include "pipetune/core/tuning_service.hpp"

#include <stdexcept>

#include "pipetune/ft/codec.hpp"

namespace pipetune::core {

const char* to_string(SubmitPriority priority) {
    switch (priority) {
        case SubmitPriority::kHigh: return "high";
        case SubmitPriority::kNormal: return "normal";
        case SubmitPriority::kBatch: return "batch";
    }
    return "?";
}

PipeTuneJobResult TuningService::run(const workload::Workload& workload,
                                     const hpt::HptJobConfig& job_config,
                                     SubmitOptions options) {
    auto submission = submit(workload, job_config, std::move(options));
    if (!submission)
        throw std::runtime_error("TuningService: job for '" + workload.name +
                                 "' shed at submission (queue full or shutting down)");
    return submission->result.get();
}

util::Json journal_submit_payload(std::uint64_t job_id, const std::string& label,
                                  const workload::Workload& workload,
                                  const hpt::HptJobConfig& job_config,
                                  const SubmitOptions& options) {
    util::Json payload = util::Json::object();
    payload["job_id"] = job_id;
    payload["label"] = label;
    payload["workload"] = workload.name;
    payload["priority"] = to_string(options.priority);
    payload["deadline_s"] = options.deadline_s;
    // Decimal string, not a JSON number: derived seeds use all 64 bits and a
    // double round-trip (53-bit mantissa) would silently corrupt them — the
    // resumed job would replay a DIFFERENT trial stream.
    payload["backend_seed"] = std::to_string(options.backend_seed);
    util::Json config = util::Json::object();
    config["parallel_slots"] = job_config.parallel_slots;
    config["hyperband_resource"] = job_config.hyperband_resource;
    config["hyperband_eta"] = job_config.hyperband_eta;
    config["final_epochs"] = job_config.final_epochs;
    config["v2_cohort_scale"] = job_config.v2_cohort_scale;
    config["default_system"] = ft::system_to_json(job_config.default_system);
    config["seed"] = std::to_string(job_config.seed);  // 64-bit safe (see backend_seed)
    payload["job_config"] = std::move(config);
    return payload;
}

hpt::HptJobConfig job_config_from_journal(const util::Json& payload) {
    hpt::HptJobConfig job_config;
    if (!payload.contains("job_config")) return job_config;
    const util::Json& config = payload.at("job_config");
    job_config.parallel_slots = static_cast<std::size_t>(
        config.get_number("parallel_slots", job_config.parallel_slots));
    job_config.hyperband_resource = static_cast<std::size_t>(
        config.get_number("hyperband_resource", job_config.hyperband_resource));
    job_config.hyperband_eta =
        static_cast<std::size_t>(config.get_number("hyperband_eta", job_config.hyperband_eta));
    job_config.final_epochs =
        static_cast<std::size_t>(config.get_number("final_epochs", job_config.final_epochs));
    job_config.v2_cohort_scale = config.get_number("v2_cohort_scale", job_config.v2_cohort_scale);
    if (config.contains("default_system"))
        job_config.default_system = ft::system_from_json(config.at("default_system"));
    const std::string seed = config.get_string("seed", "");
    if (!seed.empty()) job_config.seed = std::stoull(seed);
    return job_config;
}

SubmitOptions submit_options_from_journal(const util::Json& payload) {
    SubmitOptions options;
    options.label = payload.get_string("label", "");
    const std::string priority = payload.get_string("priority", "normal");
    options.priority = priority == "high"    ? SubmitPriority::kHigh
                       : priority == "batch" ? SubmitPriority::kBatch
                                             : SubmitPriority::kNormal;
    options.deadline_s = payload.get_number("deadline_s", 0.0);
    const std::string backend_seed = payload.get_string("backend_seed", "");
    if (!backend_seed.empty()) options.backend_seed = std::stoull(backend_seed);
    return options;
}

}  // namespace pipetune::core
