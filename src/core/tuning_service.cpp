#include "pipetune/core/tuning_service.hpp"

#include <stdexcept>

namespace pipetune::core {

const char* to_string(SubmitPriority priority) {
    switch (priority) {
        case SubmitPriority::kHigh: return "high";
        case SubmitPriority::kNormal: return "normal";
        case SubmitPriority::kBatch: return "batch";
    }
    return "?";
}

PipeTuneJobResult TuningService::run(const workload::Workload& workload,
                                     const hpt::HptJobConfig& job_config,
                                     SubmitOptions options) {
    auto submission = submit(workload, job_config, std::move(options));
    if (!submission)
        throw std::runtime_error("TuningService: job for '" + workload.name +
                                 "' shed at submission (queue full or shutting down)");
    return submission->result.get();
}

}  // namespace pipetune::core
