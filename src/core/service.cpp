#include "pipetune/core/service.hpp"

#include <filesystem>

#include "pipetune/util/logging.hpp"

namespace pipetune::core {

namespace {
bool file_exists(const std::string& path) {
    std::error_code ec;
    return !path.empty() && std::filesystem::exists(path, ec);
}
}  // namespace

PipeTuneService::PipeTuneService(workload::Backend& backend, ServiceConfig config)
    : backend_(backend), config_(std::move(config)), ground_truth_(config_.pipetune.ground_truth) {
    if (!config_.state_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config_.state_dir, ec);
        if (ec)
            throw std::runtime_error("PipeTuneService: cannot create state dir '" +
                                     config_.state_dir + "': " + ec.message());
    }
    if (file_exists(ground_truth_path())) {
        ground_truth_ = GroundTruth::load(ground_truth_path(), config_.pipetune.ground_truth);
        PT_LOG_INFO("service") << "loaded ground truth with " << ground_truth_.size()
                               << " profiles from " << ground_truth_path();
    } else if (config_.warm_start_on_first_use && !config_.warm_start_workloads.empty()) {
        WarmStartConfig warm;
        warm.ground_truth = config_.pipetune.ground_truth;
        ground_truth_ = build_warm_ground_truth(backend_, config_.warm_start_workloads, warm);
        PT_LOG_INFO("service") << "warm-start campaign recorded " << ground_truth_.size()
                               << " profiles";
    }
    if (file_exists(metrics_path())) metrics_ = metricsdb::TimeSeriesDb::load(metrics_path());
    persist();
}

std::string PipeTuneService::ground_truth_path() const {
    return config_.state_dir.empty() ? std::string()
                                     : config_.state_dir + "/ground_truth.json";
}

std::string PipeTuneService::metrics_path() const {
    return config_.state_dir.empty() ? std::string() : config_.state_dir + "/metrics.json";
}

void PipeTuneService::persist() const {
    if (config_.state_dir.empty()) return;
    ground_truth_.save(ground_truth_path());
    metrics_.save(metrics_path());
}

PipeTuneJobResult PipeTuneService::submit(const workload::Workload& workload,
                                          const hpt::HptJobConfig& job_config) {
    PipeTuneConfig config = config_.pipetune;
    config.metrics = &metrics_;
    const PipeTuneJobResult result =
        run_pipetune(backend_, workload, job_config, config, &ground_truth_);
    ++jobs_served_;
    persist();
    PT_LOG_INFO("service") << "job " << jobs_served_ << " (" << workload.name << "): accuracy "
                           << result.baseline.final_accuracy << "%, tuning "
                           << result.baseline.tuning.tuning_duration_s << "s, "
                           << result.ground_truth_hits << " hits / " << result.probes_started
                           << " probes";
    return result;
}

}  // namespace pipetune::core
