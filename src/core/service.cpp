#include "pipetune/core/service.hpp"

#include <filesystem>

#include "pipetune/ft/errors.hpp"
#include "pipetune/ft/journal.hpp"
#include "pipetune/util/logging.hpp"

namespace pipetune::core {

namespace {
bool file_exists(const std::string& path) {
    std::error_code ec;
    return !path.empty() && std::filesystem::exists(path, ec);
}
}  // namespace

PipeTuneService::PipeTuneService(workload::Backend& backend, ServiceOptions options)
    : backend_(backend),
      options_(std::move(options)),
      ground_truth_(options_.pipetune.ground_truth),
      next_id_(options_.first_job_id),
      epoch_(std::chrono::steady_clock::now()) {
    if (options_.obs != nullptr) {
        auto& registry = options_.obs->metrics();
        obs_flush_total_ = &registry.counter("pipetune_metricsdb_flush_total", {},
                                             "State flushes (ground truth + metrics db)");
        obs_flush_seconds_ =
            &registry.histogram("pipetune_metricsdb_flush_seconds",
                                {0.001, 0.005, 0.02, 0.1, 0.5, 2.0}, {},
                                "Wall-clock latency of one state flush");
        obs_points_ =
            &registry.gauge("pipetune_metricsdb_points", {}, "Points in the metrics database");
        obs_jobs_served_ =
            &registry.counter("pipetune_service_jobs_served_total", {},
                              "HPT jobs run to completion by a tuning service");
        obs_job_retries_ = &registry.counter("pipetune_ft_job_retries_total", {},
                                             "Jobs re-run after a transient failure");
    }
    if (!options_.state_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.state_dir, ec);
        if (ec)
            throw std::runtime_error("PipeTuneService: cannot create state dir '" +
                                     options_.state_dir + "': " + ec.message());
    }
    if (file_exists(ground_truth_path())) {
        ground_truth_ =
            GroundTruth::load(ground_truth_path(), options_.pipetune.ground_truth);
        PT_LOG_INFO("service").field("profiles", ground_truth_.size())
            << "loaded ground truth from " << ground_truth_path();
    } else if (options_.warm_start_on_first_use && !options_.warm_start_workloads.empty()) {
        WarmStartConfig warm;
        warm.ground_truth = options_.pipetune.ground_truth;
        ground_truth_ = build_warm_ground_truth(backend_, options_.warm_start_workloads, warm);
        PT_LOG_INFO("service").field("profiles", ground_truth_.size())
            << "warm-start campaign finished";
    }
    if (file_exists(metrics_path())) metrics_ = metricsdb::TimeSeriesDb::load(metrics_path());
    persist();
}

double PipeTuneService::clock_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

std::string PipeTuneService::ground_truth_path() const {
    return options_.state_dir.empty() ? std::string()
                                      : options_.state_dir + "/ground_truth.json";
}

std::string PipeTuneService::metrics_path() const {
    return options_.state_dir.empty() ? std::string() : options_.state_dir + "/metrics.json";
}

void PipeTuneService::persist() const {
    if (options_.state_dir.empty()) return;
    const double start_s = options_.obs ? options_.obs->tracer().now_s() : 0.0;
    ground_truth_.save(ground_truth_path());
    metrics_.save(metrics_path());
    if (options_.obs) {
        obs_flush_total_->inc();
        obs_flush_seconds_->observe(options_.obs->tracer().now_s() - start_s);
        obs_points_->set(static_cast<double>(metrics_.total_points()));
    }
}

ServiceStats PipeTuneService::stats() const {
    ServiceStats stats;
    stats.submitted = jobs_served_ + jobs_failed_;
    stats.completed = jobs_served_;
    stats.failed = jobs_failed_;
    return stats;
}

void PipeTuneService::seed_ground_truth(const std::vector<GroundTruthEntry>& entries) {
    for (const GroundTruthEntry& entry : entries)
        ground_truth_.record(entry.features, entry.best_system, entry.metric);
    if (!entries.empty())
        PT_LOG_INFO("service").field("entries", entries.size())
            << "ground truth seeded from recovery";
}

std::optional<TuningService::Submission> PipeTuneService::submit(
    const workload::Workload& workload, const hpt::HptJobConfig& job_config,
    SubmitOptions options) {
    const std::uint64_t id = options.job_id != 0 ? options.job_id : ++next_id_;
    if (id > next_id_) next_id_ = id;  // keep assigned ids ahead of forced ones
    JobTiming timing;
    timing.id = id;
    timing.label = options.label.empty() ? workload.name : options.label;
    timing.submit_s = timing.start_s = clock_s();

    std::promise<PipeTuneJobResult> promise;
    auto future = promise.get_future();

    obs::Tracer::Span span;
    if (options_.obs) {
        span = options_.obs->tracer().span("job", "service");
        span.arg("workload", workload.name);
        span.arg("job_id", std::to_string(id));
    }
    if (options_.journal != nullptr)
        (void)options_.journal->append(
            ft::record_type::kJobSubmitted,
            journal_submit_payload(id, timing.label, workload, job_config, options));
    // Inline retry: a job that dies of a transient failure (injected fault,
    // flaky substrate) re-runs on the caller's thread per the retry policy;
    // anything else — including ft::SimulatedCrash — is terminal on the
    // first throw.
    std::size_t failures = 0;
    util::Rng retry_rng(id ^ 0x5bd1e995ULL);
    for (;;) {
        try {
            PipeTuneConfig config = options_.pipetune;
            config.metrics = &metrics_;
            config.obs = options_.obs;
            config.journal = options_.journal;
            config.journal_job_id = id;
            hpt::HptJobConfig job = job_config;
            job.obs = options_.obs;
            PipeTuneJobResult result =
                run_pipetune(backend_, workload, job, config, &ground_truth_);
            ++jobs_served_;
            if (options_.journal != nullptr) {
                util::Json payload = util::Json::object();
                payload["job_id"] = id;
                (void)options_.journal->append(ft::record_type::kJobCompleted,
                                               std::move(payload));
            }
            if (options_.persist_after_each_job) persist();
            if (obs_jobs_served_ != nullptr) obs_jobs_served_->inc();
            PT_LOG_INFO("service")
                    .field("workload", workload.name)
                    .field("accuracy_pct", result.baseline.final_accuracy)
                    .field("tuning_s", result.baseline.tuning.tuning_duration_s)
                    .field("hits", result.ground_truth_hits)
                    .field("probes", result.probes_started)
                << "job " << jobs_served_ << " done";
            timing.ok = true;
            promise.set_value(std::move(result));
            break;
        } catch (const ft::TransientFailure& e) {
            ++failures;
            if (options_.retry.should_retry(failures, clock_s() - timing.submit_s)) {
                if (obs_job_retries_ != nullptr) obs_job_retries_->inc();
                PT_LOG_WARN("service").field("job", id).field("attempt", failures + 1)
                    << "transient job failure, retrying: " << e.what();
                (void)options_.retry.backoff_s(failures, retry_rng);  // charged nowhere:
                // the serial service runs inline; sleeping would only stall the caller.
                continue;
            }
            ++jobs_failed_;
            timing.error = e.what();
            if (options_.journal != nullptr) {
                util::Json payload = util::Json::object();
                payload["job_id"] = id;
                payload["error"] = std::string(e.what());
                (void)options_.journal->append(ft::record_type::kJobFailed, std::move(payload));
            }
            promise.set_exception(std::current_exception());
            break;
        } catch (const std::exception& e) {
            ++jobs_failed_;
            timing.error = e.what();
            // A SimulatedCrash models process death: the journal must NOT
            // gain a job_failed record (a dead process writes nothing), so
            // recovery sees the job as pending and re-runs it.
            if (options_.journal != nullptr &&
                dynamic_cast<const ft::SimulatedCrash*>(&e) == nullptr) {
                util::Json payload = util::Json::object();
                payload["job_id"] = id;
                payload["error"] = std::string(e.what());
                (void)options_.journal->append(ft::record_type::kJobFailed, std::move(payload));
            }
            promise.set_exception(std::current_exception());
            break;
        } catch (...) {
            ++jobs_failed_;
            timing.error = "unknown error";
            promise.set_exception(std::current_exception());
            break;
        }
    }
    timing.finish_s = clock_s();
    timings_.push_back(timing);
    return Submission{id, std::move(future)};
}

}  // namespace pipetune::core
