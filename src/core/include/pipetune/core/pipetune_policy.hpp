#pragma once
// PipeTune's pipelined system-parameter tuner (paper §5.2, Algorithm 1),
// realized as a per-epoch SystemTuningPolicy:
//
//   epochs 1..P         profile under the trial's default configuration
//   epoch  P+1          similarity lookup against the ground truth
//     hit  -> apply the known-best configuration for all remaining epochs
//     miss -> probing: one configuration per epoch, staged per parameter —
//             first each cores value (at the default memory), then each
//             memory value (at the best cores found). This realizes the
//             paper's O(n) search complexity "where n is the number of
//             distinct system parameters considered" (§5.2) rather than the
//             cores x memory cross-product. The best measured configuration
//             is applied for the remaining epochs and recorded in the ground
//             truth.
//
// All decision work is "pipelined" with training in the paper (asynchronous
// tuneSystem); here it runs between epochs and its measured overhead is
// charged explicitly via epoch_overhead_s so the §7.3 overhead claim is
// testable.

#include <map>
#include <optional>

#include "pipetune/core/ground_truth.hpp"
#include "pipetune/hpt/policy.hpp"
#include "pipetune/metricsdb/tsdb.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/perf/profiler.hpp"

namespace pipetune::ft {
class Journal;
}

namespace pipetune::core {

struct PipeTuneConfig {
    std::size_t profiling_epochs = 1;  ///< "low-overhead profiling ... across the first couple of epochs" (§7.3)
    /// Optimization function applied over probe measurements (§5.2: e.g.
    /// shortest runtime, lowest energy consumption).
    enum class ProbeObjective { kDuration, kEnergy } probe_objective = ProbeObjective::kDuration;
    double profiling_overhead_fraction = 0.01;  ///< charged on profiled epochs
    double probing_overhead_fraction = 0.005;   ///< charged on probe epochs
    /// Also probe DVFS frequency steps (the extension parameter of §7.1.4):
    /// adds one probe epoch per non-base step of workload::frequency_steps_ghz
    /// at the best (cores, memory) found. Most useful with the kEnergy probe
    /// objective — lower clocks trade runtime for power.
    bool tune_frequency = false;
    GroundTruthConfig ground_truth{};
    /// Optional metrics sink (the paper's InfluxDB role, §6): every epoch the
    /// policy observes is appended as `epoch_duration`, `epoch_energy` and
    /// `epoch_accuracy` points tagged with trial/epoch/phase/system. Usually a
    /// metricsdb::TimeSeriesDb; the concurrent scheduler passes a locked view
    /// of a shared one instead. Not owned; may be null.
    metricsdb::MetricsSink* metrics = nullptr;
    /// Telemetry for the policy itself (hit/probe counters, store-size gauge,
    /// cluster/probe phase spans). Not owned; null disables instrumentation.
    obs::ObsContext* obs = nullptr;
    /// Write-ahead journal (ft::Journal, DESIGN.md §10). When set the policy
    /// durably logs trial/epoch lifecycle and every ground-truth mutation
    /// (gt_record, written BEFORE the store is touched), all tagged with
    /// journal_job_id so ft::Recovery can fold the journal per job. Not
    /// owned; may be null.
    ft::Journal* journal = nullptr;
    std::uint64_t journal_job_id = 0;
};

class PipeTunePolicy final : public hpt::SystemTuningPolicy {
public:
    /// `shared_ground_truth` (optional) lets multiple HPT jobs — the
    /// multi-tenancy scenario — reuse one persistent store; when null the
    /// policy owns a private one. Any GroundTruthStore works: a bare
    /// GroundTruth for sequential sharing, or a locked view for concurrent
    /// jobs (sched::SharedClusterState).
    explicit PipeTunePolicy(PipeTuneConfig config = {},
                            GroundTruthStore* shared_ground_truth = nullptr);

    workload::SystemParams choose(std::uint64_t trial_id, const workload::Workload& workload,
                                  const workload::HyperParams& hyper, std::size_t epoch,
                                  const std::vector<workload::EpochResult>& history,
                                  const workload::SystemParams& trial_default) override;

    double epoch_overhead_s(std::uint64_t trial_id, std::size_t epoch,
                            double epoch_duration_s) override;

    void trial_finished(std::uint64_t trial_id, const workload::Workload& workload,
                        const workload::HyperParams& hyper,
                        const std::vector<workload::EpochResult>& history) override;

    std::string name() const override { return "pipetune"; }

    /// The store this policy reads/writes (owned or shared, possibly locked).
    GroundTruthStore& store() { return owned_ ? *owned_ : *shared_; }
    const GroundTruthStore& store() const { return owned_ ? *owned_ : *shared_; }

    /// Concrete store access for introspection (entries, clusters). Valid when
    /// the policy owns its store or shares a bare GroundTruth; throws
    /// std::logic_error when the shared store is a type-erased locked view.
    GroundTruth& ground_truth();
    const GroundTruth& ground_truth() const;

    /// Counters for tests/benches: how trials resolved.
    std::size_t ground_truth_hits() const { return hits_; }
    std::size_t probes_started() const { return probes_; }

    /// One entry per reuse/probe decision, for operator introspection
    /// (`pipetune tune --verbose` prints these).
    struct Decision {
        std::uint64_t trial_id = 0;
        double similarity_score = 0.0;
        bool hit = false;
        workload::SystemParams applied;  ///< reused config (hit) or later probe winner
        bool applied_known = false;      ///< false while a probe is still running
    };
    const std::vector<Decision>& decisions() const { return decisions_; }

private:
    enum class Mode { kProfiling, kApplied, kProbing };

    struct TrialPlan {
        Mode mode = Mode::kProfiling;
        std::optional<workload::SystemParams> applied;  ///< decided configuration
        std::vector<double> features;                   ///< profile features (set once)
        std::vector<workload::SystemParams> probe_sequence;  ///< staged probe schedule
        std::size_t probe_cursor = 0;                   ///< next sequence index to try
        std::size_t probe_first_epoch = 0;              ///< epoch the probe started at
        bool memory_stage_planned = false;
        bool frequency_stage_planned = false;
        bool recorded = false;
        std::size_t metrics_logged = 0;  ///< epochs already appended to the sink
        std::size_t journal_logged = 0;  ///< epochs already journaled
        bool journal_started = false;    ///< trial_started record written
        std::size_t decision_index = 0;  ///< position in decisions_ (set on resolve)
        /// Open while the trial probes (started on the lookup miss, ended
        /// when the winner is applied or the trial retires mid-probe).
        obs::Tracer::Span probe_span;
    };

    /// Append any not-yet-logged epochs of `history` to the metrics sink.
    void log_epochs(std::uint64_t trial_id, TrialPlan& plan,
                    const std::vector<workload::EpochResult>& history);
    /// Journal trial_started + any not-yet-journaled epochs (no-op when
    /// config_.journal is null).
    void journal_epochs(std::uint64_t trial_id, TrialPlan& plan,
                        const std::vector<workload::EpochResult>& history);
    /// Write-ahead gt_record for a store().record about to happen.
    void journal_gt_record(const std::vector<double>& features,
                           const workload::SystemParams& best, double metric);

    /// Decide after profiling: lookup or start probing.
    void resolve_after_profiling(std::uint64_t trial_id, TrialPlan& plan,
                                 const std::vector<workload::EpochResult>& history);
    /// Evaluate probe epochs and pick the winner.
    workload::SystemParams best_probed(const TrialPlan& plan,
                                       const std::vector<workload::EpochResult>& history,
                                       double* metric_out) const;
    static std::vector<double> features_of(const std::vector<workload::EpochResult>& history,
                                           std::size_t profiling_epochs);

    PipeTuneConfig config_;
    std::unique_ptr<GroundTruth> owned_;
    GroundTruthStore* shared_;
    std::map<std::uint64_t, TrialPlan> plans_;
    std::vector<Decision> decisions_;
    std::size_t hits_ = 0;
    std::size_t probes_ = 0;
    std::uint64_t next_metric_time_ = 0;  ///< monotone pseudo-time for the sink
    // Instrument references cached at construction (null when obs is null).
    obs::Counter* obs_hits_ = nullptr;
    obs::Counter* obs_probes_ = nullptr;
    obs::Counter* obs_probe_epochs_ = nullptr;
    obs::Gauge* obs_store_size_ = nullptr;
};

}  // namespace pipetune::core
