#pragma once
// TuningService — the one deployment API. Both service implementations
// (core::PipeTuneService, serial; sched::ConcurrentPipeTuneService, worker
// threads) implement this interface, so the CLI, the benches and the
// examples drive a single surface and any caller can switch between them
// with a factory call (sched::make_tuning_service) and a `concurrency`
// field:
//
//   core::ServiceOptions options{.state_dir = dir, .concurrency = 4};
//   auto service = sched::make_tuning_service(backend, options);
//   auto submission = service->submit(workload, job_config);
//   core::PipeTuneJobResult result = submission->result.get();
//
// Every option the two services used to spell differently lives in one
// ServiceOptions struct; fields a serial service cannot honor (priorities,
// queue bounds) are documented as such instead of living in a second struct.
// Observability is injected the same way everywhere: an obs::ObsContext
// pointer in the options, threaded by the services into every layer below
// (scheduler, runner, policy, metricsdb flushes). Null = telemetry off.

#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "pipetune/core/experiment.hpp"
#include "pipetune/ft/retry_policy.hpp"
#include "pipetune/obs/obs_context.hpp"

namespace pipetune::core {

/// Queue class for concurrent services (maps onto sched::Priority). Serial
/// services run jobs inline and ignore it.
enum class SubmitPriority { kHigh = 0, kNormal = 1, kBatch = 2 };
const char* to_string(SubmitPriority priority);

/// Per-job submission knobs. Everything is optional; a default-constructed
/// SubmitOptions is always valid.
struct SubmitOptions {
    std::string label;  ///< for traces/spans; defaults to the workload name
    SubmitPriority priority = SubmitPriority::kNormal;  ///< serial: ignored
    /// Queueing budget in seconds (0 = none). Concurrent services discard
    /// jobs still queued past it; serial services run immediately, so it
    /// never triggers.
    double deadline_s = 0.0;
    /// Backend reseed value recorded verbatim in the journal's job_submitted
    /// payload (services do not interpret it). A driver that reseeds a
    /// ft::ReseedingBackend per job stores the FULLY DERIVED per-job seed
    /// here (ReseedingBackend::job_seed(base, id), not the base), so resume
    /// can begin_job(backend_seed) directly and reproduce the job's trial
    /// stream exactly regardless of what id the resumed service assigns the
    /// re-run. 0 = caller does not use reseeding.
    std::uint64_t backend_seed = 0;
    /// Force the job id (0 = service assigns the next one). The resume path
    /// re-runs a pending job UNDER ITS ORIGINAL ID so the journal's eventual
    /// job_completed record marks that job terminal — re-running under a
    /// fresh id would leave the original pending forever. Serial service
    /// only; the concurrent scheduler numbers its own tickets.
    std::uint64_t job_id = 0;
};

/// Unified service configuration (replaces core::ServiceConfig and
/// sched::ConcurrentServiceConfig). The factory picks the implementation
/// from `concurrency`; each implementation reads the subset it honors.
struct ServiceOptions {
    /// Directory for ground_truth.json / metrics.json; empty = in-memory.
    std::string state_dir;
    PipeTuneConfig pipetune{};
    /// Worker slots. <= 1 selects the serial service (jobs run inline on the
    /// caller's thread, FIFO as in §5.1); > 1 selects the concurrent service
    /// with that many worker threads (§7.4 multi-tenancy).
    std::size_t concurrency = 1;
    std::size_t queue_capacity = 64;  ///< concurrent only
    /// Full queue at submit: true = shed the job (submit returns nullopt),
    /// false = block until space. Concurrent only.
    bool reject_when_full = false;
    /// Rewrite the state files after every completed job (crash-safe at job
    /// granularity, like the paper's InfluxDB writes).
    bool persist_after_each_job = true;
    /// Run the §7.2 offline profiling campaign on construction when the
    /// store starts empty (skipped if persisted state is found).
    bool warm_start_on_first_use = false;
    std::vector<workload::Workload> warm_start_workloads{};
    /// Telemetry sink (metrics + spans) threaded through every layer the
    /// service touches. Not owned; null disables instrumentation.
    obs::ObsContext* obs = nullptr;
    /// Write-ahead journal (DESIGN.md §10). When set, the service durably
    /// records job lifecycle (job_submitted / job_completed / job_failed)
    /// and threads the journal into each job's PipeTunePolicy for trial,
    /// epoch and ground-truth records. Not owned; may be null.
    ft::Journal* journal = nullptr;
    /// Retry policy for failed jobs. The serial service retries inline when
    /// the failure is an ft::TransientFailure; the concurrent service
    /// requeues the job (same id, original priority and deadline) through
    /// its scheduler. max_retries = 0 disables retrying.
    ft::RetryPolicy retry{.max_retries = 0};
    /// Job ids are assigned starting at first_job_id + 1. A resumed service
    /// sets this to the highest job id in the recovered journal so the
    /// re-runs' journal records never collide with the original run's ids
    /// (a collision could mark a still-pending job completed on the NEXT
    /// recovery). Serial service only; the concurrent scheduler numbers its
    /// own tickets.
    std::uint64_t first_job_id = 0;
};

/// Implementation-independent lifetime counters (the concurrent service maps
/// sched::SchedulerStats onto this; serial services only ever complete or
/// fail).
struct ServiceStats {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t timed_out = 0;
    std::size_t running = 0;
    std::size_t queued = 0;
    std::size_t max_queue_depth = 0;
};

/// Wall-clock lifecycle of one submitted job, on the service's own clock
/// (seconds since construction). The replay CLI turns these into a
/// cluster::JobRecord trace for response-time summaries.
struct JobTiming {
    std::uint64_t id = 0;
    std::string label;
    double submit_s = 0.0;
    double start_s = -1.0;   ///< -1 = never started (discarded while queued)
    double finish_s = -1.0;  ///< -1 = not terminal yet
    bool ok = false;         ///< completed without error
    std::string error;       ///< failure/discard reason when !ok
};

class TuningService {
public:
    virtual ~TuningService() = default;

    struct Submission {
        std::uint64_t id = 0;
        std::future<PipeTuneJobResult> result;
    };

    /// Admit one HPT job. Serial services run it inline and return a ready
    /// future; concurrent services enqueue it. Returns nullopt only when
    /// admission control sheds the job (reject_when_full and the queue is
    /// full, or the service is shutting down). Job failure travels through
    /// the future as its exception, never through the optional.
    virtual std::optional<Submission> submit(const workload::Workload& workload,
                                             const hpt::HptJobConfig& job_config = {},
                                             SubmitOptions options = {}) = 0;

    /// Blocking convenience: submit + get. Throws if the job was shed or
    /// failed. This is the call sites' spelling of the old serial submit().
    PipeTuneJobResult run(const workload::Workload& workload,
                          const hpt::HptJobConfig& job_config = {}, SubmitOptions options = {});

    /// Block until every admitted job is terminal. No-op for serial services.
    virtual void drain() = 0;

    /// Best-effort cancel: a queued job is discarded (its future reports the
    /// cancellation), a running job gets its cooperative flag set. Serial
    /// services run jobs inline, so there is never anything to cancel and
    /// they return false. A cancelled-while-queued job gets NO terminal
    /// journal record — it stays pending, and `pipetune resume` re-runs it.
    virtual bool cancel(std::uint64_t id) {
        (void)id;
        return false;
    }

    /// Discard every still-queued job (their futures report the discard) and
    /// return how many were dropped. Running jobs are untouched. This is the
    /// fast-drain half of a SIGTERM: running jobs finish and journal their
    /// completion, queued jobs stay journal-pending so a `pipetune resume`
    /// completes the remainder (DESIGN.md §11 overload/drain semantics).
    virtual std::size_t discard_queued() { return 0; }

    /// Snapshot + atomically rewrite the state files (no-op when state_dir is
    /// empty). Also runs after each job when persist_after_each_job is set.
    virtual void persist() const = 0;

    /// Jobs that ran to completion over the service's lifetime.
    virtual std::size_t jobs_served() const = 0;
    virtual ServiceStats stats() const = 0;
    /// Lifecycle timings for every job ever submitted, in id order.
    virtual std::vector<JobTiming> job_timings() const = 0;

    /// Synchronized copies of the cluster state (safe while jobs run).
    virtual GroundTruth ground_truth_snapshot() const = 0;
    virtual metricsdb::TimeSeriesDb metrics_snapshot() const = 0;

    /// Bulk-insert recovered ground-truth entries (ft::Recovery's replay of
    /// completed jobs' gt_record mutations) before any new job runs. Entries
    /// are applied in order through the same record() path a live probe uses.
    virtual void seed_ground_truth(const std::vector<GroundTruthEntry>& entries) = 0;

    /// Persistence paths (empty when running in-memory).
    virtual std::string ground_truth_path() const = 0;
    virtual std::string metrics_path() const = 0;

    /// The telemetry context this service reports into (null = disabled).
    virtual obs::ObsContext* obs() const = 0;
};

/// job_submitted journal payload for one submission — one schema shared by
/// both service implementations, so ft::Recovery and the resume CLI read the
/// same fields either way.
util::Json journal_submit_payload(std::uint64_t job_id, const std::string& label,
                                  const workload::Workload& workload,
                                  const hpt::HptJobConfig& job_config,
                                  const SubmitOptions& options);
/// Inverse of journal_submit_payload (the resume path): rebuild the job
/// config / submit options a recovered job was originally submitted with.
hpt::HptJobConfig job_config_from_journal(const util::Json& payload);
SubmitOptions submit_options_from_journal(const util::Json& payload);

}  // namespace pipetune::core
