#pragma once
// Persistent ground-truth store (paper §5.4): profiles of completed jobs and
// the system configurations found best for them. New jobs query it with
// their early-epoch profile; a confident match short-circuits probing.
//
// Privacy (§5.5): entries carry only low-level counter features and system
// configurations — never the user's model, dataset or hyperparameters.

#include <optional>
#include <vector>

#include "pipetune/mlcore/similarity.hpp"
#include "pipetune/util/json.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::core {

struct GroundTruthEntry {
    std::vector<double> features;  ///< profile feature vector (58 log-rates)
    workload::SystemParams best_system;
    double metric = 0.0;  ///< value of the optimization function under best_system
};

struct GroundTruthConfig {
    std::size_t k = 2;  ///< paper partitions into k = 2 groups
    /// Similarity score required to reuse a stored configuration; below it a
    /// probing phase starts (§5.6). The score is a gaussian confidence of the
    /// query's centroid distance against the model's per-sample inertia.
    double similarity_threshold = 0.15;
    std::size_t min_entries_for_model = 4;  ///< entries needed before matching
    std::size_t refit_interval = 4;         ///< re-cluster every N inserts
    std::uint64_t seed = 1;
};

/// The lookup/record surface of the ground-truth store. PipeTunePolicy talks
/// to this interface so the concurrent scheduler (pipetune::sched) can hand
/// jobs a reader-writer-locked view of one shared GroundTruth instead of the
/// bare object. GroundTruth itself is the unsynchronized implementation.
class GroundTruthStore {
public:
    virtual ~GroundTruthStore() = default;
    virtual std::optional<workload::SystemParams> lookup(const std::vector<double>& features,
                                                         double* score_out = nullptr) const = 0;
    virtual void record(const std::vector<double>& features,
                        const workload::SystemParams& best, double metric) = 0;
    virtual std::size_t size() const = 0;
    virtual bool model_ready() const = 0;
};

class GroundTruth final : public GroundTruthStore {
public:
    explicit GroundTruth(GroundTruthConfig config = {});
    GroundTruth(const GroundTruth&) = default;
    GroundTruth(GroundTruth&&) = default;
    GroundTruth& operator=(const GroundTruth&) = default;
    GroundTruth& operator=(GroundTruth&&) = default;

    /// Known-best configuration for a similar profile, if the similarity
    /// score clears the threshold. `score_out` (optional) receives the score
    /// even on a miss.
    std::optional<workload::SystemParams> lookup(const std::vector<double>& features,
                                                 double* score_out = nullptr) const override;

    /// Store a (profile, best configuration) pair discovered by probing;
    /// triggers re-clustering every `refit_interval` inserts.
    void record(const std::vector<double>& features, const workload::SystemParams& best,
                double metric) override;

    std::size_t size() const override { return entries_.size(); }
    bool model_ready() const override;
    const GroundTruthConfig& config() const { return config_; }
    const std::vector<GroundTruthEntry>& entries() const { return entries_; }

    /// Cluster id of each stored entry under the current model (for Fig 8).
    std::vector<std::size_t> entry_clusters() const;

    // Persistence. try_load is the Result-returning loader (missing file,
    // bad JSON, schema drift all land in the error string); load throws it.
    util::Json to_json() const;
    static GroundTruth from_json(const util::Json& json, GroundTruthConfig config = {});
    void save(const std::string& path) const;
    static util::Result<GroundTruth> try_load(const std::string& path,
                                              GroundTruthConfig config = {});
    static GroundTruth load(const std::string& path, GroundTruthConfig config = {});

private:
    void refit();

    GroundTruthConfig config_;
    std::vector<GroundTruthEntry> entries_;
    mlcore::KMeansSimilarity similarity_;
    std::size_t inserts_since_fit_ = 0;
    bool fitted_ = false;
};

}  // namespace pipetune::core
