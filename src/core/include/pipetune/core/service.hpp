#pragma once
// PipeTuneService — the deployment façade: what §5.2's middleware looks like
// to a cluster operator. One service instance owns the persistent state of a
// cluster (ground-truth store + metrics database, both auto-saved to a state
// directory) and serves HPT jobs one after another, warm-starting each from
// everything the cluster has learned so far.
//
//   core::PipeTuneService service(backend, {.state_dir = "/var/lib/pipetune"});
//   auto result = service.submit(workload::find_workload("lenet-mnist"), {});
//
// The service is intentionally single-threaded per instance (jobs are FIFO in
// the paper, §5.1); share nothing between instances except the state files.

#include <optional>
#include <string>

#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/metricsdb/tsdb.hpp"

namespace pipetune::core {

struct ServiceConfig {
    /// Directory for ground_truth.json and metrics.json; empty = in-memory
    /// only (no persistence).
    std::string state_dir;
    PipeTuneConfig pipetune{};
    /// Run the §7.2 offline profiling campaign on construction when the store
    /// starts empty (skipped if a persisted store is found).
    bool warm_start_on_first_use = false;
    std::vector<workload::Workload> warm_start_workloads{};
};

class PipeTuneService {
public:
    /// Loads persisted state from `config.state_dir` when present; otherwise
    /// starts cold (optionally running the warm-start campaign).
    PipeTuneService(workload::Backend& backend, ServiceConfig config);

    /// Run one HPT job and fold what it learned into the cluster state.
    /// State files are rewritten after every job (crash-safe at job
    /// granularity, like the paper's InfluxDB writes).
    PipeTuneJobResult submit(const workload::Workload& workload,
                             const hpt::HptJobConfig& job_config);

    /// Cluster-lifetime counters.
    std::size_t jobs_served() const { return jobs_served_; }
    const GroundTruth& ground_truth() const { return ground_truth_; }
    const metricsdb::TimeSeriesDb& metrics() const { return metrics_; }

    /// Force a state flush (also happens after every submit()).
    void persist() const;

    /// Paths used for persistence (empty when running in-memory).
    std::string ground_truth_path() const;
    std::string metrics_path() const;

private:
    workload::Backend& backend_;
    ServiceConfig config_;
    GroundTruth ground_truth_;
    metricsdb::TimeSeriesDb metrics_;
    std::size_t jobs_served_ = 0;
};

}  // namespace pipetune::core
