#pragma once
// PipeTuneService — the serial deployment façade: what §5.2's middleware
// looks like to a cluster operator with one tuning slot. One service
// instance owns the persistent state of a cluster (ground-truth store +
// metrics database, both auto-saved to a state directory) and serves HPT
// jobs one after another, warm-starting each from everything the cluster
// has learned so far.
//
//   core::PipeTuneService service(backend, {.state_dir = "/var/lib/pipetune"});
//   auto result = service.run(workload::find_workload("lenet-mnist"), {});
//
// Jobs are FIFO as in the paper (§5.1): submit() executes inline on the
// caller's thread and hands back an already-resolved future, so the
// TuningService surface behaves identically across serial and concurrent
// implementations. For genuine worker-thread concurrency construct the
// service through sched::make_tuning_service with concurrency > 1 instead.

#include <chrono>
#include <optional>
#include <string>

#include "pipetune/core/tuning_service.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/metricsdb/tsdb.hpp"

namespace pipetune::core {

class PipeTuneService final : public TuningService {
public:
    /// Loads persisted state from `options.state_dir` when present; otherwise
    /// starts cold (optionally running the warm-start campaign). Concurrency
    /// fields of ServiceOptions (queue_capacity, reject_when_full) are
    /// ignored here — use the factory for a queued service.
    PipeTuneService(workload::Backend& backend, ServiceOptions options = {});

    /// Runs the job inline; the returned future is already resolved. Never
    /// returns nullopt (a serial service has no queue to overflow).
    std::optional<Submission> submit(const workload::Workload& workload,
                                     const hpt::HptJobConfig& job_config = {},
                                     SubmitOptions options = {}) override;

    void drain() override {}  // nothing is ever in flight

    /// Force a state flush (also happens after every job when
    /// persist_after_each_job is set).
    void persist() const override;

    std::size_t jobs_served() const override { return jobs_served_; }
    ServiceStats stats() const override;
    std::vector<JobTiming> job_timings() const override { return timings_; }

    GroundTruth ground_truth_snapshot() const override { return ground_truth_; }
    metricsdb::TimeSeriesDb metrics_snapshot() const override { return metrics_; }

    /// Replay recovered ground-truth mutations (ft::Recovery) into the store.
    void seed_ground_truth(const std::vector<GroundTruthEntry>& entries) override;

    /// Paths used for persistence (empty when running in-memory).
    std::string ground_truth_path() const override;
    std::string metrics_path() const override;

    obs::ObsContext* obs() const override { return options_.obs; }

    /// Direct views of the owned state (valid between jobs; serial services
    /// never mutate them concurrently with the caller).
    const GroundTruth& ground_truth() const { return ground_truth_; }
    const metricsdb::TimeSeriesDb& metrics() const { return metrics_; }

private:
    double clock_s() const;

    workload::Backend& backend_;
    ServiceOptions options_;
    GroundTruth ground_truth_;
    metricsdb::TimeSeriesDb metrics_;
    std::size_t jobs_served_ = 0;
    std::size_t jobs_failed_ = 0;
    std::uint64_t next_id_ = 0;
    std::vector<JobTiming> timings_;
    std::chrono::steady_clock::time_point epoch_;
    // Instrument references cached at construction (the obs pattern,
    // DESIGN.md §12): per-job/per-flush touches must not pay a registry
    // lookup. Null when options_.obs is null.
    obs::Counter* obs_flush_total_ = nullptr;
    obs::Histogram* obs_flush_seconds_ = nullptr;
    obs::Gauge* obs_points_ = nullptr;
    obs::Counter* obs_jobs_served_ = nullptr;
    obs::Counter* obs_job_retries_ = nullptr;
};

}  // namespace pipetune::core
