#pragma once
// Initial ground-truth construction (paper §5.6 / §7.2): "The probing phase
// profiles a given set of workloads in different system conditions, in order
// to collect sufficient data for a warm start of the ground truth component."
// The paper builds its initial similarity model from an offline campaign over
// memory {4, 8, 16, 32} GB x cores {4, 8, 16} x batch {32, 64, 512, 1024}
// before the evaluation; the evaluation benches replicate that.

#include "pipetune/core/ground_truth.hpp"

namespace pipetune::core {

struct WarmStartConfig {
    /// Batch sizes profiled per workload (paper §7.2).
    std::vector<std::size_t> batch_sizes{32, 64, 512, 1024};
    /// Repetitions per configuration ("we repeat this process twice", §7.2).
    std::size_t repeats = 2;
    GroundTruthConfig ground_truth{};
    std::uint64_t seed = 1;
};

/// Run the offline probing campaign: for every (workload, batch) pair,
/// profile one epoch under the default configuration, measure one epoch per
/// grid configuration, and record the fastest into a fresh GroundTruth.
GroundTruth build_warm_ground_truth(workload::Backend& backend,
                                    const std::vector<workload::Workload>& workloads,
                                    const WarmStartConfig& config = {});

}  // namespace pipetune::core
