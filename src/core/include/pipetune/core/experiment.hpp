#pragma once
// End-to-end experiment drivers: run PipeTune as a complete HPT job and
// compare it against the paper's baselines (the machinery behind Table 2 and
// Figs 9-12).

#include "pipetune/core/pipetune_policy.hpp"
#include "pipetune/hpt/baselines.hpp"

namespace pipetune::core {

struct PipeTuneJobResult {
    hpt::BaselineResult baseline;  ///< tuning + final-training costs
    std::size_t ground_truth_hits = 0;
    std::size_t probes_started = 0;
    std::size_t ground_truth_size = 0;
    /// Per-trial reuse/probe decisions, in resolution order (introspection;
    /// printed by `pipetune tune --verbose`).
    std::vector<PipeTunePolicy::Decision> decisions;
};

/// Run one PipeTune HPT job: HyperBand over the hyperparameter space
/// (objective = accuracy, §5.1) with the PipeTune per-epoch system policy.
/// Pass `shared_ground_truth` to warm-start from previous jobs (multi-tenancy
/// §7.4); otherwise the job builds its ground truth from scratch. The store
/// may be a bare GroundTruth (sequential sharing) or a locked view from
/// sched::SharedClusterState (concurrent sharing).
PipeTuneJobResult run_pipetune(workload::Backend& backend, const workload::Workload& workload,
                               const hpt::HptJobConfig& job_config,
                               PipeTuneConfig pipetune_config = {},
                               GroundTruthStore* shared_ground_truth = nullptr);

/// All four Table 2 rows for one workload on one backend.
struct ApproachComparison {
    hpt::BaselineResult arbitrary;
    hpt::BaselineResult tune_v1;
    hpt::BaselineResult tune_v2;
    PipeTuneJobResult pipetune;
};
ApproachComparison compare_approaches(workload::Backend& backend,
                                      const workload::Workload& workload,
                                      const hpt::HptJobConfig& job_config,
                                      PipeTuneConfig pipetune_config = {});

}  // namespace pipetune::core
