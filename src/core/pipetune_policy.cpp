#include "pipetune/core/pipetune_policy.hpp"
#include "pipetune/ft/codec.hpp"
#include "pipetune/ft/journal.hpp"
#include "pipetune/util/logging.hpp"

#include <limits>
#include <stdexcept>

namespace pipetune::core {

using workload::EpochResult;
using workload::HyperParams;
using workload::SystemParams;
using workload::Workload;

PipeTunePolicy::PipeTunePolicy(PipeTuneConfig config, GroundTruthStore* shared_ground_truth)
    : config_(config), shared_(shared_ground_truth) {
    if (config.profiling_epochs == 0)
        throw std::invalid_argument("PipeTunePolicy: need at least one profiling epoch");
    if (shared_ == nullptr) owned_ = std::make_unique<GroundTruth>(config.ground_truth);
    // Continue the sink's pseudo-time after what earlier jobs appended (the
    // TSDB requires non-decreasing times within a series).
    if (config_.metrics != nullptr)
        next_metric_time_ = config_.metrics->count({.series = "epoch_duration"});
    if (config_.obs != nullptr) {
        auto& registry = config_.obs->metrics();
        obs_hits_ = &registry.counter("pipetune_core_ground_truth_hits_total", {},
                                      "Trials resolved by similarity reuse (Algorithm 1 hit)");
        obs_probes_ = &registry.counter("pipetune_core_probes_started_total", {},
                                        "Trials that fell back to system-parameter probing");
        obs_probe_epochs_ = &registry.counter("pipetune_core_probe_epochs_total", {},
                                              "Epochs spent measuring probe configurations");
        obs_store_size_ = &registry.gauge("pipetune_core_ground_truth_size", {},
                                          "Entries in the ground-truth store");
    }
}

GroundTruth& PipeTunePolicy::ground_truth() {
    if (owned_) return *owned_;
    if (auto* concrete = dynamic_cast<GroundTruth*>(shared_)) return *concrete;
    throw std::logic_error(
        "PipeTunePolicy::ground_truth: shared store is a type-erased view; use store()");
}

const GroundTruth& PipeTunePolicy::ground_truth() const {
    return const_cast<PipeTunePolicy*>(this)->ground_truth();
}

std::vector<double> PipeTunePolicy::features_of(const std::vector<EpochResult>& history,
                                                std::size_t profiling_epochs) {
    std::vector<perf::EpochProfile> profiles;
    const std::size_t count = std::min(profiling_epochs, history.size());
    for (std::size_t i = 0; i < count; ++i) {
        perf::EpochProfile profile;
        profile.epoch = history[i].epoch;
        profile.events = history[i].counters;
        profile.duration_s = history[i].duration_s;
        profile.energy_j = history[i].energy_j;
        profiles.push_back(profile);
    }
    return perf::mean_features(profiles);
}

void PipeTunePolicy::resolve_after_profiling(std::uint64_t trial_id, TrialPlan& plan,
                                             const std::vector<EpochResult>& history) {
    plan.features = features_of(history, config_.profiling_epochs);
    double score = 0.0;
    // The "cluster" phase span: the similarity lookup against the store.
    obs::Tracer::Span lookup_span;
    if (config_.obs != nullptr) {
        lookup_span = config_.obs->tracer().span("cluster", "core");
        lookup_span.arg("trial", std::to_string(trial_id));
    }
    const auto known = store().lookup(plan.features, &score);
    if (lookup_span.active()) lookup_span.arg("decision", known ? "hit" : "miss");
    lookup_span.end();
    PT_LOG_DEBUG("pipetune") << "ground-truth lookup: score=" << score
                             << " store=" << store().size()
                             << (known ? " HIT" : " MISS");
    if (obs_store_size_ != nullptr)
        obs_store_size_->set(static_cast<double>(store().size()));
    Decision decision;
    decision.trial_id = trial_id;
    decision.similarity_score = score;
    if (known) {
        // Algorithm 1, line 9-10: similarity within the confidence level —
        // apply the known-best configuration, no sub-trials needed.
        plan.mode = Mode::kApplied;
        plan.applied = *known;
        ++hits_;
        if (obs_hits_ != nullptr) obs_hits_->inc();
        decision.hit = true;
        decision.applied = *known;
        decision.applied_known = true;
    } else {
        // Line 11-15: probe each system configuration for one epoch.
        plan.mode = Mode::kProbing;
        plan.probe_cursor = 0;
        ++probes_;
        if (obs_probes_ != nullptr) obs_probes_->inc();
        if (config_.obs != nullptr) {
            plan.probe_span = config_.obs->tracer().span("probe", "core");
            plan.probe_span.arg("trial", std::to_string(trial_id));
            // The probe stays open across trials (parked in the plan) and may
            // close on a different worker thread; off the nesting stack now.
            plan.probe_span.detach();
        }
    }
    plan.decision_index = decisions_.size();
    decisions_.push_back(decision);
}

SystemParams PipeTunePolicy::best_probed(const TrialPlan& plan,
                                         const std::vector<EpochResult>& history,
                                         double* metric_out) const {
    // Probe epochs occupy history indices [probe_first_epoch-1, ...).
    double best_metric = std::numeric_limits<double>::max();
    SystemParams best = workload::default_system_params();
    for (std::size_t i = plan.probe_first_epoch - 1; i < history.size(); ++i) {
        const EpochResult& epoch = history[i];
        const double metric = config_.probe_objective == PipeTuneConfig::ProbeObjective::kDuration
                                  ? epoch.duration_s
                                  : epoch.energy_j;
        if (metric < best_metric) {
            best_metric = metric;
            best = epoch.system;
        }
    }
    if (metric_out != nullptr) *metric_out = best_metric;
    return best;
}

void PipeTunePolicy::log_epochs(std::uint64_t trial_id, TrialPlan& plan,
                                const std::vector<EpochResult>& history) {
    if (config_.metrics == nullptr) return;
    const char* phase = plan.mode == Mode::kProfiling  ? "profiling"
                        : plan.mode == Mode::kProbing  ? "probing"
                                                       : "tuned";
    for (; plan.metrics_logged < history.size(); ++plan.metrics_logged) {
        const EpochResult& result = history[plan.metrics_logged];
        const metricsdb::TagSet tags{{"trial", std::to_string(trial_id)},
                                     {"epoch", std::to_string(result.epoch)},
                                     {"phase", phase},
                                     {"system", result.system.to_string()}};
        const double t = static_cast<double>(next_metric_time_++);
        config_.metrics->append("epoch_duration", t, result.duration_s, tags);
        config_.metrics->append("epoch_energy", t, result.energy_j, tags);
        config_.metrics->append("epoch_accuracy", t, result.accuracy, tags);
    }
}

void PipeTunePolicy::journal_epochs(std::uint64_t trial_id, TrialPlan& plan,
                                    const std::vector<EpochResult>& history) {
    if (config_.journal == nullptr) return;
    if (!plan.journal_started) {
        util::Json payload = util::Json::object();
        payload["job_id"] = config_.journal_job_id;
        payload["trial"] = trial_id;
        (void)config_.journal->append(ft::record_type::kTrialStarted, std::move(payload));
        plan.journal_started = true;
    }
    for (; plan.journal_logged < history.size(); ++plan.journal_logged) {
        const EpochResult& result = history[plan.journal_logged];
        util::Json payload = util::Json::object();
        payload["job_id"] = config_.journal_job_id;
        payload["trial"] = trial_id;
        payload["epoch"] = result.epoch;
        payload["duration_s"] = result.duration_s;
        payload["accuracy"] = result.accuracy;
        payload["system"] = ft::system_to_json(result.system);
        (void)config_.journal->append(ft::record_type::kEpochCompleted, std::move(payload));
    }
}

void PipeTunePolicy::journal_gt_record(const std::vector<double>& features,
                                       const SystemParams& best, double metric) {
    if (config_.journal == nullptr) return;
    util::Json payload = util::Json::object();
    payload["job_id"] = config_.journal_job_id;
    payload["features"] = util::Json::array_of(features);
    payload["best_system"] = ft::system_to_json(best);
    payload["metric"] = metric;
    (void)config_.journal->append(ft::record_type::kGtRecord, std::move(payload));
}

SystemParams PipeTunePolicy::choose(std::uint64_t trial_id, const Workload& /*workload*/,
                                    const HyperParams& /*hyper*/, std::size_t epoch,
                                    const std::vector<EpochResult>& history,
                                    const SystemParams& trial_default) {
    TrialPlan& plan = plans_[trial_id];
    log_epochs(trial_id, plan, history);
    journal_epochs(trial_id, plan, history);

    // Epochs 1..P: profile under the trial default.
    if (epoch <= config_.profiling_epochs) return trial_default;

    // First post-profiling epoch: decide between reuse and probing.
    if (plan.mode == Mode::kProfiling) {
        resolve_after_profiling(trial_id, plan, history);
        if (plan.mode == Mode::kProbing) plan.probe_first_epoch = epoch;
    }

    if (plan.mode == Mode::kApplied) return *plan.applied;

    // Probing: one configuration per epoch (§5.2), staged per parameter so
    // the search is O(#cores values + #memory values), not the cross-product.
    if (plan.probe_sequence.empty()) {
        for (std::size_t cores : {4, 8, 16})
            plan.probe_sequence.push_back({.cores = cores,
                                           .memory_gb = trial_default.memory_gb});
    }
    const std::size_t cores_stage = 3;
    if (plan.probe_cursor >= cores_stage && !plan.memory_stage_planned) {
        // Stage 2: sweep memory at the cores value stage 1 measured best,
        // descending so memory starvation is met last and can cut the stage.
        double dummy = 0.0;
        const SystemParams stage1_best = best_probed(plan, history, &dummy);
        for (std::size_t mem : {32, 16, 8, 4})
            if (mem != trial_default.memory_gb)
                plan.probe_sequence.push_back({.cores = stage1_best.cores, .memory_gb = mem});
        plan.memory_stage_planned = true;
    }
    // Adaptive cut: memory only hurts below the working set, and duration is
    // monotone in allocated memory — once a memory probe comes back clearly
    // slower than the best measurement, smaller allocations can only be
    // worse, so the remaining memory probes are skipped.
    if (plan.memory_stage_planned && !plan.frequency_stage_planned &&
        plan.probe_cursor > cores_stage && !history.empty()) {
        double best_duration = std::numeric_limits<double>::max();
        for (std::size_t i = plan.probe_first_epoch - 1; i + 1 < history.size(); ++i)
            best_duration = std::min(best_duration, history[i].duration_s);
        if (history.back().duration_s > 1.15 * best_duration)
            plan.probe_cursor = plan.probe_sequence.size();
    }
    // Optional stage 3: DVFS steps at the best (cores, memory) so far.
    if (config_.tune_frequency && plan.memory_stage_planned && !plan.frequency_stage_planned &&
        plan.probe_cursor >= plan.probe_sequence.size()) {
        double dummy = 0.0;
        const SystemParams stage2_best = best_probed(plan, history, &dummy);
        plan.probe_cursor = plan.probe_sequence.size();
        for (const double ghz : workload::frequency_steps_ghz()) {
            if (ghz == SystemParams::kBaseFrequencyGhz) continue;
            SystemParams candidate = stage2_best;
            candidate.frequency_ghz = ghz;
            plan.probe_sequence.push_back(candidate);
        }
        plan.frequency_stage_planned = true;
    }
    if (plan.probe_cursor < plan.probe_sequence.size()) {
        if (obs_probe_epochs_ != nullptr) obs_probe_epochs_->inc();
        return plan.probe_sequence[plan.probe_cursor++];
    }

    double metric = 0.0;
    const SystemParams winner = best_probed(plan, history, &metric);
    if (!plan.recorded) {
        journal_gt_record(plan.features, winner, metric);
        store().record(plan.features, winner, metric);
        plan.recorded = true;
        if (obs_store_size_ != nullptr)
            obs_store_size_->set(static_cast<double>(store().size()));
    }
    if (plan.probe_span.active()) plan.probe_span.arg("winner", winner.to_string());
    plan.probe_span.end();
    plan.mode = Mode::kApplied;
    plan.applied = winner;
    if (plan.decision_index < decisions_.size()) {
        decisions_[plan.decision_index].applied = winner;
        decisions_[plan.decision_index].applied_known = true;
    }
    return winner;
}

double PipeTunePolicy::epoch_overhead_s(std::uint64_t trial_id, std::size_t epoch,
                                        double epoch_duration_s) {
    if (epoch <= config_.profiling_epochs)
        return config_.profiling_overhead_fraction * epoch_duration_s;
    const auto it = plans_.find(trial_id);
    if (it != plans_.end() && it->second.mode == Mode::kProbing)
        return config_.probing_overhead_fraction * epoch_duration_s;
    return 0.0;
}

void PipeTunePolicy::trial_finished(std::uint64_t trial_id, const Workload& /*workload*/,
                                    const HyperParams& /*hyper*/,
                                    const std::vector<EpochResult>& history) {
    auto it = plans_.find(trial_id);
    if (it == plans_.end()) return;
    TrialPlan& plan = it->second;
    log_epochs(trial_id, plan, history);
    journal_epochs(trial_id, plan, history);
    // A trial that ended mid-probe still contributes what it learned —
    // provided it completed at least the full cores stage. Recording the
    // "best" of a single probe epoch would enshrine whatever configuration
    // happened to be first in the schedule.
    const std::size_t probe_epochs_done =
        plan.probe_first_epoch > 0 && history.size() + 1 >= plan.probe_first_epoch
            ? history.size() + 1 - plan.probe_first_epoch
            : 0;
    if (plan.mode == Mode::kProbing && !plan.recorded && probe_epochs_done >= 3) {
        double metric = 0.0;
        const SystemParams winner = best_probed(plan, history, &metric);
        journal_gt_record(plan.features, winner, metric);
        store().record(plan.features, winner, metric);
        plan.recorded = true;
        if (obs_store_size_ != nullptr)
            obs_store_size_->set(static_cast<double>(store().size()));
        if (plan.decision_index < decisions_.size()) {
            decisions_[plan.decision_index].applied = winner;
            decisions_[plan.decision_index].applied_known = true;
        }
    }
    if (config_.journal != nullptr) {
        util::Json payload = util::Json::object();
        payload["job_id"] = config_.journal_job_id;
        payload["trial"] = trial_id;
        payload["epochs"] = history.size();
        (void)config_.journal->append(ft::record_type::kTrialFinished, std::move(payload));
    }
    plan.probe_span.end();  // a trial retiring mid-probe closes its phase
    plans_.erase(it);
}

}  // namespace pipetune::core
