#include "pipetune/core/experiment.hpp"

namespace pipetune::core {

PipeTuneJobResult run_pipetune(workload::Backend& backend, const workload::Workload& workload,
                               const hpt::HptJobConfig& job_config,
                               PipeTuneConfig pipetune_config,
                               GroundTruthStore* shared_ground_truth) {
    PipeTunePolicy policy(pipetune_config, shared_ground_truth);
    PipeTuneJobResult result;
    // Same search space and objective as Tune V1: PipeTune is "an extension
    // of pure hyperparameter tuning" (§2) — the system dimension is handled
    // by the policy, not the searcher.
    result.baseline =
        hpt::run_hyperband_job(backend, workload, hpt::hyperband_hyperparameter_space(),
                               hpt::Objective::kAccuracy, job_config, &policy);
    result.ground_truth_hits = policy.ground_truth_hits();
    result.probes_started = policy.probes_started();
    result.ground_truth_size = policy.store().size();
    result.decisions = policy.decisions();
    return result;
}

ApproachComparison compare_approaches(workload::Backend& backend,
                                      const workload::Workload& workload,
                                      const hpt::HptJobConfig& job_config,
                                      PipeTuneConfig pipetune_config) {
    ApproachComparison comparison;
    comparison.arbitrary = hpt::run_arbitrary(backend, workload, job_config);
    comparison.tune_v1 = hpt::run_tune_v1(backend, workload, job_config);
    comparison.tune_v2 = hpt::run_tune_v2(backend, workload, job_config);
    comparison.pipetune = run_pipetune(backend, workload, job_config, pipetune_config);
    return comparison;
}

}  // namespace pipetune::core
