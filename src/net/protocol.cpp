#include "pipetune/net/protocol.hpp"

namespace pipetune::net {

util::Result<Request> parse_request(const std::string& frame) {
    auto parsed = util::Json::try_parse(frame);
    if (!parsed) return util::Result<Request>::failure("request is not valid JSON: " + parsed.error());
    const util::Json& doc = parsed.value();
    if (!doc.is_object()) return util::Result<Request>::failure("request must be a JSON object");
    if (!doc.contains("method") || !doc.at("method").is_string())
        return util::Result<Request>::failure("request is missing a string 'method' field");
    Request request;
    if (doc.contains("id")) {
        if (!doc.at("id").is_number() || doc.at("id").as_number() < 0)
            return util::Result<Request>::failure("request 'id' must be a non-negative number");
        request.id = static_cast<std::uint64_t>(doc.at("id").as_number());
    }
    request.method = doc.at("method").as_string();
    request.token = doc.get_string("token", "");
    if (doc.contains("params")) {
        if (!doc.at("params").is_object())
            return util::Result<Request>::failure("request 'params' must be an object");
        request.params = doc.at("params");
    } else {
        request.params = util::Json::object();
    }
    return request;
}

std::string ok_response(std::uint64_t id, util::Json result) {
    util::Json doc = util::Json::object();
    doc["id"] = id;
    doc["status"] = status::kOk;
    doc["result"] = std::move(result);
    return doc.dump();
}

std::string error_response(std::uint64_t id, int status_code, const std::string& message) {
    util::Json doc = util::Json::object();
    doc["id"] = id;
    doc["status"] = status_code;
    doc["error"] = message;
    return doc.dump();
}

util::Result<Response> parse_response(const std::string& frame) {
    auto parsed = util::Json::try_parse(frame);
    if (!parsed)
        return util::Result<Response>::failure("response is not valid JSON: " + parsed.error());
    const util::Json& doc = parsed.value();
    if (!doc.is_object() || !doc.contains("status") || !doc.at("status").is_number())
        return util::Result<Response>::failure("response is missing a numeric 'status' field");
    Response response;
    response.id = static_cast<std::uint64_t>(doc.get_number("id", 0.0));
    response.status = static_cast<int>(doc.at("status").as_number());
    if (doc.contains("result")) response.result = doc.at("result");
    response.error = doc.get_string("error", "");
    return response;
}

util::Json job_result_to_json(const core::PipeTuneJobResult& result) {
    util::Json doc = util::Json::object();
    doc["best_hyper"] = result.baseline.best_hyper.to_string();
    doc["final_system"] = result.baseline.final_system.to_string();
    doc["final_accuracy"] = result.baseline.final_accuracy;
    doc["training_time_s"] = result.baseline.training_time_s;
    doc["tuning_duration_s"] = result.baseline.tuning.tuning_duration_s;
    doc["tuning_energy_j"] = result.baseline.tuning.tuning_energy_j;
    doc["trials"] = result.baseline.tuning.trials;
    doc["epochs"] = result.baseline.tuning.epochs;
    doc["ground_truth_hits"] = result.ground_truth_hits;
    doc["probes_started"] = result.probes_started;
    doc["ground_truth_size"] = result.ground_truth_size;
    doc["decisions"] = result.decisions.size();
    return doc;
}

util::Json service_stats_to_json(const core::ServiceStats& stats) {
    util::Json doc = util::Json::object();
    doc["submitted"] = stats.submitted;
    doc["completed"] = stats.completed;
    doc["failed"] = stats.failed;
    doc["cancelled"] = stats.cancelled;
    doc["timed_out"] = stats.timed_out;
    doc["running"] = stats.running;
    doc["queued"] = stats.queued;
    doc["max_queue_depth"] = stats.max_queue_depth;
    return doc;
}

util::Json job_timing_to_json(const core::JobTiming& timing) {
    util::Json doc = util::Json::object();
    doc["job_id"] = timing.id;
    doc["label"] = timing.label;
    const char* state = timing.finish_s >= 0 ? (timing.ok ? "completed" : "failed")
                        : timing.start_s >= 0 ? "running"
                                              : "queued";
    doc["state"] = state;
    doc["submit_s"] = timing.submit_s;
    doc["start_s"] = timing.start_s;
    doc["finish_s"] = timing.finish_s;
    doc["ok"] = timing.ok;
    if (!timing.error.empty()) doc["error"] = timing.error;
    return doc;
}

}  // namespace pipetune::net
