#include "pipetune/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "pipetune/net/framing.hpp"

namespace pipetune::net {

util::Result<Client> Client::connect(const std::string& host, std::uint16_t port,
                                     double timeout_s) {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return util::Result<Client>::failure(std::string("socket: ") + std::strerror(errno));

    if (timeout_s > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<long>(timeout_s);
        tv.tv_usec = static_cast<long>((timeout_s - std::floor(timeout_s)) * 1e6);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return util::Result<Client>::failure("bad address '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        std::string message = "connect " + host + ":" + std::to_string(port) + ": " +
                              std::strerror(errno);
        ::close(fd);
        return util::Result<Client>::failure(message);
    }
    Client client;
    client.fd_ = fd;
    return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_), inbuf_(std::move(other.inbuf_)) {
    other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        next_id_ = other.next_id_;
        inbuf_ = std::move(other.inbuf_);
        other.fd_ = -1;
    }
    return *this;
}

Client::~Client() { close(); }

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

util::Result<Response> Client::call(const std::string& method, util::Json params,
                                    const std::string& token) {
    if (fd_ < 0) return util::Result<Response>::failure("client not connected");
    std::uint64_t id = next_id_++;
    util::Json request = util::Json::object();
    request["id"] = id;
    request["method"] = method;
    if (!token.empty()) request["token"] = token;
    request["params"] = std::move(params);

    auto sent = raw_send(encode_frame(request.dump()));
    if (!sent) return util::Result<Response>::failure(sent.error());

    auto frame = read_frame();
    if (!frame) return util::Result<Response>::failure(frame.error());
    auto response = parse_response(frame.value());
    if (!response) return response;
    if (response.value().id != id)
        return util::Result<Response>::failure(
            "response id " + std::to_string(response.value().id) + " does not match request id " +
            std::to_string(id));
    return response;
}

util::Result<void> Client::raw_send(const std::string& bytes) {
    if (fd_ < 0) return util::Result<void>::failure("client not connected");
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return util::Result<void>::failure(std::string("send: ") + std::strerror(errno));
    }
    return util::Result<void>::success();
}

util::Result<std::string> Client::read_frame() {
    if (fd_ < 0) return util::Result<std::string>::failure("client not connected");
    while (true) {
        std::size_t pos = inbuf_.find('\n');
        if (pos != std::string::npos) {
            std::string frame = inbuf_.substr(0, pos);
            inbuf_.erase(0, pos + 1);
            if (!frame.empty() && frame.back() == '\r') frame.pop_back();
            return frame;
        }
        char buf[16384];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            inbuf_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) return util::Result<std::string>::failure("connection closed by server");
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return util::Result<std::string>::failure("read timed out waiting for a frame");
        return util::Result<std::string>::failure(std::string("recv: ") + std::strerror(errno));
    }
}

}  // namespace pipetune::net
