#include "pipetune/net/framing.hpp"

#include <stdexcept>

namespace pipetune::net {

FrameReader::Event FrameReader::next(std::string* frame) {
    while (true) {
        const std::size_t newline = buffer_.find('\n');
        if (discarding_) {
            if (newline == std::string::npos) {
                buffer_.clear();  // still inside the oversized line
                return Event::kNeedMore;
            }
            buffer_.erase(0, newline + 1);
            discarding_ = false;
            continue;  // resume scanning at the line after the oversized one
        }
        if (newline == std::string::npos) {
            // An unterminated line longer than the cap can never become a
            // valid frame; report it now so the caller can reply 413 instead
            // of buffering a hostile peer's infinite line.
            if (buffer_.size() >= max_frame_bytes_) {
                buffer_.clear();
                discarding_ = true;
                return Event::kOversized;
            }
            return Event::kNeedMore;
        }
        if (newline + 1 > max_frame_bytes_) {
            buffer_.erase(0, newline + 1);  // complete but over the cap
            return Event::kOversized;
        }
        if (frame != nullptr) {
            frame->assign(buffer_, 0, newline);
            if (!frame->empty() && frame->back() == '\r') frame->pop_back();
        }
        buffer_.erase(0, newline + 1);
        return Event::kFrame;
    }
}

std::string encode_frame(const std::string& payload) {
    if (payload.find('\n') != std::string::npos)
        throw std::invalid_argument("net::encode_frame: payload contains a newline");
    std::string out;
    out.reserve(payload.size() + 1);
    out.append(payload);
    out.push_back('\n');
    return out;
}

}  // namespace pipetune::net
