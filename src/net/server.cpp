#include "pipetune/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "pipetune/util/build_info.hpp"
#include "pipetune/util/logging.hpp"
#include "pipetune/workload/types.hpp"

namespace pipetune::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

core::SubmitPriority parse_priority(const std::string& text, core::SubmitPriority fallback) {
    if (text == "high") return core::SubmitPriority::kHigh;
    if (text == "normal") return core::SubmitPriority::kNormal;
    if (text == "batch") return core::SubmitPriority::kBatch;
    return fallback;
}

}  // namespace

TuningServer::TuningServer(ServerConfig config) : config_(std::move(config)) {
    if (config_.service == nullptr)
        throw std::invalid_argument("TuningServer: config.service must not be null");
    if (config_.max_frame_bytes == 0) config_.max_frame_bytes = kDefaultMaxFrameBytes;
    if (config_.obs != nullptr) {
        auto& m = config_.obs->metrics();
        obs_connections_ = &m.counter("pipetune_net_connections_total", {},
                                      "Accepted TCP connections");
        obs_active_connections_ =
            &m.gauge("pipetune_net_active_connections", {}, "Currently open connections");
        obs_requests_ = &m.counter("pipetune_net_requests_total", {}, "Parsed request frames");
        obs_bad_frames_ =
            &m.counter("pipetune_net_bad_frames_total", {}, "Frames rejected as unparsable");
        obs_oversized_ = &m.counter("pipetune_net_oversized_frames_total", {},
                                    "Lines discarded for exceeding the frame cap");
        obs_auth_failures_ =
            &m.counter("pipetune_net_auth_failures_total", {}, "Requests with a bad token");
        obs_reject_quota_ = &m.counter("pipetune_net_rejects_total", {{"reason", "quota"}},
                                       "Submits rejected by admission control");
        obs_reject_capacity_ = &m.counter("pipetune_net_rejects_total", {{"reason", "capacity"}},
                                          "Submits rejected by admission control");
        obs_reject_draining_ = &m.counter("pipetune_net_rejects_total", {{"reason", "draining"}},
                                          "Submits rejected by admission control");
        obs_http_ = &m.counter("pipetune_net_http_requests_total", {},
                               "HTTP requests served (GET /metrics)");
        obs_submit_latency_ = &m.histogram(
            "pipetune_net_submit_latency_seconds",
            {0.001, 0.005, 0.02, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0}, {},
            "Submit request receipt to settled response");
    }
}

TuningServer::~TuningServer() {
    if (io_thread_.joinable() || dispatch_thread_.joinable() || pump_thread_.joinable()) {
        request_stop(DrainMode::kFast);
        wait();
    }
}

util::Result<void> TuningServer::start() {
    if (io_thread_.joinable()) return util::Result<void>::failure("server already started");

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        return util::Result<void>::failure(std::string("socket: ") + std::strerror(errno));

    auto fail = [this](const std::string& what) {
        std::string message = what + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) ::close(listen_fd_);
        if (epoll_fd_ >= 0) ::close(epoll_fd_);
        if (wake_fd_ >= 0) ::close(wake_fd_);
        listen_fd_ = epoll_fd_ = wake_fd_ = -1;
        return util::Result<void>::failure(message);
    };

    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
        return fail("inet_pton '" + config_.bind_address + "'");
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        return fail("bind " + config_.bind_address + ":" + std::to_string(config_.port));
    if (::listen(listen_fd_, 128) != 0) return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        return fail("getsockname");
    bound_port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return fail("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) return fail("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) return fail("epoll_ctl listen");
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) return fail("epoll_ctl wake");

    stop_requested_.store(false, std::memory_order_release);
    draining_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    io_thread_ = std::thread([this] { io_loop(); });
    dispatch_thread_ = std::thread([this] { dispatch_loop(); });
    pump_thread_ = std::thread([this] { pump_loop(); });
    PT_LOG_INFO("net") << "pipetune serve listening on " << config_.bind_address << ":"
                       << bound_port_;
    return util::Result<void>::success();
}

void TuningServer::request_stop(DrainMode mode) {
    int expected = 0;
    stop_mode_.compare_exchange_strong(expected, mode == DrainMode::kFull ? 1 : 2);
    stop_requested_.store(true, std::memory_order_release);
    if (wake_fd_ >= 0) {
        std::uint64_t n = 1;
        // Best effort; the IO loop's epoll timeout notices the flag anyway.
        [[maybe_unused]] ssize_t rc = ::write(wake_fd_, &n, sizeof(n));
    }
}

void TuningServer::wait() {
    if (io_thread_.joinable()) io_thread_.join();
    {
        std::lock_guard<std::mutex> lock(dispatch_mutex_);
        dispatch_stop_ = true;
    }
    dispatch_cv_.notify_all();
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pump_stop_ = true;
    }
    pending_cv_.notify_all();
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    if (pump_thread_.joinable()) pump_thread_.join();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
}

void TuningServer::stop(DrainMode mode) {
    request_stop(mode);
    wait();
}

TuningServer::Counters TuningServer::counters() const {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    return counters_;
}

// ---------------------------------------------------------------- IO thread

void TuningServer::io_loop() {
    std::vector<epoll_event> events(64);
    bool stopping = false;
    while (true) {
        int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), 50);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            std::uint32_t mask = events[i].events;
            if (fd == wake_fd_) {
                std::uint64_t drainv = 0;
                while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
                }
                continue;
            }
            if (fd == listen_fd_) {
                accept_ready();
                continue;
            }
            auto it = connections_.find(fd);
            if (it == connections_.end()) continue;  // closed earlier this batch
            Connection& conn = it->second;
            if (conn.dead) continue;
            if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(conn);
                continue;
            }
            if ((mask & EPOLLOUT) != 0) handle_writable(conn);
            if (!conn.dead && (mask & EPOLLIN) != 0) handle_readable(conn);
        }
        drain_outbound();
        sweep_dead();
        if (!stopping && stop_requested_.load(std::memory_order_acquire)) {
            stopping = true;
            begin_stop();
        }
        if (stopping && work_done()) break;
    }

    // Final flush: give every connection a bounded chance to receive the
    // bytes already queued for it (e.g. the `drain` acknowledgement), then
    // close everything.
    drain_outbound();
    for (auto& [fd, conn] : connections_) {
        if (!conn.dead) final_flush(conn);
        if (!conn.dead) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
            ::close(conn.fd);
            conn.dead = true;
        }
    }
    connections_.clear();
    conn_fd_by_id_.clear();
    dead_fds_.clear();
    if (obs_active_connections_ != nullptr) obs_active_connections_->set(0.0);
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    running_.store(false, std::memory_order_release);
}

void TuningServer::accept_ready() {
    while (true) {
        int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) return;  // EAGAIN (or a transient error): done for now
        if (connections_.size() >= config_.max_connections) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        // The kernel reuses the lowest free fd: a connection closed earlier in
        // THIS event batch (still in the map as dead, swept only afterwards)
        // can hand its number to this accept. Evict the stale entry now or
        // the emplace below would silently fail and the new connection would
        // never be read.
        auto stale = connections_.find(fd);
        if (stale != connections_.end()) {
            conn_fd_by_id_.erase(stale->second.id);
            connections_.erase(stale);
        }

        Connection conn;
        conn.fd = fd;
        conn.id = next_conn_id_++;
        conn.reader = FrameReader(config_.max_frame_bytes);

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conn_fd_by_id_[conn.id] = fd;
        connections_.emplace(fd, std::move(conn));
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            ++counters_.connections;
        }
        if (obs_connections_ != nullptr) obs_connections_->inc();
        if (obs_active_connections_ != nullptr)
            obs_active_connections_->set(static_cast<double>(connections_.size()));
    }
}

void TuningServer::handle_readable(Connection& conn) {
    char buf[65536];
    while (true) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            if (!conn.decided) {
                conn.sniff.append(buf, static_cast<std::size_t>(n));
                if (conn.sniff.size() >= 4 || conn.sniff.find('\n') != std::string::npos) {
                    conn.http = conn.sniff.rfind("GET ", 0) == 0;
                    conn.decided = true;
                    if (conn.http) {
                        conn.http_buf = std::move(conn.sniff);
                    } else {
                        conn.reader.feed(conn.sniff.data(), conn.sniff.size());
                    }
                    conn.sniff.clear();
                }
            } else if (conn.http) {
                conn.http_buf.append(buf, static_cast<std::size_t>(n));
            } else {
                conn.reader.feed(buf, static_cast<std::size_t>(n));
            }
            continue;
        }
        if (n == 0) {
            close_connection(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_connection(conn);
        return;
    }
    if (!conn.decided) return;
    if (conn.http) {
        process_http(conn);
    } else {
        process_frames(conn);
    }
}

void TuningServer::handle_writable(Connection& conn) { flush(conn); }

void TuningServer::process_frames(Connection& conn) {
    std::string frame;
    while (!conn.dead) {
        FrameReader::Event event = conn.reader.next(&frame);
        if (event == FrameReader::Event::kNeedMore) break;
        if (event == FrameReader::Event::kOversized) {
            {
                std::lock_guard<std::mutex> lock(counters_mutex_);
                ++counters_.oversized_frames;
            }
            if (obs_oversized_ != nullptr) obs_oversized_->inc();
            send_frame(conn,
                       error_response(0, status::kFrameTooLarge,
                                      "frame exceeds " + std::to_string(config_.max_frame_bytes) +
                                          " bytes"));
            continue;
        }
        dispatch_frame(conn, frame);
    }
}

void TuningServer::process_http(Connection& conn) {
    // One request per connection, HTTP/1.0 style: wait for the blank line,
    // answer, close. Headers are irrelevant to us.
    bool complete = conn.http_buf.find("\r\n\r\n") != std::string::npos ||
                    conn.http_buf.find("\n\n") != std::string::npos;
    if (!complete) {
        if (conn.http_buf.size() > 16384) close_connection(conn);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.http_requests;
    }
    if (obs_http_ != nullptr) obs_http_->inc();

    std::size_t line_end = conn.http_buf.find_first_of("\r\n");
    std::string request_line = conn.http_buf.substr(0, line_end);
    std::size_t path_begin = request_line.find(' ');
    std::size_t path_end =
        path_begin == std::string::npos ? std::string::npos : request_line.find(' ', path_begin + 1);
    std::string path = path_begin == std::string::npos
                           ? std::string()
                           : request_line.substr(path_begin + 1, path_end == std::string::npos
                                                                     ? std::string::npos
                                                                     : path_end - path_begin - 1);

    std::string body;
    std::string status_line;
    if (path == "/metrics") {
        status_line = "HTTP/1.0 200 OK";
        body = config_.obs != nullptr ? config_.obs->metrics().to_prometheus()
                                      : "# metrics disabled (server started without --obs)\n";
    } else {
        status_line = "HTTP/1.0 404 Not Found";
        body = "not found: only GET /metrics is served here\n";
    }
    std::string response = status_line +
                           "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    conn.http_buf.clear();
    conn.outbox += response;
    conn.close_after_flush = true;
    flush(conn);
}

void TuningServer::dispatch_frame(Connection& conn, const std::string& frame) {
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.requests;
    }
    if (obs_requests_ != nullptr) obs_requests_->inc();

    auto parsed = parse_request(frame);
    if (!parsed) {
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            ++counters_.bad_frames;
        }
        if (obs_bad_frames_ != nullptr) obs_bad_frames_->inc();
        send_frame(conn, error_response(0, status::kBadRequest, parsed.error()));
        return;
    }
    const Request& req = parsed.value();

    // ping/version answer before auth so probes and health checks need no token.
    if (req.method == method::kPing) {
        util::Json body = util::Json::object();
        body["pong"] = true;
        body["draining"] = draining();
        send_frame(conn, ok_response(req.id, std::move(body)));
        return;
    }
    if (req.method == method::kVersion) {
        util::Json body = util::Json::object();
        body["version"] = util::kVersion;
        body["compiler"] = util::compiler_string();
        send_frame(conn, ok_response(req.id, std::move(body)));
        return;
    }

    std::string tenant;
    if (config_.tenants != nullptr) {
        auto who = config_.tenants->authenticate(req.token);
        if (!who) {
            {
                std::lock_guard<std::mutex> lock(counters_mutex_);
                ++counters_.auth_failures;
            }
            if (obs_auth_failures_ != nullptr) obs_auth_failures_->inc();
            send_frame(conn, error_response(req.id, status::kUnauthorized, who.error()));
            return;
        }
        tenant = who.value();
    } else {
        tenant = kAnonymousTenant;
    }

    if (req.method == method::kSubmit) {
        if (draining()) {
            {
                std::lock_guard<std::mutex> lock(counters_mutex_);
                ++counters_.rejects;
            }
            if (obs_reject_draining_ != nullptr) obs_reject_draining_->inc();
            send_frame(conn, error_response(req.id, status::kDraining,
                                            "server is draining; resubmit elsewhere"));
            return;
        }
        std::string workload_name = req.params.get_string("workload", "");
        if (workload_name.empty()) {
            send_frame(conn, error_response(req.id, status::kBadRequest,
                                            "submit: params.workload is required"));
            return;
        }
        bool known = false;
        for (const auto& w : workload::catalogue()) {
            if (w.name == workload_name) {
                known = true;
                break;
            }
        }
        if (!known) {
            send_frame(conn, error_response(req.id, status::kNotFound,
                                            "unknown workload '" + workload_name + "'"));
            return;
        }
        if (config_.tenants != nullptr) {
            auto admitted = config_.tenants->try_admit(tenant);
            if (!admitted) {
                {
                    std::lock_guard<std::mutex> lock(counters_mutex_);
                    ++counters_.rejects;
                }
                if (obs_reject_quota_ != nullptr) obs_reject_quota_->inc();
                send_frame(conn, error_response(req.id, status::kRejected, admitted.error()));
                return;
            }
        }

        SubmitTask task;
        task.conn_id = conn.id;
        task.request_id = req.id;
        task.tenant = tenant;
        task.workload = workload_name;
        task.reply_on_completion = req.params.get_bool("wait", true);
        task.received_at = Clock::now();
        task.job = config_.default_job;
        task.job.parallel_slots = static_cast<std::size_t>(req.params.get_number(
            "parallel_slots", static_cast<double>(task.job.parallel_slots)));
        task.job.hyperband_resource = static_cast<std::size_t>(req.params.get_number(
            "hyperband_resource", static_cast<double>(task.job.hyperband_resource)));
        task.job.hyperband_eta = static_cast<std::size_t>(req.params.get_number(
            "hyperband_eta", static_cast<double>(task.job.hyperband_eta)));
        task.job.final_epochs = static_cast<std::size_t>(
            req.params.get_number("final_epochs", static_cast<double>(task.job.final_epochs)));
        task.job.seed = static_cast<std::uint64_t>(
            req.params.get_number("seed", static_cast<double>(task.job.seed)));
        task.options.label = req.params.get_string("label", tenant + "/" + workload_name);
        task.options.priority =
            parse_priority(req.params.get_string("priority", ""), core::SubmitPriority::kNormal);
        task.options.deadline_s = req.params.get_number("deadline_s", 0.0);
        task.options.backend_seed =
            static_cast<std::uint64_t>(req.params.get_number("backend_seed", 0.0));
        {
            std::lock_guard<std::mutex> lock(dispatch_mutex_);
            dispatch_queue_.push_back(std::move(task));
        }
        dispatch_cv_.notify_one();
        return;
    }

    if (req.method == method::kStatus) {
        auto job_id = static_cast<std::uint64_t>(req.params.get_number("job_id", 0.0));
        for (const auto& timing : config_.service->job_timings()) {
            if (timing.id != job_id) continue;
            send_frame(conn, ok_response(req.id, job_timing_to_json(timing)));
            return;
        }
        send_frame(conn, error_response(req.id, status::kNotFound,
                                        "unknown job id " + std::to_string(job_id)));
        return;
    }

    if (req.method == method::kCancel) {
        auto job_id = static_cast<std::uint64_t>(req.params.get_number("job_id", 0.0));
        bool cancelled = config_.service->cancel(job_id);
        util::Json body = util::Json::object();
        body["job_id"] = job_id;
        body["cancelled"] = cancelled;
        send_frame(conn, ok_response(req.id, std::move(body)));
        return;
    }

    if (req.method == method::kStats) {
        util::Json body = util::Json::object();
        body["draining"] = draining();
        body["jobs_served"] = config_.service->jobs_served();
        body["service"] = service_stats_to_json(config_.service->stats());
        Counters c = counters();
        util::Json server = util::Json::object();
        server["connections"] = c.connections;
        server["requests"] = c.requests;
        server["bad_frames"] = c.bad_frames;
        server["oversized_frames"] = c.oversized_frames;
        server["auth_failures"] = c.auth_failures;
        server["rejects"] = c.rejects;
        server["http_requests"] = c.http_requests;
        server["jobs_submitted"] = c.jobs_submitted;
        server["jobs_completed"] = c.jobs_completed;
        body["server"] = std::move(server);
        if (config_.tenants != nullptr) {
            util::Json tenants = util::Json::array();
            for (const auto& t : config_.tenants->stats()) {
                util::Json entry = util::Json::object();
                entry["name"] = t.name;
                entry["in_flight"] = t.in_flight;
                entry["max_in_flight"] = t.max_in_flight;
                entry["submitted"] = t.submitted;
                entry["completed"] = t.completed;
                entry["rejected"] = t.rejected;
                tenants.push_back(std::move(entry));
            }
            body["tenants"] = std::move(tenants);
        }
        send_frame(conn, ok_response(req.id, std::move(body)));
        return;
    }

    if (req.method == method::kMetrics) {
        util::Json body = util::Json::object();
        body["prometheus"] =
            config_.obs != nullptr ? config_.obs->metrics().to_prometheus() : std::string();
        send_frame(conn, ok_response(req.id, std::move(body)));
        return;
    }

    if (req.method == method::kDrain) {
        bool run_queued = req.params.get_bool("run_queued", true);
        DrainMode mode = run_queued ? DrainMode::kFull : DrainMode::kFast;
        util::Json body = util::Json::object();
        body["draining"] = true;
        body["mode"] = run_queued ? "full" : "fast";
        send_frame(conn, ok_response(req.id, std::move(body)));
        request_stop(mode);
        return;
    }

    send_frame(conn,
               error_response(req.id, status::kUnknownMethod, "unknown method '" + req.method + "'"));
}

void TuningServer::send_frame(Connection& conn, const std::string& payload, bool close_after) {
    if (conn.dead) return;
    conn.outbox += encode_frame(payload);
    conn.close_after_flush = conn.close_after_flush || close_after;
    flush(conn);
}

void TuningServer::flush(Connection& conn) {
    if (conn.dead) return;
    while (conn.out_off < conn.outbox.size()) {
        ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.out_off,
                           conn.outbox.size() - conn.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            update_epoll(conn);
            return;
        }
        if (n < 0 && errno == EINTR) continue;
        close_connection(conn);
        return;
    }
    conn.outbox.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
        close_connection(conn);
        return;
    }
    update_epoll(conn);
}

void TuningServer::update_epoll(Connection& conn) {
    bool want_write = conn.out_off < conn.outbox.size();
    if (want_write == conn.epollout) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) conn.epollout = want_write;
}

void TuningServer::close_connection(Connection& conn) {
    if (conn.dead) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.dead = true;
    dead_fds_.push_back(conn.fd);
}

void TuningServer::sweep_dead() {
    for (int fd : dead_fds_) {
        auto it = connections_.find(fd);
        // The fd may already map to a NEW live connection (accept_ready
        // evicted the dead entry when the kernel reused the number) — only
        // sweep entries still marked dead.
        if (it == connections_.end() || !it->second.dead) continue;
        conn_fd_by_id_.erase(it->second.id);
        connections_.erase(it);
    }
    dead_fds_.clear();
    if (obs_active_connections_ != nullptr)
        obs_active_connections_->set(static_cast<double>(connections_.size()));
}

void TuningServer::drain_outbound() {
    std::deque<Outbound> batch;
    {
        std::lock_guard<std::mutex> lock(outbound_mutex_);
        batch.swap(outbound_);
    }
    for (auto& out : batch) {
        auto id_it = conn_fd_by_id_.find(out.conn_id);
        if (id_it == conn_fd_by_id_.end()) continue;  // client already gone
        auto it = connections_.find(id_it->second);
        if (it == connections_.end() || it->second.dead) continue;
        Connection& conn = it->second;
        conn.outbox += out.bytes;
        conn.close_after_flush = conn.close_after_flush || out.close_after;
        flush(conn);
    }
}

void TuningServer::begin_stop() {
    draining_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (stop_mode_.load(std::memory_order_acquire) == 2) {
        std::size_t dropped = config_.service->discard_queued();
        if (dropped > 0)
            PT_LOG_INFO("net") << "fast drain: discarded " << dropped
                               << " queued job(s); they stay journal-pending for resume";
    }
}

bool TuningServer::work_done() {
    // Checked in pipeline order. A task moves dispatch_queue -> dispatch_busy
    // -> pending -> pump_busy -> outbound, and every handoff overlaps (the
    // next stage is entered before the previous count drops), so a task in
    // flight is visible to at least one of these probes.
    {
        std::lock_guard<std::mutex> lock(dispatch_mutex_);
        if (!dispatch_queue_.empty()) return false;
    }
    if (dispatch_busy_.load(std::memory_order_acquire) != 0) return false;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        if (!pending_.empty()) return false;
    }
    if (pump_busy_.load(std::memory_order_acquire) != 0) return false;
    {
        std::lock_guard<std::mutex> lock(outbound_mutex_);
        if (!outbound_.empty()) return false;
    }
    return true;
}

void TuningServer::final_flush(Connection& conn) {
    Clock::time_point deadline = Clock::now() + std::chrono::seconds(1);
    while (!conn.dead && conn.out_off < conn.outbox.size() && Clock::now() < deadline) {
        pollfd pfd{conn.fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1, 50);
        if (rc < 0 && errno != EINTR) break;
        if (rc > 0) flush(conn);
    }
}

// ------------------------------------------------------------- dispatch thread

void TuningServer::dispatch_loop() {
    while (true) {
        SubmitTask task;
        {
            std::unique_lock<std::mutex> lock(dispatch_mutex_);
            dispatch_cv_.wait(lock, [this] { return dispatch_stop_ || !dispatch_queue_.empty(); });
            if (dispatch_queue_.empty()) {
                if (dispatch_stop_) return;
                continue;
            }
            task = std::move(dispatch_queue_.front());
            dispatch_queue_.pop_front();
            dispatch_busy_.fetch_add(1, std::memory_order_acq_rel);
        }
        run_submit(std::move(task));
        dispatch_busy_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

void TuningServer::run_submit(SubmitTask task) {
    const workload::Workload& w = workload::find_workload(task.workload);
    auto submission = config_.service->submit(w, task.job, task.options);
    if (!submission.has_value()) {
        if (config_.tenants != nullptr) config_.tenants->release(task.tenant, false);
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            ++counters_.rejects;
        }
        if (obs_reject_capacity_ != nullptr) obs_reject_capacity_->inc();
        post_outbound(task.conn_id,
                      encode_frame(error_response(task.request_id, status::kRejected,
                                                  "queue full: job shed by admission control")));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.jobs_submitted;
    }
    if (!task.reply_on_completion) {
        util::Json body = util::Json::object();
        body["job_id"] = submission->id;
        body["state"] = "queued";
        post_outbound(task.conn_id, encode_frame(ok_response(task.request_id, std::move(body))));
    }

    PendingJob pending;
    pending.conn_id = task.conn_id;
    pending.request_id = task.request_id;
    pending.tenant = task.tenant;
    pending.job_id = submission->id;
    pending.result = std::move(submission->result);
    pending.reply = task.reply_on_completion;
    pending.received_at = task.received_at;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.push_back(std::move(pending));
    }
    pending_cv_.notify_one();
}

// ------------------------------------------------------------ completion pump

void TuningServer::pump_loop() {
    using namespace std::chrono_literals;
    while (true) {
        std::vector<PendingJob> ready;
        {
            std::unique_lock<std::mutex> lock(pending_mutex_);
            if (pump_stop_) return;
            for (auto it = pending_.begin(); it != pending_.end();) {
                if (it->result.wait_for(0s) == std::future_status::ready) {
                    pump_busy_.fetch_add(1, std::memory_order_acq_rel);
                    ready.push_back(std::move(*it));
                    it = pending_.erase(it);
                } else {
                    ++it;
                }
            }
            if (ready.empty()) {
                pending_cv_.wait_for(lock, 2ms);
                continue;
            }
        }
        for (auto& job : ready) {
            settle(job);
            pump_busy_.fetch_sub(1, std::memory_order_acq_rel);
        }
    }
}

void TuningServer::settle(PendingJob& pending) {
    bool completed = false;
    std::string response;
    try {
        core::PipeTuneJobResult result = pending.result.get();
        completed = true;
        util::Json body = util::Json::object();
        body["job_id"] = pending.job_id;
        body["result"] = job_result_to_json(result);
        response = ok_response(pending.request_id, std::move(body));
    } catch (const std::exception& e) {
        // A job discarded while queued (fast drain / cancel) was never a
        // server fault: report 503 so the client resubmits, and leave its
        // journal record pending for `pipetune resume`.
        std::string message = e.what();
        bool discarded = message.find("cancelled") != std::string::npos ||
                         message.find("timed-out") != std::string::npos;
        response = error_response(pending.request_id,
                                  discarded ? status::kDraining : status::kJobFailed, message);
    }
    if (config_.tenants != nullptr) config_.tenants->release(pending.tenant, completed);
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        if (completed) ++counters_.jobs_completed;
    }
    if (obs_submit_latency_ != nullptr) obs_submit_latency_->observe(seconds_since(pending.received_at));
    if (pending.reply) post_outbound(pending.conn_id, encode_frame(response));
}

// ----------------------------------------------------------------- cross-thread

void TuningServer::post_outbound(std::uint64_t conn_id, std::string bytes, bool close_after) {
    {
        std::lock_guard<std::mutex> lock(outbound_mutex_);
        outbound_.push_back(Outbound{conn_id, std::move(bytes), close_after});
    }
    wake_io();
}

void TuningServer::wake_io() {
    if (wake_fd_ < 0) return;
    std::uint64_t n = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_fd_, &n, sizeof(n));
}

}  // namespace pipetune::net
