#include "pipetune/net/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "pipetune/net/client.hpp"
#include "pipetune/util/rng.hpp"
#include "pipetune/util/stats.hpp"

namespace pipetune::net {

namespace {

using Clock = std::chrono::steady_clock;

enum class Outcome { kCompleted, kRejected, kError };

struct Sample {
    Outcome outcome = Outcome::kError;
    double latency_s = 0.0;  ///< from scheduled arrival to settled response
};

}  // namespace

util::Json LoadGenReport::to_json() const {
    util::Json j = util::Json::object();
    j["offered_rate_per_s"] = offered_rate_per_s;
    j["requests"] = requests;
    j["completed"] = completed;
    j["rejected"] = rejected;
    j["errors"] = errors;
    j["duration_s"] = duration_s;
    j["goodput_per_s"] = goodput_per_s;
    j["reject_rate"] = reject_rate;
    j["latency_mean_s"] = latency_mean_s;
    j["latency_p50_s"] = latency_p50_s;
    j["latency_p90_s"] = latency_p90_s;
    j["latency_p99_s"] = latency_p99_s;
    j["latency_p999_s"] = latency_p999_s;
    j["latency_max_s"] = latency_max_s;
    return j;
}

util::Result<LoadGenReport> run_loadgen(const LoadGenConfig& config) {
    if (config.total_requests == 0)
        return util::Result<LoadGenReport>::failure("loadgen: total_requests must be > 0");
    if (config.rate_per_s <= 0)
        return util::Result<LoadGenReport>::failure("loadgen: rate_per_s must be > 0");
    if (config.workloads.empty())
        return util::Result<LoadGenReport>::failure("loadgen: at least one workload required");

    // Reachability probe: fail fast (and once) when nothing is listening,
    // instead of letting every request thread report the same connect error.
    {
        auto probe = Client::connect(config.host, config.port, 5.0);
        if (!probe) return util::Result<LoadGenReport>::failure("loadgen: " + probe.error());
        auto pong = probe.value().call(method::kPing);
        if (!pong) return util::Result<LoadGenReport>::failure("loadgen: ping: " + pong.error());
    }

    // The whole arrival schedule is drawn up front: open loop means the
    // schedule is independent of how the server responds.
    util::Rng rng(config.seed);
    std::vector<double> arrival_offsets_s(config.total_requests);
    double t = 0.0;
    for (std::size_t i = 0; i < config.total_requests; ++i) {
        arrival_offsets_s[i] = t;
        t += rng.exponential(config.rate_per_s);
    }

    std::vector<Sample> samples(config.total_requests);
    Clock::time_point start = Clock::now();

    std::vector<std::thread> threads;
    threads.reserve(config.total_requests);
    for (std::size_t i = 0; i < config.total_requests; ++i) {
        threads.emplace_back([&, i] {
            Clock::time_point scheduled =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(arrival_offsets_s[i]));
            std::this_thread::sleep_until(scheduled);

            Sample sample;
            auto finish = [&] {
                sample.latency_s = std::chrono::duration<double>(Clock::now() - scheduled).count();
                samples[i] = sample;
            };

            auto client = Client::connect(config.host, config.port, config.request_timeout_s);
            if (!client) {
                finish();
                return;
            }
            util::Json params = config.submit_params;  // deep copy
            params["workload"] = config.workloads[i % config.workloads.size()];
            params["label"] = "loadgen-" + std::to_string(i);
            const std::string token =
                config.tokens.empty() ? std::string() : config.tokens[i % config.tokens.size()];
            auto reply = client.value().call(method::kSubmit, std::move(params), token);
            if (!reply) {
                finish();
                return;
            }
            const Response& response = reply.value();
            if (response.ok()) {
                sample.outcome = Outcome::kCompleted;
            } else if (response.status == status::kRejected ||
                       response.status == status::kDraining) {
                sample.outcome = Outcome::kRejected;
            }
            finish();
        });
    }
    for (auto& thread : threads) thread.join();

    LoadGenReport report;
    report.offered_rate_per_s = config.rate_per_s;
    report.requests = config.total_requests;
    std::vector<double> latencies;
    double last_settle_s = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample& sample = samples[i];
        last_settle_s = std::max(last_settle_s, arrival_offsets_s[i] + sample.latency_s);
        switch (sample.outcome) {
            case Outcome::kCompleted:
                ++report.completed;
                latencies.push_back(sample.latency_s);
                break;
            case Outcome::kRejected: ++report.rejected; break;
            case Outcome::kError: ++report.errors; break;
        }
    }
    report.duration_s = last_settle_s;
    report.goodput_per_s = report.duration_s > 0
                               ? static_cast<double>(report.completed) / report.duration_s
                               : 0.0;
    report.reject_rate = static_cast<double>(report.rejected) / static_cast<double>(report.requests);
    if (!latencies.empty()) {
        report.latency_mean_s = util::mean(latencies);
        report.latency_p50_s = util::percentile(latencies, 50.0);
        report.latency_p90_s = util::percentile(latencies, 90.0);
        report.latency_p99_s = util::percentile(latencies, 99.0);
        report.latency_p999_s = util::percentile(latencies, 99.9);
        report.latency_max_s = *std::max_element(latencies.begin(), latencies.end());
    }
    return report;
}

}  // namespace pipetune::net
