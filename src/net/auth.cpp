#include "pipetune/net/auth.hpp"

#include <stdexcept>

namespace pipetune::net {

TenantRegistry::TenantRegistry(std::size_t anonymous_quota) : open_mode_(true) {
    Tenant anonymous;
    anonymous.config.name = kAnonymousTenant;
    anonymous.config.max_in_flight = anonymous_quota;
    tenants_.emplace(kAnonymousTenant, std::move(anonymous));
}

TenantRegistry::TenantRegistry(const std::vector<TenantConfig>& tenants) : open_mode_(false) {
    if (tenants.empty())
        throw std::invalid_argument("TenantRegistry: closed mode needs at least one tenant");
    for (const TenantConfig& config : tenants) {
        if (config.name.empty() || config.token.empty())
            throw std::invalid_argument("TenantRegistry: tenant name and token must be set");
        if (!tenants_.emplace(config.name, Tenant{config, 0, 0, 0, 0}).second)
            throw std::invalid_argument("TenantRegistry: duplicate tenant '" + config.name +
                                        "'");
        if (!by_token_.emplace(config.token, config.name).second)
            throw std::invalid_argument("TenantRegistry: duplicate token (tenant '" +
                                        config.name + "')");
    }
}

util::Result<TenantRegistry> TenantRegistry::from_spec(const std::string& spec,
                                                       std::size_t anonymous_quota) {
    if (spec.empty()) return TenantRegistry(anonymous_quota);
    std::vector<TenantConfig> tenants;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string item =
            spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
        if (item.empty()) continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            return util::Result<TenantRegistry>::failure(
                "tenant spec entry '" + item + "' is not name=token[:max_in_flight]");
        TenantConfig config;
        config.name = item.substr(0, eq);
        std::string token = item.substr(eq + 1);
        const std::size_t colon = token.rfind(':');
        if (colon != std::string::npos) {
            const std::string quota = token.substr(colon + 1);
            try {
                config.max_in_flight = std::stoul(quota);
            } catch (const std::exception&) {
                return util::Result<TenantRegistry>::failure(
                    "tenant spec entry '" + item + "': quota '" + quota + "' is not a number");
            }
            token = token.substr(0, colon);
        }
        if (token.empty())
            return util::Result<TenantRegistry>::failure("tenant spec entry '" + item +
                                                         "' has an empty token");
        config.token = std::move(token);
        tenants.push_back(std::move(config));
    }
    try {
        return TenantRegistry(tenants);
    } catch (const std::exception& error) {
        return util::Result<TenantRegistry>::failure(error.what());
    }
}

std::size_t TenantRegistry::tenant_count() const {
    std::lock_guard<std::mutex> lock(*mutex_);
    return tenants_.size();
}

util::Result<std::string> TenantRegistry::authenticate(const std::string& token) const {
    std::lock_guard<std::mutex> lock(*mutex_);
    if (open_mode_) return std::string(kAnonymousTenant);
    const auto it = by_token_.find(token);
    if (it == by_token_.end())
        return util::Result<std::string>::failure(
            token.empty() ? "missing bearer token" : "unknown bearer token");
    return it->second;
}

util::Result<void> TenantRegistry::try_admit(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(*mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return util::Result<void>::failure("unknown tenant '" + tenant + "'");
    Tenant& entry = it->second;
    const std::size_t quota = entry.config.max_in_flight;
    if (quota != 0 && entry.in_flight >= quota) {
        ++entry.rejected;
        return util::Result<void>::failure("tenant '" + tenant + "' over quota (" +
                                           std::to_string(entry.in_flight) + "/" +
                                           std::to_string(quota) + " jobs in flight)");
    }
    ++entry.in_flight;
    ++entry.submitted;
    return util::Result<void>::success();
}

void TenantRegistry::release(const std::string& tenant, bool completed) {
    std::lock_guard<std::mutex> lock(*mutex_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;
    if (it->second.in_flight > 0) --it->second.in_flight;
    if (completed) ++it->second.completed;
}

std::vector<TenantStats> TenantRegistry::stats() const {
    std::lock_guard<std::mutex> lock(*mutex_);
    std::vector<TenantStats> out;
    out.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
        TenantStats stats;
        stats.name = name;
        stats.in_flight = tenant.in_flight;
        stats.max_in_flight = tenant.config.max_in_flight;
        stats.submitted = tenant.submitted;
        stats.completed = tenant.completed;
        stats.rejected = tenant.rejected;
        out.push_back(std::move(stats));
    }
    return out;
}

}  // namespace pipetune::net
