#pragma once
// Open-loop load generator for the tuning daemon (DESIGN.md §11). Arrivals
// are a Poisson process: inter-arrival gaps are drawn i.i.d. exponential
// with the offered rate BEFORE the run starts, and every request fires at
// its scheduled time regardless of how the previous ones are doing — the
// open-loop discipline that, unlike closed-loop "send, wait, send" drivers,
// keeps offering load to a saturated server and therefore measures the
// latency a real multi-tenant cluster would see. Latency is measured from
// the SCHEDULED arrival, not the actual send, so a generator that falls
// behind reports the delay instead of hiding it (coordinated omission).
//
// Each request runs on its own thread with its own connection: at bench
// scale (hundreds of requests) thread cost is noise next to tuning-job cost,
// and per-request connections exercise the server's accept path the way a
// fleet of short-lived clients would.

#include <cstdint>
#include <string>
#include <vector>

#include "pipetune/util/json.hpp"
#include "pipetune/util/result.hpp"

namespace pipetune::net {

struct LoadGenConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Bearer tokens cycled round-robin across requests (the tenant mix).
    /// Empty = anonymous.
    std::vector<std::string> tokens;
    /// Workload names cycled round-robin across requests.
    std::vector<std::string> workloads{"lenet-mnist"};
    double rate_per_s = 4.0;         ///< offered arrival rate (lambda)
    std::size_t total_requests = 32;
    std::uint64_t seed = 1;          ///< arrival-schedule + nothing else
    /// Extra submit params merged into every request (e.g. a small
    /// hyperband_resource so bench jobs stay short).
    util::Json submit_params = util::Json::object();
    double request_timeout_s = 120.0;
};

struct LoadGenReport {
    double offered_rate_per_s = 0.0;
    std::size_t requests = 0;
    std::size_t completed = 0;  ///< 200 with a job result
    std::size_t rejected = 0;   ///< 429 (quota/queue) or 503 (draining)
    std::size_t errors = 0;     ///< transport failures or 4xx/500
    double duration_s = 0.0;    ///< first scheduled arrival -> last settle
    double goodput_per_s = 0.0; ///< completed / duration
    double reject_rate = 0.0;   ///< rejected / requests
    /// Completed-request latency from scheduled arrival, seconds.
    double latency_mean_s = 0.0;
    double latency_p50_s = 0.0;
    double latency_p90_s = 0.0;
    double latency_p99_s = 0.0;
    double latency_p999_s = 0.0;
    double latency_max_s = 0.0;

    util::Json to_json() const;
};

/// Run one offered-load point against a live server. Fails only when the
/// server is unreachable outright; per-request rejections and errors are
/// data, not failures.
util::Result<LoadGenReport> run_loadgen(const LoadGenConfig& config);

}  // namespace pipetune::net
