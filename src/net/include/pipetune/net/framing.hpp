#pragma once
// Length-capped newline framing: the byte layer of the pipetune wire
// protocol (DESIGN.md §11). Every message is one line — a JSON document
// followed by '\n', at most max_frame_bytes long including the terminator.
// FrameReader turns an arbitrary byte stream (whatever recv() happened to
// return) into complete frames, and is deliberately unkillable: garbage is
// surfaced as a frame for the parser to reject, an over-long line is
// reported ONCE as kOversized and then discarded through its terminating
// newline, so a hostile or buggy peer can never wedge the connection state
// machine or balloon server memory.

#include <cstddef>
#include <string>

namespace pipetune::net {

/// Default frame cap (1 MiB): far above any legitimate request, far below
/// anything that could hurt a server holding hundreds of connections.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;

class FrameReader {
public:
    explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
        : max_frame_bytes_(max_frame_bytes == 0 ? 1 : max_frame_bytes) {}

    /// Append raw bytes from the stream.
    void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

    enum class Event {
        kNeedMore,   ///< no complete frame buffered yet
        kFrame,      ///< *frame holds one complete line (terminator stripped)
        kOversized,  ///< a line exceeded the cap; it is being/was discarded
    };

    /// Extract the next frame. Call in a loop until kNeedMore. A trailing
    /// '\r' (telnet/netcat convenience) is stripped from returned frames.
    /// kOversized is reported exactly once per offending line; subsequent
    /// calls skip the line's remaining bytes silently.
    Event next(std::string* frame);

    /// Bytes buffered but not yet returned as frames.
    std::size_t buffered() const { return buffer_.size(); }
    std::size_t max_frame_bytes() const { return max_frame_bytes_; }

private:
    std::size_t max_frame_bytes_;
    std::string buffer_;
    bool discarding_ = false;  ///< inside an oversized line, dropping to '\n'
};

/// Serialize one frame: `payload` + '\n'. Throws std::invalid_argument when
/// the payload embeds a newline (it would silently become two frames).
std::string encode_frame(const std::string& payload);

}  // namespace pipetune::net
