#pragma once
// TuningServer: the network face of core::TuningService (DESIGN.md §11).
// One epoll IO thread owns every socket; requests cross exactly two seams —
// a dispatch thread that calls TuningService::submit (so a serial service
// running jobs inline can never wedge the event loop), and a completion
// pump that resolves job futures into response frames. Both seams hand
// bytes back to the IO thread through an outbound queue + eventfd wakeup,
// so connection state is single-threaded by construction.
//
//   epoll IO thread ── frames ──> dispatch thread ── futures ──> pump
//        ^                                                        │
//        └──────────────── outbound queue + eventfd ──────────────┘
//
// Overload never queues unboundedly: tenant quotas reject first (429),
// then the service's own JobQueue backpressure rejects (configure the
// service with reject_when_full = true; a kBlock service merely throttles
// the dispatch thread instead). Draining (SIGTERM or the `drain` method)
// answers new submits with 503 while in-flight work finishes; in FAST mode
// still-queued jobs are discarded WITHOUT a terminal journal record, so
// `pipetune resume` completes exactly the remainder a SIGTERM cut off.
//
// The same port speaks just enough HTTP for observability: a connection
// whose first bytes are "GET " is answered once (200 text/plain for
// /metrics with the obs Prometheus export, 404 otherwise) and closed.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipetune/core/tuning_service.hpp"
#include "pipetune/net/auth.hpp"
#include "pipetune/net/framing.hpp"
#include "pipetune/net/protocol.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/util/result.hpp"

namespace pipetune::net {

struct ServerConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    std::size_t max_connections = 256;
    /// The service behind the socket. Required; not owned. Configure it with
    /// reject_when_full = true so queue overload surfaces as a 429 instead
    /// of parking the dispatch thread.
    core::TuningService* service = nullptr;
    /// Auth + quotas. Not owned; null = open mode (anonymous, no quota).
    TenantRegistry* tenants = nullptr;
    /// Connection/request/reject counters + latency histograms, and the
    /// /metrics HTTP body. Not owned; may be null.
    obs::ObsContext* obs = nullptr;
    /// Job knobs applied when a submit request omits them.
    hpt::HptJobConfig default_job{};
};

/// How a stop request treats jobs still waiting in the queue.
enum class DrainMode {
    kFull,  ///< run everything already admitted, then stop (`drain` method)
    kFast,  ///< discard queued jobs (journal keeps them pending), finish
            ///< running ones, then stop — the SIGTERM path
};

class TuningServer {
public:
    explicit TuningServer(ServerConfig config);
    /// Stops (kFast) and joins if still running.
    ~TuningServer();
    TuningServer(const TuningServer&) = delete;
    TuningServer& operator=(const TuningServer&) = delete;

    /// Bind + listen + spawn the IO/dispatch/pump threads. Fails (instead of
    /// throwing) on socket errors — an occupied port is an operator mistake,
    /// not a bug.
    util::Result<void> start();

    /// Request a graceful stop. Async-signal-safe (an atomic store plus one
    /// write() to the wakeup eventfd), so a SIGTERM handler may call it
    /// directly on the live server instance.
    void request_stop(DrainMode mode = DrainMode::kFast);

    /// Block until the server has fully stopped (all threads joined). The
    /// service itself is NOT shut down — it belongs to the caller.
    void wait();

    /// request_stop + wait.
    void stop(DrainMode mode = DrainMode::kFast);

    bool running() const { return running_.load(std::memory_order_acquire); }
    /// Actual bound port (after start()).
    std::uint16_t port() const { return bound_port_; }

    /// Lifetime counters for the stats method / tests.
    struct Counters {
        std::uint64_t connections = 0;
        std::uint64_t requests = 0;
        std::uint64_t bad_frames = 0;
        std::uint64_t oversized_frames = 0;
        std::uint64_t auth_failures = 0;
        std::uint64_t rejects = 0;  ///< 429s (quota or queue) + 503s while draining
        std::uint64_t http_requests = 0;
        std::uint64_t jobs_submitted = 0;
        std::uint64_t jobs_completed = 0;
    };
    Counters counters() const;

private:
    struct Connection {
        int fd = -1;
        std::uint64_t id = 0;
        FrameReader reader{kDefaultMaxFrameBytes};
        std::string sniff;    ///< first bytes until protocol is decided
        bool decided = false; ///< sniffed: HTTP or JSONL
        bool http = false;
        std::string http_buf;
        std::string outbox;
        std::size_t out_off = 0;
        bool close_after_flush = false;
        bool epollout = false;  ///< EPOLLOUT currently armed
        /// Closed but not yet erased — close_connection() marks, the IO loop
        /// sweeps after the event batch, so handlers holding a reference never
        /// see it dangle mid-batch.
        bool dead = false;
    };

    struct Outbound {
        std::uint64_t conn_id = 0;
        std::string bytes;
        bool close_after = false;
    };

    struct SubmitTask {
        std::uint64_t conn_id = 0;
        std::uint64_t request_id = 0;
        std::string tenant;
        std::string workload;
        core::SubmitOptions options;
        hpt::HptJobConfig job;
        bool reply_on_completion = true;
        std::chrono::steady_clock::time_point received_at;
    };

    struct PendingJob {
        std::uint64_t conn_id = 0;
        std::uint64_t request_id = 0;
        std::string tenant;
        std::uint64_t job_id = 0;
        std::future<core::PipeTuneJobResult> result;
        bool reply = true;
        std::chrono::steady_clock::time_point received_at;
    };

    // --- IO thread ---
    void io_loop();
    void accept_ready();
    void handle_readable(Connection& conn);
    void handle_writable(Connection& conn);
    void process_frames(Connection& conn);
    void process_http(Connection& conn);
    void dispatch_frame(Connection& conn, const std::string& frame);
    void send_frame(Connection& conn, const std::string& payload, bool close_after = false);
    void flush(Connection& conn);
    void close_connection(Connection& conn);
    void drain_outbound();
    void update_epoll(Connection& conn);
    void sweep_dead();            ///< erase connections closed during the batch
    void begin_stop();            ///< runs on the IO thread when stop is seen
    bool work_done();             ///< nothing in flight anywhere in the pipeline
    void final_flush(Connection& conn);  ///< bounded blocking flush at shutdown

    // --- dispatch thread ---
    void dispatch_loop();
    void run_submit(SubmitTask task);

    // --- completion pump ---
    void pump_loop();
    void settle(PendingJob& pending);

    // cross-thread: queue bytes for a connection and wake the IO thread
    void post_outbound(std::uint64_t conn_id, std::string bytes, bool close_after = false);
    void wake_io();

    bool draining() const { return draining_.load(std::memory_order_acquire); }

    ServerConfig config_;
    std::uint16_t bound_port_ = 0;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;

    std::thread io_thread_;
    std::thread dispatch_thread_;
    std::thread pump_thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    std::atomic<int> stop_mode_{0};  ///< DrainMode of the first stop request
    std::atomic<bool> draining_{false};

    // IO-thread-owned connection state.
    std::map<int, Connection> connections_;           ///< by fd
    std::map<std::uint64_t, int> conn_fd_by_id_;
    std::vector<int> dead_fds_;                       ///< swept after each batch
    std::uint64_t next_conn_id_ = 1;

    std::mutex outbound_mutex_;
    std::deque<Outbound> outbound_;

    std::mutex dispatch_mutex_;
    std::condition_variable dispatch_cv_;
    std::deque<SubmitTask> dispatch_queue_;
    bool dispatch_stop_ = false;
    std::atomic<std::size_t> dispatch_busy_{0};

    std::mutex pending_mutex_;
    std::condition_variable pending_cv_;
    std::vector<PendingJob> pending_;
    bool pump_stop_ = false;
    /// Jobs the pump has taken out of pending_ but not yet settled — counted
    /// so work_done() cannot declare the pipeline empty mid-settle.
    std::atomic<std::size_t> pump_busy_{0};

    mutable std::mutex counters_mutex_;
    Counters counters_;

    // Cached instrument pointers (null when obs is null) — the obs pattern.
    obs::Counter* obs_connections_ = nullptr;
    obs::Gauge* obs_active_connections_ = nullptr;
    obs::Counter* obs_requests_ = nullptr;
    obs::Counter* obs_bad_frames_ = nullptr;
    obs::Counter* obs_oversized_ = nullptr;
    obs::Counter* obs_auth_failures_ = nullptr;
    obs::Counter* obs_reject_quota_ = nullptr;
    obs::Counter* obs_reject_capacity_ = nullptr;
    obs::Counter* obs_reject_draining_ = nullptr;
    obs::Counter* obs_http_ = nullptr;
    obs::Histogram* obs_submit_latency_ = nullptr;
};

}  // namespace pipetune::net
