#pragma once
// The pipetune wire protocol (DESIGN.md §11): newline-delimited JSON
// request/response pairs on a stream socket.
//
// Request:   {"id":7,"method":"submit","token":"...","params":{...}}
// Response:  {"id":7,"status":200,"result":{...}}
//            {"id":7,"status":429,"error":"tenant 'a' over quota"}
//
// `id` is caller-chosen and echoed verbatim so a client may pipeline;
// responses to unparsable requests carry id 0. Status codes borrow HTTP's
// vocabulary because every operator already knows what a 429 means:
//
//   200 ok · 400 bad request · 401 unauthorized · 404 unknown job ·
//   405 unknown method · 413 frame too large · 429 rejected (admission
//   control: queue full or tenant over quota) · 500 job failed ·
//   503 draining (server is shutting down)
//
// The serializers for job results and service stats live here — the SAME
// functions produce the server's response body and the in-process reference
// in tests, so "network result equals in-process result byte-for-byte" is
// checkable with a string compare.

#include <cstdint>
#include <string>

#include "pipetune/core/experiment.hpp"
#include "pipetune/core/tuning_service.hpp"
#include "pipetune/util/json.hpp"
#include "pipetune/util/result.hpp"

namespace pipetune::net {

/// Method vocabulary. Anything else is answered with status 405.
namespace method {
inline constexpr const char* kPing = "ping";
inline constexpr const char* kVersion = "version";
inline constexpr const char* kSubmit = "submit";
inline constexpr const char* kStatus = "status";
inline constexpr const char* kCancel = "cancel";
inline constexpr const char* kStats = "stats";
inline constexpr const char* kMetrics = "metrics";
inline constexpr const char* kDrain = "drain";
}  // namespace method

namespace status {
inline constexpr int kOk = 200;
inline constexpr int kBadRequest = 400;
inline constexpr int kUnauthorized = 401;
inline constexpr int kNotFound = 404;
inline constexpr int kUnknownMethod = 405;
inline constexpr int kFrameTooLarge = 413;
inline constexpr int kRejected = 429;
inline constexpr int kJobFailed = 500;
inline constexpr int kDraining = 503;
}  // namespace status

struct Request {
    std::uint64_t id = 0;
    std::string method;
    std::string token;  ///< bearer token; empty = anonymous
    util::Json params;  ///< object (possibly empty)
};

/// Parse one frame into a Request. The error text is operator-facing (it is
/// echoed back in the 400 reply).
util::Result<Request> parse_request(const std::string& frame);

/// Response builders; both return the compact single-line JSON document
/// (pass through encode_frame before writing to the socket).
std::string ok_response(std::uint64_t id, util::Json result);
std::string error_response(std::uint64_t id, int status_code, const std::string& message);

/// Client-side view of one response frame.
struct Response {
    std::uint64_t id = 0;
    int status = 0;
    util::Json result;  ///< body of a 200
    std::string error;  ///< message of a non-200
    bool ok() const { return status == status::kOk; }
};
util::Result<Response> parse_response(const std::string& frame);

/// Canonical serialization of one finished tuning job — the submit reply's
/// `result` field. Key order is fixed (util::Json objects are sorted maps),
/// so equal results serialize to equal bytes.
util::Json job_result_to_json(const core::PipeTuneJobResult& result);

/// Canonical serialization of the service-level lifecycle counters.
util::Json service_stats_to_json(const core::ServiceStats& stats);

/// Canonical serialization of one job's wall-clock lifecycle (status reply).
util::Json job_timing_to_json(const core::JobTiming& timing);

}  // namespace pipetune::net
