#pragma once
// Blocking client for the pipetune wire protocol (DESIGN.md §11): one TCP
// connection, one in-flight request at a time. This is the client the CLI,
// the load generator and the tests share — deliberately synchronous, because
// every caller either wants the answer before proceeding (CLI) or gets its
// concurrency from running many clients (loadgen).
//
//   auto client = net::Client::connect("127.0.0.1", port);
//   util::Json params = util::Json::object();
//   params["workload"] = "lenet-mnist";
//   auto reply = client.value().call(net::method::kSubmit, params, token);
//
// raw_send/read_frame expose the byte layer for the protocol-robustness
// tests (garbage, truncated frames, oversized lines).

#include <cstdint>
#include <string>

#include "pipetune/net/protocol.hpp"
#include "pipetune/util/json.hpp"
#include "pipetune/util/result.hpp"

namespace pipetune::net {

class Client {
public:
    /// Connect to host:port (IPv4 dotted quad). `timeout_s` bounds BOTH the
    /// connect and every subsequent read — a submit that waits on a long job
    /// needs a generous one. <= 0 means no read timeout.
    static util::Result<Client> connect(const std::string& host, std::uint16_t port,
                                        double timeout_s = 30.0);

    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    ~Client();

    bool connected() const { return fd_ >= 0; }
    void close();

    /// One request/response round trip. Ids are assigned internally and
    /// checked on the way back. Fails on transport errors (including read
    /// timeout); protocol-level errors (429, 503, ...) come back as a
    /// successful Result holding a non-ok Response.
    util::Result<Response> call(const std::string& method, util::Json params = util::Json::object(),
                                const std::string& token = "");

    /// Write raw bytes verbatim (no framing) — the robustness tests' hook
    /// for sending garbage, partial frames and oversized lines.
    util::Result<void> raw_send(const std::string& bytes);

    /// Read one newline-terminated frame (terminator stripped).
    util::Result<std::string> read_frame();

private:
    Client() = default;

    int fd_ = -1;
    std::uint64_t next_id_ = 1;
    std::string inbuf_;
};

}  // namespace pipetune::net
