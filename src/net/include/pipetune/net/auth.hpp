#pragma once
// Tenant identity and admission control for the tuning daemon (DESIGN.md
// §11). Authentication is a static bearer token per tenant — the right
// weight for a cluster-internal service whose real isolation boundary is
// the deployment, not the crypto. Quotas are the FIRST admission gate: a
// tenant over its in-flight budget is rejected (429) before its job ever
// reaches the sched JobQueue, so one greedy tenant cannot monopolize the
// shared queue capacity that backs global backpressure.
//
// Registry with no tenants = open mode: every connection maps onto the
// implicit "anonymous" tenant with the default quota. That keeps single-user
// deployments (and the loopback benches) free of token plumbing while the
// multi-tenant path stays on by construction.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipetune/util/result.hpp"

namespace pipetune::net {

struct TenantConfig {
    std::string name;
    std::string token;  ///< bearer token; must be unique across tenants
    /// Jobs a tenant may have queued or running at once; 0 = unlimited.
    std::size_t max_in_flight = 8;
};

/// Point-in-time per-tenant accounting (stats reply, bench reports).
struct TenantStats {
    std::string name;
    std::size_t in_flight = 0;
    std::size_t max_in_flight = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;  ///< quota rejections (not queue-full ones)
};

class TenantRegistry {
public:
    /// Open mode (anonymous tenant, `anonymous_quota` in-flight, 0 = unlimited).
    explicit TenantRegistry(std::size_t anonymous_quota = 0);

    /// Closed mode: only the given tenants may authenticate. Throws
    /// std::invalid_argument on duplicate names or tokens.
    explicit TenantRegistry(const std::vector<TenantConfig>& tenants);

    /// Parse "name=token[:max_in_flight],name2=token2,..." — the CLI's
    /// --tenants spelling. Empty spec = open mode.
    static util::Result<TenantRegistry> from_spec(const std::string& spec,
                                                  std::size_t anonymous_quota = 0);

    bool open_mode() const { return open_mode_; }
    std::size_t tenant_count() const;

    /// Token -> tenant name. Fails (for a 401) when the registry is closed
    /// and the token is unknown; open mode accepts anything as "anonymous".
    util::Result<std::string> authenticate(const std::string& token) const;

    /// Reserve one in-flight slot for `tenant`. Fails (for a 429) when the
    /// tenant is at its quota; counts the rejection.
    util::Result<void> try_admit(const std::string& tenant);
    /// Release a slot reserved by try_admit (job reached a terminal state).
    void release(const std::string& tenant, bool completed);

    std::vector<TenantStats> stats() const;

private:
    struct Tenant {
        TenantConfig config;
        std::size_t in_flight = 0;
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t rejected = 0;
    };

    /// unique_ptr so the registry stays movable (Result<TenantRegistry>,
    /// ServerConfig by value) while the accounting stays lockable.
    mutable std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
    bool open_mode_ = true;
    std::map<std::string, Tenant> tenants_;        ///< by name
    std::map<std::string, std::string> by_token_;  ///< token -> name
};

/// Name of the implicit open-mode tenant.
inline constexpr const char* kAnonymousTenant = "anonymous";

}  // namespace pipetune::net
