// Figure 9 reproduction: accuracy convergence over (virtual) wall-clock time
// while tuning a CNN on News20 — PipeTune vs Tune V1 vs Tune V2.
//
// Paper shape: PipeTune converges to V1-level accuracy but much faster (on
// average 1.5x vs V1 and 2x vs V2 to a given accuracy level, e.g. 60%).

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

using namespace pipetune;

// First virtual time at which the running best accuracy crosses `level`.
double time_to_accuracy(const std::vector<hpt::ConvergencePoint>& convergence, double level) {
    for (const auto& point : convergence)
        if (point.best_accuracy >= level) return point.time_s;
    return -1.0;
}

}  // namespace

int main() {
    bench::print_header("Figure 9", "Accuracy convergence over tuning time (CNN on News20)");

    const auto& workload = workload::find_workload("cnn-news20");
    sim::SimBackend backend({.seed = 90});
    hpt::HptJobConfig job;
    job.seed = 90;

    const auto v1 = hpt::run_tune_v1(backend, workload, job);
    const auto v2 = hpt::run_tune_v2(backend, workload, job);
    core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});  // paper SS7.2
    const auto pipetune = core::run_pipetune(backend, workload, job, {}, &warm);

    // Print the three trajectories, sampled every few completions.
    util::CsvWriter csv("fig09_convergence.csv", {"approach", "time_s", "best_accuracy"});
    auto dump = [&](const char* name, const std::vector<hpt::ConvergencePoint>& convergence) {
        for (const auto& point : convergence)
            csv.add_row({std::string(name), util::Table::num(point.time_s, 1),
                         util::Table::num(point.best_accuracy, 2)});
    };
    dump("pipetune", pipetune.baseline.tuning.convergence);
    dump("tune_v1", v1.tuning.convergence);
    dump("tune_v2", v2.tuning.convergence);

    util::Table table({"accuracy level [%]", "PipeTune [s]", "Tune V1 [s]", "Tune V2 [s]",
                       "V1/PT speedup", "V2/PT speedup"});
    double speedup_v1_at60 = 0, speedup_v2_at60 = 0;
    for (double level : {40.0, 50.0, 60.0, 70.0}) {
        const double t_pt = time_to_accuracy(pipetune.baseline.tuning.convergence, level);
        const double t_v1 = time_to_accuracy(v1.tuning.convergence, level);
        const double t_v2 = time_to_accuracy(v2.tuning.convergence, level);
        const double s1 = (t_pt > 0 && t_v1 > 0) ? t_v1 / t_pt : 0;
        const double s2 = (t_pt > 0 && t_v2 > 0) ? t_v2 / t_pt : 0;
        if (level == 60.0) {
            speedup_v1_at60 = s1;
            speedup_v2_at60 = s2;
        }
        auto fmt = [](double t) { return t < 0 ? std::string("never") : util::Table::num(t, 0); };
        table.add_row({util::Table::num(level, 0), fmt(t_pt), fmt(t_v1), fmt(t_v2),
                       util::Table::num(s1, 2) + "x", util::Table::num(s2, 2) + "x"});
    }
    std::cout << table.render();
    std::cout << "\nFinal best accuracy: PipeTune "
              << util::Table::num(pipetune.baseline.tuning.best_accuracy, 2) << "%, V1 "
              << util::Table::num(v1.tuning.best_accuracy, 2) << "%, V2 "
              << util::Table::num(v2.tuning.best_accuracy, 2) << "%\n";

    std::vector<bench::Claim> claims;
    claims.push_back({"PipeTune reaches 60% accuracy faster than V1", "~1.5x faster",
                      util::Table::num(speedup_v1_at60, 2) + "x", speedup_v1_at60 > 1.0});
    claims.push_back({"PipeTune reaches 60% accuracy faster than V2", "~2x faster",
                      util::Table::num(speedup_v2_at60, 2) + "x", speedup_v2_at60 > 1.0});
    claims.push_back({"PipeTune final accuracy comparable to V1", "on par",
                      util::Table::num(pipetune.baseline.tuning.best_accuracy, 2) + " vs " +
                          util::Table::num(v1.tuning.best_accuracy, 2),
                      pipetune.baseline.tuning.best_accuracy >= v1.tuning.best_accuracy - 2.0});
    bench::print_claims(claims);
    return 0;
}
