// Figure 12 reproduction: the Type-III (Rodinia-style) workloads — jacobi,
// spkmeans, bfs — on a single node. These have short epochs, the adversarial
// regime for PipeTune's epoch-granular profiling (§7.3: "Long epochs work in
// favor of PipeTune ... next we perform an extra analysis on Type-III Jobs
// which present this more challenging setup").
//
// Paper shape: PipeTune still reduces both training and tuning time vs the
// baselines with comparable-or-better accuracy, and energy follows runtime.

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

int main() {
    using namespace pipetune;
    bench::print_header("Figure 12",
                        "Single-node Type-III evaluation: jacobi / spkmeans / bfs");

    util::Table table({"workload", "approach", "accuracy [%]", "training [s]", "tuning [s]",
                       "tuning energy [kJ]"});
    util::CsvWriter csv("fig12_type3_eval.csv",
                        {"workload", "approach", "accuracy", "training_s", "tuning_s",
                         "tuning_energy_kj"});

    struct Row {
        double accuracy, training, tuning, energy;
    };
    std::map<std::string, std::map<std::string, Row>> results;

    std::uint64_t seed = 1200;
    for (const auto& workload : workload::workloads_of_type(workload::WorkloadType::kType3)) {
        sim::SimBackend backend({.seed = seed});
        hpt::HptJobConfig job;
        job.seed = seed++;
        job.parallel_slots = 1;  // single node (paper §7.1.1: Type-III testbed)
        const auto v1 = hpt::run_tune_v1(backend, workload, job);
        const auto v2 = hpt::run_tune_v2(backend, workload, job);
        core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});
        const auto pipetune = core::run_pipetune(backend, workload, job, {}, &warm);

        auto emit = [&](const char* approach, const hpt::BaselineResult& r) {
            results[workload.name][approach] =
                Row{r.final_accuracy, r.training_time_s, r.tuning.tuning_duration_s,
                    r.tuning.tuning_energy_j / 1000.0};
            table.add_row({workload.name, approach, util::Table::num(r.final_accuracy, 1),
                           util::Table::num(r.training_time_s, 1),
                           util::Table::num(r.tuning.tuning_duration_s, 0),
                           util::Table::num(r.tuning.tuning_energy_j / 1000.0, 1)});
            csv.add_row({workload.name, std::string(approach),
                         util::Table::num(r.final_accuracy, 2),
                         util::Table::num(r.training_time_s, 2),
                         util::Table::num(r.tuning.tuning_duration_s, 1),
                         util::Table::num(r.tuning.tuning_energy_j / 1000.0, 3)});
        };
        emit("tune_v1", v1);
        emit("tune_v2", v2);
        emit("pipetune", pipetune.baseline);
    }
    std::cout << table.render();

    int acc_comparable = 0, pt_tuning_below = 0, pt_energy_below = 0;
    int workloads = 0;
    for (const auto& [name, rows] : results) {
        ++workloads;
        const Row& v1 = rows.at("tune_v1");
        const Row& pt = rows.at("pipetune");
        if (pt.accuracy >= v1.accuracy - 2.0) ++acc_comparable;
        if (pt.tuning < v1.tuning) ++pt_tuning_below;
        if (pt.energy < v1.energy) ++pt_energy_below;
    }

    std::vector<bench::Claim> claims;
    claims.push_back({"Accuracy comparable or better than baseline", "on par",
                      std::to_string(acc_comparable) + "/" + std::to_string(workloads),
                      acc_comparable == workloads});
    claims.push_back({"PipeTune reduces tuning time despite short epochs", "reduced on all",
                      std::to_string(pt_tuning_below) + "/" + std::to_string(workloads),
                      pt_tuning_below == workloads});
    claims.push_back({"Energy reflects the performance gains", "more energy efficient",
                      std::to_string(pt_energy_below) + "/" + std::to_string(workloads),
                      pt_energy_below >= workloads - 1});
    bench::print_claims(claims);
    return 0;
}
