// Ablation: the ground-truth similarity threshold (DESIGN.md §6).
//
// The threshold trades reuse against probing: at 1.0 nothing is ever similar
// enough (always probe, PipeTune degenerates to per-trial grid probing); at
// 0.0 everything matches (always reuse the nearest profile, including across
// genuinely different workloads). The paper leaves the confidence level
// implicit (§5.6); this sweep shows the operating range.

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

int main() {
    using namespace pipetune;
    bench::print_header("Ablation", "Ground-truth similarity threshold sweep (LeNet+MNIST)");

    const auto& workload = workload::find_workload("lenet-mnist");

    util::Table table({"threshold", "tuning [s]", "hits", "probes", "final accuracy [%]"});
    util::CsvWriter csv("ablation_threshold.csv",
                        {"threshold", "tuning_s", "hits", "probes", "accuracy"});

    struct Sample {
        double threshold, tuning;
        std::size_t hits, probes;
    };
    std::vector<Sample> samples;
    for (double threshold : {0.0, 0.05, 0.15, 0.35, 0.6, 0.9, 1.0}) {
        sim::SimBackend backend({.seed = 500});
        hpt::HptJobConfig job;
        job.seed = 500;
        core::PipeTuneConfig config;
        config.ground_truth.similarity_threshold = threshold;
        core::WarmStartConfig warm_config;
        warm_config.ground_truth = config.ground_truth;
        core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload}, warm_config);
        const auto result = core::run_pipetune(backend, workload, job, config, &warm);
        samples.push_back({threshold, result.baseline.tuning.tuning_duration_s,
                           result.ground_truth_hits, result.probes_started});
        table.add_row({util::Table::num(threshold, 2),
                       util::Table::num(result.baseline.tuning.tuning_duration_s, 0),
                       std::to_string(result.ground_truth_hits),
                       std::to_string(result.probes_started),
                       util::Table::num(result.baseline.final_accuracy, 2)});
        csv.add_row(std::vector<double>{threshold, result.baseline.tuning.tuning_duration_s,
                                        static_cast<double>(result.ground_truth_hits),
                                        static_cast<double>(result.probes_started),
                                        result.baseline.final_accuracy});
    }
    std::cout << table.render();

    const Sample& permissive = samples.front();   // threshold 0: always reuse
    const Sample& strict = samples.back();        // threshold 1: always probe
    const Sample& operating = samples[2];         // 0.15, the library default

    std::vector<bench::Claim> claims;
    claims.push_back({"Threshold 1.0 disables reuse entirely", "0 hits",
                      std::to_string(strict.hits) + " hits / " +
                          std::to_string(strict.probes) + " probes",
                      strict.hits == 0 && strict.probes > 0});
    claims.push_back({"Threshold 0.0 reuses aggressively", "hit-dominated",
                      std::to_string(permissive.hits) + " hits / " +
                          std::to_string(permissive.probes) + " probes",
                      permissive.hits > permissive.probes});
    claims.push_back({"Operating point beats always-probe on tuning time",
                      "reuse pays off",
                      util::Table::num(operating.tuning, 0) + " < " +
                          util::Table::num(strict.tuning, 0),
                      operating.tuning < strict.tuning});
    bench::print_claims(claims);
    return 0;
}
