// Serving bench (DESIGN.md §11, ROADMAP item 1): drive `pipetune serve`'s
// in-process twin — a net::TuningServer over a concurrent sim-backed
// service — with the open-loop Poisson load generator across a rate sweep,
// and record p50/p99/p999 latency, goodput and reject rate per offered-load
// point into BENCH_serve.json (the first perf-trajectory artifact).
//
// The sweep brackets saturation deliberately: capacity is CALIBRATED from
// measured job service time, then offered load runs at 0.5×, 1× and 2× of
// it. The claim under test is the admission-control contract: past
// saturation the server rejects (429) and keeps goodput near capacity with
// bounded latency — it does not collapse into unbounded queueing.

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_timing.hpp"
#include "pipetune/net/loadgen.hpp"
#include "pipetune/net/server.hpp"
#include "pipetune/sched/concurrent_service.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/fs.hpp"
#include "pipetune/util/json.hpp"
#include "pipetune/util/table.hpp"
#include "pipetune/workload/types.hpp"

namespace {

using namespace pipetune;
using bench::Clock;

constexpr std::size_t kWorkers = 2;
constexpr std::size_t kQueueCapacity = 8;
constexpr std::size_t kRequestsPerPoint = 80;
constexpr std::uint64_t kSeed = 17;

util::Json small_job_params() {
    util::Json params = util::Json::object();
    params["hyperband_resource"] = 3;
    params["final_epochs"] = 3;
    params["parallel_slots"] = 2;
    return params;
}

// One self-contained server stack per load point, so a saturated point's
// backlog can never leak into the next measurement.
struct ServerStack {
    sim::SimBackend backend;
    std::unique_ptr<core::TuningService> service;
    std::unique_ptr<net::TuningServer> server;

    ServerStack() : backend(sim::SimBackendConfig{.seed = kSeed}) {
        core::ServiceOptions options;
        options.concurrency = kWorkers;
        options.queue_capacity = kQueueCapacity;
        options.reject_when_full = true;  // overload → 429, never a parked queue
        service = sched::make_tuning_service(backend, options);
        net::ServerConfig config;
        config.service = service.get();
        server = std::make_unique<net::TuningServer>(config);
        auto started = server->start();
        if (!started.ok()) throw std::runtime_error(started.error());
    }
    ~ServerStack() {
        server->stop(net::DrainMode::kFull);
        service->drain();
    }
};

// Measure mean job service time with a short closed-loop warmup, giving the
// calibrated capacity (kWorkers / mean_service_time) the sweep hangs off.
double calibrate_capacity_per_s() {
    ServerStack stack;
    net::LoadGenConfig config;
    config.port = stack.server->port();
    config.workloads = {workload::catalogue()[0].name};
    config.rate_per_s = 1e6;  // all-at-once would distort; run serially instead
    config.total_requests = 1;
    config.submit_params = small_job_params();
    const auto start = Clock::now();
    constexpr int kCalibrationJobs = 8;
    for (int i = 0; i < kCalibrationJobs; ++i) {
        config.seed = kSeed + i;
        auto report = net::run_loadgen(config);
        if (!report.ok()) throw std::runtime_error(report.error());
    }
    const double elapsed = bench::seconds_since(start);
    const double mean_service_s = elapsed / kCalibrationJobs;
    return static_cast<double>(kWorkers) / mean_service_s;
}

}  // namespace

int main() {
    bench::print_header("BENCH serve",
                        "open-loop load sweep against the networked tuning daemon");

    const std::vector<double> multipliers = {0.5, 1.0, 2.0};
    util::Table table({"offered x", "rate/s", "completed", "rejected", "errors", "goodput/s",
                       "reject %", "p50 ms", "p99 ms", "p999 ms"});
    util::Json points = util::Json::array();
    std::vector<net::LoadGenReport> reports;
    std::vector<double> capacities;

    for (double multiplier : multipliers) {
        // Recalibrate right before each point: capacity tracks whatever CPU
        // the host is giving us NOW, so background load between points cannot
        // turn "0.5x capacity" into an accidental overload.
        const double capacity = calibrate_capacity_per_s();
        capacities.push_back(capacity);
        std::cout << multiplier << "x point: calibrated capacity ~"
                  << util::Table::num(capacity, 1) << " jobs/s (" << kWorkers
                  << " workers, sim backend, R=3 jobs)\n";
        ServerStack stack;
        net::LoadGenConfig config;
        config.port = stack.server->port();
        config.workloads = {workload::catalogue()[0].name};
        config.rate_per_s = capacity * multiplier;
        config.total_requests = kRequestsPerPoint;
        config.seed = kSeed;
        config.submit_params = small_job_params();
        auto report = net::run_loadgen(config);
        if (!report.ok()) {
            std::cerr << "loadgen failed at " << multiplier << "x: " << report.error() << "\n";
            return 1;
        }
        const net::LoadGenReport& r = report.value();
        reports.push_back(r);
        table.add_row({util::Table::num(multiplier, 1), util::Table::num(r.offered_rate_per_s, 1),
                       std::to_string(r.completed), std::to_string(r.rejected),
                       std::to_string(r.errors), util::Table::num(r.goodput_per_s, 1),
                       bench::pct(r.reject_rate), util::Table::num(1e3 * r.latency_p50_s, 2),
                       util::Table::num(1e3 * r.latency_p99_s, 2),
                       util::Table::num(1e3 * r.latency_p999_s, 2)});
        util::Json point = r.to_json();
        point["offered_multiplier"] = multiplier;
        point["calibrated_capacity_per_s"] = capacity;
        points.push_back(std::move(point));
    }
    std::cout << "\n" << table.render();

    const net::LoadGenReport& light = reports.front();
    const net::LoadGenReport& overload = reports.back();
    const double capacity = capacities.back();  // claims below compare against
                                                // the overload point's own calibration
    bench::print_claims({
        // <= 5% rather than == 0: on a shared host a calibration can still go
        // slightly stale within a point, and a couple of transient 429s out of
        // 80 is noise, not a shedding regime.
        {"below capacity, essentially nothing is shed", "reject rate <= 5%",
         bench::pct(light.reject_rate), light.reject_rate <= 0.05},
        {"past saturation, admission control sheds load", "rejects > 0",
         std::to_string(overload.rejected) + " rejected", overload.rejected > 0},
        {"overload degrades gracefully, not collapse",
         "goodput >= 30% of calibrated capacity",
         util::Table::num(overload.goodput_per_s, 1) + " jobs/s",
         overload.goodput_per_s >= 0.3 * capacity},
        {"queueing stays bounded under overload", "completed-request p99 < 5 s",
         util::Table::num(1e3 * overload.latency_p99_s, 1) + " ms",
         overload.latency_p99_s < 5.0},
    });

    util::Json doc = util::Json::object();
    doc["bench"] = "serve";
    doc["workers"] = kWorkers;
    doc["queue_capacity"] = kQueueCapacity;
    doc["requests_per_point"] = kRequestsPerPoint;
    doc["seed"] = kSeed;
    doc["calibrated_capacity_per_s"] = capacity;  // overload point's calibration
    doc["points"] = std::move(points);
    const std::string out = "BENCH_serve.json";
    auto written = util::try_write_file_atomic(out, doc.dump(2) + "\n");
    if (!written.ok()) {
        std::cerr << "failed to write " << out << ": " << written.error() << "\n";
        return 1;
    }
    std::cout << "\nwrote " << out << "\n";
    return 0;
}
