// Figure 1 reproduction: grid-search tuning time grows exponentially with the
// number of tuned parameters (1..6, up to 3 values each, LeNet+MNIST), and
// the resulting dollar cost on three ML-optimized EC2 instance classes.
//
// Paper shape: both curves blow up combinatorially toward 6 parameters,
// making naive full exploration "unpractical, costly and slow" (§1).

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/hpt/runner.hpp"
#include "pipetune/hpt/searchers.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

// On-demand us-east-1 hourly prices of the paper's instance types.
struct Instance {
    const char* name;
    double dollars_per_hour;
};
constexpr Instance kInstances[] = {
    {"m4.4xlarge", 0.80},
    {"m5.12xlarge", 2.304},
    {"m5.24xlarge", 4.608},
};

}  // namespace

int main() {
    using namespace pipetune;
    bench::print_header("Figure 1", "Grid-search tuning time & EC2 cost vs number of parameters");

    // Six tunable parameters in a fixed order; prefix(n) tunes the first n.
    hpt::ParamSpace full;
    full.add_discrete("batch_size", {32, 256, 1024});
    full.add_discrete("learning_rate", {0.001, 0.01, 0.1});
    full.add_discrete("dropout", {0.0, 0.25, 0.5});
    full.add_discrete("epochs", {5, 10, 20});
    full.add_discrete("embedding_dim", {50, 150, 300});
    full.add_discrete("cores", {4, 8, 16});

    const auto& workload = workload::find_workload("lenet-mnist");
    util::Table table({"#params", "grid size", "tuning time [h]", "m4.4xlarge [$]",
                       "m5.12xlarge [$]", "m5.24xlarge [$]"});
    util::CsvWriter csv("fig01_param_explosion.csv",
                        {"params", "grid_size", "tuning_hours", "cost_m4_4xl", "cost_m5_12xl",
                         "cost_m5_24xl"});

    std::vector<double> hours_by_params;
    for (std::size_t n = 1; n <= 6; ++n) {
        sim::SimBackend backend({.seed = 100 + n});
        hpt::RunnerConfig config;
        config.parallel_slots = 1;  // a single rented instance
        hpt::TuningJobRunner runner(backend, workload, config);
        hpt::GridSearch grid(full.prefix(n), 3, /*default_epochs=*/5);
        const auto result = runner.run(grid);
        const double hours = result.tuning_duration_s / 3600.0;
        hours_by_params.push_back(hours);

        std::vector<std::string> row{std::to_string(n), std::to_string(result.trials),
                                     util::Table::num(hours, 2)};
        std::vector<double> csv_row{static_cast<double>(n), static_cast<double>(result.trials),
                                    hours};
        for (const auto& instance : kInstances) {
            row.push_back(util::Table::num(hours * instance.dollars_per_hour, 2));
            csv_row.push_back(hours * instance.dollars_per_hour);
        }
        table.add_row(row);
        csv.add_row(csv_row);
    }
    std::cout << table.render();

    std::vector<bench::Claim> claims;
    bool monotone = true;
    for (std::size_t n = 1; n < hours_by_params.size(); ++n)
        monotone = monotone && hours_by_params[n] > hours_by_params[n - 1];
    claims.push_back({"Tuning time grows monotonically with #params", "monotone increase",
                      monotone ? "monotone" : "non-monotone", monotone});
    const double growth = hours_by_params[5] / hours_by_params[4];
    claims.push_back({"Growth is combinatorial (~3x per extra parameter)",
                      "x3 per parameter", util::Table::num(growth, 2) + "x from 5 to 6 params",
                      growth > 2.0});
    const double blowup = hours_by_params[5] / hours_by_params[0];
    claims.push_back({"Full 6-parameter grid is impractical vs 1 parameter",
                      ">100x cost blow-up", util::Table::num(blowup, 0) + "x", blowup > 100.0});
    bench::print_claims(claims);
    return 0;
}
