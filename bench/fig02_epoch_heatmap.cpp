// Figure 2 reproduction: per-epoch averages of the 58 hardware events while
// training a CNN on News20 (16 cores, 32 GB), across the initiation phase
// plus 5 epochs. The paper's observation — "certain events repeat throughout
// the epochs with the same occurrence" — is the foundation of PipeTune's
// epoch-granular profiling.

#include <array>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "pipetune/perf/profiler.hpp"
#include "pipetune/sim/cost_model.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

// Magnitude buckets analogous to the paper's heatmap legend. The paper bins
// average events per epoch; we bin average events per second (our epochs are
// virtual), so the bucket bounds shift by the epoch length but the *shape* —
// one stable bucket per event row, rows spanning many decades — is the same.
char bucket_symbol(double events_per_second) {
    if (events_per_second > 1e9) return '#';
    if (events_per_second > 1e7) return '*';
    if (events_per_second > 1e4) return '+';
    if (events_per_second > 1e2) return '.';
    return ' ';
}

}  // namespace

int main() {
    using namespace pipetune;
    bench::print_header("Figure 2",
                        "58 PMU events averaged per epoch, CNN on News20 (16 cores, 32 GB)");

    const auto& workload = workload::find_workload("cnn-news20");
    workload::HyperParams hyper;
    hyper.batch_size = 128;
    const workload::SystemParams system{.cores = 16, .memory_gb = 32};

    sim::CostModel cost;
    const double epoch_duration = cost.epoch_seconds(workload, hyper, system);

    perf::Profiler profiler({}, 42);
    // Initiation phase: heavier memory traffic (data loading), shorter window.
    auto init_fingerprint = sim::SimBackend::fingerprint(workload, hyper, system);
    init_fingerprint.memory_scale *= 1.8;
    init_fingerprint.compute_scale *= 0.4;
    std::vector<perf::EpochProfile> columns;
    columns.push_back(profiler.profile_epoch(init_fingerprint, epoch_duration * 0.5, 0.0, 0));
    const auto fingerprint = sim::SimBackend::fingerprint(workload, hyper, system);
    for (std::size_t epoch = 1; epoch <= 5; ++epoch)
        columns.push_back(profiler.profile_epoch(fingerprint, epoch_duration, 0.0, epoch));

    std::cout << "Legend: '#' >1e9   '*' 1e9-1e7   '+' 1e7-1e4   '.' 1e4-1e2   ' ' <1e2"
              << " (events per second)\n\n";
    util::CsvWriter csv("fig02_epoch_heatmap.csv",
                        {"event", "init", "epoch1", "epoch2", "epoch3", "epoch4", "epoch5"});
    util::Table table({"event", "Init.", "1", "2", "3", "4", "5"});
    double worst_epoch_spread = 1.0;
    std::size_t buckets_seen_mask = 0;
    for (std::size_t e = 0; e < perf::kEventCount; ++e) {
        std::vector<std::string> row{std::string(perf::event_names()[e])};
        std::vector<std::string> csv_row{std::string(perf::event_names()[e])};
        double epoch_min = 1e300, epoch_max = 0.0;
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const double per_epoch = columns[c].events[e];  // events/second
            row.push_back(std::string(1, bucket_symbol(per_epoch)));
            csv_row.push_back(util::Table::num(per_epoch, 0));
            if (c >= 1) {  // stability is judged over training epochs only
                epoch_min = std::min(epoch_min, per_epoch);
                epoch_max = std::max(epoch_max, per_epoch);
            }
            const char symbol = bucket_symbol(per_epoch);
            buckets_seen_mask |= 1u << (symbol == '#'   ? 0
                                        : symbol == '*' ? 1
                                        : symbol == '+' ? 2
                                        : symbol == '.' ? 3
                                                        : 4);
        }
        if (epoch_min > 0) worst_epoch_spread = std::max(worst_epoch_spread, epoch_max / epoch_min);
        table.add_row(row);
        csv.add_row(csv_row);
    }
    std::cout << table.render();

    std::vector<bench::Claim> claims;
    claims.push_back({"Events repeat across epochs with the same occurrence",
                      "stable rows in heatmap",
                      "worst epoch-to-epoch spread " + util::Table::num(worst_epoch_spread, 2) +
                          "x",
                      worst_epoch_spread < 1.5});
    int bucket_count = 0;
    for (int b = 0; b < 5; ++b) bucket_count += (buckets_seen_mask >> b) & 1;
    claims.push_back({"Events span many orders of magnitude",
                      "buckets from <1e2 to >1e8", std::to_string(bucket_count) + " of 5 buckets",
                      bucket_count >= 4});
    bench::print_claims(claims);
    return 0;
}
