// Figure 5 reproduction: Tune V2's error and runtime improvement relative to
// a single Tune V1 job, under varying system conditions — the tuning job
// pinned to {1, 2, 4, 8} cores with {2, 3, 4} jobs sharing those cores.
//
// Paper shape: performance swings wildly with system conditions; only a few
// configurations improve over the baseline, and some trade accuracy for
// faster training — the motivation for NOT treating system parameters as
// ordinary hyperparameters (§4).

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/hpt/baselines.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

using namespace pipetune;

// Backend decorator: co-located jobs stretch every epoch by the CPU-sharing
// slowdown (the paper pins the tuning job and background jobs to the same
// logical cores).
class ContendedBackend : public workload::Backend {
public:
    ContendedBackend(workload::Backend& inner, double slowdown)
        : inner_(inner), slowdown_(slowdown) {}

    std::unique_ptr<workload::TrialSession> start_trial(
        const workload::Workload& workload, const workload::HyperParams& hyper) override {
        class Session : public workload::TrialSession {
        public:
            Session(std::unique_ptr<workload::TrialSession> inner, double slowdown)
                : inner_(std::move(inner)), slowdown_(slowdown) {}
            workload::EpochResult run_epoch(const workload::SystemParams& system) override {
                auto result = inner_->run_epoch(system);
                result.duration_s *= slowdown_;
                result.energy_j *= slowdown_;  // same power, longer window
                return result;
            }
            std::size_t epochs_done() const override { return inner_->epochs_done(); }
            const workload::Workload& workload() const override { return inner_->workload(); }
            const workload::HyperParams& hyperparams() const override {
                return inner_->hyperparams();
            }

        private:
            std::unique_ptr<workload::TrialSession> inner_;
            double slowdown_;
        };
        return std::make_unique<Session>(inner_.start_trial(workload, hyper), slowdown_);
    }
    std::string name() const override { return "contended-" + inner_.name(); }

private:
    workload::Backend& inner_;
    double slowdown_;
};

}  // namespace

int main() {
    bench::print_header("Figure 5", "Tune V2 characterization under cores x co-located jobs");

    const auto& workload = workload::find_workload("lenet-mnist");

    // Baseline: a single uncontended Tune V1 job.
    sim::SimBackend base_backend({.seed = 50});
    hpt::HptJobConfig base_job;
    base_job.seed = 50;
    const auto v1 = hpt::run_tune_v1(base_backend, workload, base_job);
    const double base_error = 100.0 - v1.final_accuracy;
    const double base_training = v1.training_time_s;

    util::Table table({"cores", "jobs", "error improvement [%]", "runtime improvement [%]"});
    util::CsvWriter csv("fig05_tune_characterization.csv",
                        {"cores", "jobs", "error_improvement_pct", "runtime_improvement_pct"});
    int improved_cells = 0, traded_cells = 0, total_cells = 0;
    for (std::size_t cores : {1, 2, 4, 8}) {
        for (std::size_t jobs : {2, 3, 4}) {
            sim::SimBackend inner({.seed = 60 + cores * 10 + jobs});
            ContendedBackend backend(inner, cluster::co_location_slowdown(jobs, cores));
            hpt::HptJobConfig job;
            job.seed = 60 + cores * 10 + jobs;
            job.default_system = {.cores = cores, .memory_gb = 16};
            const auto v2 = hpt::run_tune_v2(backend, workload, job);
            const double error = 100.0 - v2.final_accuracy;
            const double error_improvement = 100.0 * (base_error - error) / base_error;
            const double runtime_improvement =
                100.0 * (base_training - v2.training_time_s) / base_training;
            table.add_row({std::to_string(cores), std::to_string(jobs),
                           util::Table::num(error_improvement, 1),
                           util::Table::num(runtime_improvement, 1)});
            csv.add_row(std::vector<double>{static_cast<double>(cores),
                                            static_cast<double>(jobs), error_improvement,
                                            runtime_improvement});
            ++total_cells;
            if (error_improvement > 0 && runtime_improvement > 0) ++improved_cells;
            if (error_improvement < 0 && runtime_improvement > 0) ++traded_cells;
        }
    }
    std::cout << table.render();

    std::vector<bench::Claim> claims;
    claims.push_back({"Only a few system configurations improve on the baseline",
                      "few cells positive on both axes",
                      std::to_string(improved_cells) + "/" + std::to_string(total_cells) +
                          " cells improved both",
                      improved_cells < total_cells / 2});
    claims.push_back({"Some configurations trade accuracy for faster training",
                      "cells with worse error but better runtime",
                      std::to_string(traded_cells) + " trading cells", traded_cells >= 1});
    bench::print_claims(claims);
    return 0;
}
