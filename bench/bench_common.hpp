#pragma once
// Shared helpers for the figure/table reproduction benches: consistent
// headers, paper-vs-measured summaries, and CSV dumps next to the binary.

#include <iostream>
#include <string>
#include <vector>

#include "pipetune/util/table.hpp"

namespace pipetune::bench {

inline void print_header(const std::string& experiment_id, const std::string& description) {
    std::cout << util::section(experiment_id + " — " + description);
}

/// One line of the PAPER-vs-MEASURED summary every bench ends with.
struct Claim {
    std::string what;      ///< the paper's qualitative/quantitative claim
    std::string paper;     ///< value or trend reported in the paper
    std::string measured;  ///< what this run produced
    bool holds = false;    ///< does the measured shape match?
};

inline void print_claims(const std::vector<Claim>& claims) {
    util::Table table({"claim", "paper", "measured", "holds"});
    bool all = true;
    for (const auto& claim : claims) {
        table.add_row({claim.what, claim.paper, claim.measured, claim.holds ? "YES" : "NO"});
        all = all && claim.holds;
    }
    std::cout << "\nPAPER vs MEASURED\n" << table.render();
    std::cout << (all ? "[SHAPE OK] all claims hold\n" : "[SHAPE MISMATCH] see NO rows above\n");
}

inline std::string pct(double fraction, int precision = 1) {
    return util::Table::num(100.0 * fraction, precision) + "%";
}

}  // namespace pipetune::bench
