// Ablation: number of profiling epochs before the reuse/probe decision
// (DESIGN.md §6; paper §7.3 relies on "low-overhead profiling ... across the
// first couple of epochs").
//
// More profiling epochs average out PMU noise (better features) but delay the
// payoff: every pre-decision epoch runs on the default configuration and pays
// the profiling overhead. HyperBand makes the delay expensive — rung-0 trials
// are only 1-3 epochs long, so a high P means most trials never get tuned.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

int main() {
    using namespace pipetune;
    bench::print_header("Ablation", "Profiling epochs before the tuning decision (LeNet+MNIST)");

    const auto& workload = workload::find_workload("lenet-mnist");

    util::Table table({"profiling epochs", "tuning [s]", "hits", "probes", "accuracy [%]"});
    util::CsvWriter csv("ablation_profiling.csv",
                        {"profiling_epochs", "tuning_s", "hits", "probes", "accuracy"});
    std::vector<double> tuning_times;
    for (std::size_t profiling_epochs : {1, 2, 3, 5, 8}) {
        sim::SimBackend backend({.seed = 600});
        hpt::HptJobConfig job;
        job.seed = 600;
        core::PipeTuneConfig config;
        config.profiling_epochs = profiling_epochs;
        core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});
        const auto result = core::run_pipetune(backend, workload, job, config, &warm);
        tuning_times.push_back(result.baseline.tuning.tuning_duration_s);
        table.add_row({std::to_string(profiling_epochs),
                       util::Table::num(result.baseline.tuning.tuning_duration_s, 0),
                       std::to_string(result.ground_truth_hits),
                       std::to_string(result.probes_started),
                       util::Table::num(result.baseline.final_accuracy, 2)});
        csv.add_row(std::vector<double>{static_cast<double>(profiling_epochs),
                                        result.baseline.tuning.tuning_duration_s,
                                        static_cast<double>(result.ground_truth_hits),
                                        static_cast<double>(result.probes_started),
                                        result.baseline.final_accuracy});
    }
    std::cout << table.render();

    std::vector<bench::Claim> claims;
    claims.push_back({"Short profiling beats long profiling on tuning time",
                      "decide early, tune more epochs",
                      util::Table::num(tuning_times.front(), 0) + " (P=1) vs " +
                          util::Table::num(tuning_times.back(), 0) + " (P=8)",
                      tuning_times.front() < tuning_times.back()});
    claims.push_back({"The library default (P=1) is on the efficient frontier",
                      "P=1 within 5% of the best sweep point",
                      util::Table::num(tuning_times.front(), 0),
                      tuning_times.front() <=
                          1.05 * *std::min_element(tuning_times.begin(), tuning_times.end())});
    bench::print_claims(claims);
    return 0;
}
