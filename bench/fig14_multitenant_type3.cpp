// Figure 14 reproduction: multi-tenancy with Type-III workloads (jacobi, bfs,
// spkmeans) on a single node (§7.4). Short-epoch jobs make probing overhead
// relatively larger per job, but the shared ground truth amortizes it across
// the trace: "the overhead of computation added for the unseen jobs is
// compensated by the gain of future similar incoming ones."
//
// Paper shape: PipeTune reduces average response time by up to 65% vs the
// baselines; the single-node queue amplifies per-job makespan gains.

#include <iostream>

#include "bench_common.hpp"
#include "bench_sched.hpp"
#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

using namespace pipetune;

enum class Approach { kV1, kV2, kPipeTune };

double run_trace(const std::vector<cluster::ArrivedJob>& jobs,
                 const std::vector<workload::Workload>& base_mix, Approach approach,
                 std::uint64_t seed) {
    sim::SimBackend backend({.seed = seed});
    cluster::FifoClusterSim sim({.nodes = 1});
    // The shared ground truth starts from the paper's offline profiling
    // campaign over the base workload catalogue (SS7.2); the 20% unseen job
    // variants are NOT in it and must probe.
    core::GroundTruth shared = approach == Approach::kPipeTune
                                   ? core::build_warm_ground_truth(backend, base_mix)
                                   : core::GroundTruth{};
    std::uint64_t job_seed = seed;
    const auto records = sim.run(jobs, [&](const cluster::ArrivedJob& job) {
        hpt::HptJobConfig config;
        config.seed = ++job_seed;
        config.parallel_slots = 1;  // everything on the single node
        switch (approach) {
            case Approach::kV1: {
                const auto r = hpt::run_tune_v1(backend, job.workload, config);
                return r.tuning.tuning_duration_s + r.training_time_s;
            }
            case Approach::kV2: {
                const auto r = hpt::run_tune_v2(backend, job.workload, config);
                return r.tuning.tuning_duration_s + r.training_time_s;
            }
            case Approach::kPipeTune: {
                const auto r = core::run_pipetune(backend, job.workload, config, {}, &shared);
                return r.baseline.tuning.tuning_duration_s + r.baseline.training_time_s;
            }
        }
        return 0.0;
    });
    return cluster::average_response_time(records);
}

}  // namespace

int main() {
    bench::print_header("Figure 14", "Multi-tenancy avg response time, Type-III on one node");

    struct Scenario {
        const char* label;
        std::vector<workload::Workload> mix;
    };
    std::vector<Scenario> scenarios;
    for (const auto& workload : workload::workloads_of_type(workload::WorkloadType::kType3))
        scenarios.push_back({workload.name.c_str(), {workload}});
    scenarios.push_back({"all", workload::workloads_of_type(workload::WorkloadType::kType3)});

    util::Table table({"scenario", "Tune V1 [s]", "Tune V2 [s]", "PipeTune [s]",
                       "PT vs V1", "PT vs V2"});
    util::CsvWriter csv("fig14_multitenant_type3.csv",
                        {"scenario", "v1_response_s", "v2_response_s", "pipetune_response_s"});
    double best_gain = 0.0;
    bool always_better = true;
    for (const auto& scenario : scenarios) {
        cluster::ArrivalConfig arrivals;
        arrivals.mean_interarrival_s = 700.0;
        arrivals.job_count = 10;
        arrivals.unseen_fraction = 0.2;
        arrivals.seed = 14;
        const auto jobs = cluster::generate_arrivals(scenario.mix, arrivals);

        const double v1 = run_trace(jobs, scenario.mix, Approach::kV1, 1400);
        const double v2 = run_trace(jobs, scenario.mix, Approach::kV2, 1400);
        const double pipetune = run_trace(jobs, scenario.mix, Approach::kPipeTune, 1400);
        const double gain_v1 = 100.0 * (1.0 - pipetune / v1);
        const double gain_v2 = 100.0 * (1.0 - pipetune / v2);
        best_gain = std::max(best_gain, std::max(gain_v1, gain_v2));
        always_better = always_better && pipetune < v1 && pipetune < v2;
        table.add_row({scenario.label, util::Table::num(v1, 0), util::Table::num(v2, 0),
                       util::Table::num(pipetune, 0), "-" + util::Table::num(gain_v1, 1) + "%",
                       "-" + util::Table::num(gain_v2, 1) + "%"});
        csv.add_row(std::vector<std::string>{scenario.label, util::Table::num(v1, 1),
                                             util::Table::num(v2, 1),
                                             util::Table::num(pipetune, 1)});
    }
    std::cout << table.render();

    // Scheduler-backed mode: single worker slot mirrors the single-node
    // setup, so queueing shows up as real queue depth on the one slot.
    cluster::ArrivalConfig replay_arrivals;
    replay_arrivals.mean_interarrival_s = 700.0;
    replay_arrivals.job_count = 10;
    replay_arrivals.unseen_fraction = 0.2;
    replay_arrivals.seed = 14;
    const auto replay_jobs = cluster::generate_arrivals(scenarios.back().mix, replay_arrivals);
    const auto replay =
        bench::run_scheduler_replay(replay_jobs, scenarios.back().mix, /*worker_slots=*/1,
                                    /*parallel_slots=*/1, /*compress=*/2e-5, 1400);
    util::Table replay_table({"mode", "jobs", "p50 resp [s]", "mean resp [s]",
                              "max queue depth", "GT hits", "store entries"});
    replay_table.add_row({"sched (1 slot)", util::Table::num(replay.jobs_completed, 0),
                          util::Table::num(replay.stats.p50_response_s, 3),
                          util::Table::num(replay.stats.mean_response_s, 3),
                          util::Table::num(replay.stats.max_queue_depth, 0),
                          util::Table::num(replay.ground_truth_hits, 0),
                          util::Table::num(replay.store_size, 0)});
    std::cout << replay_table.render();

    std::vector<bench::Claim> claims;
    claims.push_back({"Concurrent scheduler replays the trace with shared warm starts",
                      "all jobs complete, later jobs reuse recordings",
                      util::Table::num(replay.jobs_completed, 0) + " jobs, " +
                          util::Table::num(replay.ground_truth_hits, 0) + " hits",
                      replay.jobs_completed == replay_jobs.size() &&
                          replay.ground_truth_hits > 0});
    claims.push_back({"PipeTune lowers response time for every Type-III mix",
                      "lower across the board", always_better ? "all lower" : "not all",
                      always_better});
    claims.push_back({"Single-node queueing amplifies the gain", "up to 65% reduction",
                      "best " + util::Table::num(best_gain, 1) + "%", best_gain > 15.0});
    bench::print_claims(claims);
    return 0;
}
