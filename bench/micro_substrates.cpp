// micro_substrates — the before/after gate for the hot-path work (DESIGN.md
// §12): every optimisation in this repo that claims a speedup is measured
// here against the implementation it replaced, on the same binary, in the
// same run. Two substrates carry the claims:
//
//   KERNELS    scalar vs AVX2 through tensor::simd::force_isa — blocked GEMM,
//              im2col conv2d forward, and one full LeNet data-parallel
//              training epoch. The two ISA paths are bit-identical (the
//              parity suite asserts exact equality), so this measures pure
//              throughput, not an accuracy trade.
//   SCHEDULER  two rows. (a) The dispatch substrate: the legacy mutex+CV
//              JobQueue vs the MPMC ring under 16 threads (8 submitters, 8
//              drainers) — the structure swap SchedulerConfig::lock_light
//              performs, measured where it differs. (b) End-to-end:
//              ClusterScheduler in coarse vs lock-light mode running trivial
//              jobs at 16 worker slots — on a single-core host this path is
//              dominated by per-job costs identical in both modes (job
//              records, telemetry spans), so the claim there is
//              no-regression, not speedup.
//
// Timing follows the calibrate → warm up → repeat → p50/p99 protocol from
// bench_timing.hpp. Results land in BENCH_micro.json next to the binary;
// the gate claims ≥2× epoch throughput and ≥2× scheduler jobs/s.

#include <atomic>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_timing.hpp"
#include "pipetune/data/synthetic.hpp"
#include "pipetune/nn/models.hpp"
#include "pipetune/nn/trainer.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/sched/job_queue.hpp"
#include "pipetune/sched/mpmc_ring.hpp"
#include "pipetune/sched/scheduler.hpp"
#include "pipetune/tensor/ops.hpp"
#include "pipetune/tensor/simd.hpp"
#include "pipetune/util/fs.hpp"
#include "pipetune/util/json.hpp"
#include "pipetune/util/rng.hpp"
#include "pipetune/util/table.hpp"

namespace {

using namespace pipetune;

constexpr std::size_t kGemmDim = 192;
constexpr std::size_t kSchedulerSlots = 16;
constexpr std::size_t kSchedulerJobsPerRep = 2000;
constexpr std::size_t kSchedulerReps = 9;
constexpr std::size_t kDispatchPairs = 8;  // 8 submitters + 8 drainers = 16 threads
constexpr std::size_t kDispatchItemsPerProducer = 20000;
constexpr std::size_t kDispatchCapacity = 256;
constexpr std::size_t kDispatchReps = 5;

/// One before/after pair plus its ratio, as it lands in the JSON artifact.
struct Comparison {
    std::string name;
    bench::TimingSummary before;  ///< scalar kernels / coarse scheduler
    bench::TimingSummary after;   ///< AVX2 kernels / lock-light scheduler
    // Ratio of per-side minimum repetitions. On a shared (or single-core)
    // host, interference only ever adds time, so min-of-reps is the least
    // biased estimate of intrinsic cost; p50/p99 are still reported so the
    // spread is visible (DESIGN.md §12).
    double speedup = 0.0;

    util::Json to_json(const char* before_key, const char* after_key) const {
        util::Json doc = util::Json::object();
        doc[before_key] = before.to_json();
        doc[after_key] = after.to_json();
        doc["speedup"] = speedup;
        return doc;
    }
};

/// Run `fn` under both ISAs (dispatch restored afterwards). The per-call
/// work must be identical across ISAs — force_isa only swaps the kernel
/// table. Calibration happens once, on the slower scalar side, so both ISAs
/// are measured over the same inner count; repetitions interleave the two
/// ISAs (bench::measure_paired) so ambient noise cannot bias one side.
template <typename Fn>
Comparison compare_isa(std::string name, Fn&& fn, std::size_t repetitions = 11,
                       double min_rep_s = 0.02) {
    Comparison result;
    result.name = std::move(name);
    tensor::simd::force_isa(tensor::simd::Isa::kScalar);
    const std::size_t inner = bench::calibrate_iterations(fn, min_rep_s);
    auto [before, after] = bench::measure_paired(
        [&] {
            tensor::simd::force_isa(tensor::simd::Isa::kScalar);
            fn();
        },
        [&] {
            tensor::simd::force_isa(tensor::simd::Isa::kAvx2);
            fn();
        },
        repetitions, inner);
    tensor::simd::reset_isa();
    result.before = before;
    result.after = after;
    result.speedup = result.after.min_s > 0.0 ? result.before.min_s / result.after.min_s : 0.0;
    return result;
}

nn::Trainer make_trainer(const data::TrainTestPair& split) {
    nn::ImageModelConfig model_config;
    model_config.image_size = 20;
    model_config.classes = 4;
    model_config.seed = 3;
    nn::TrainerConfig trainer_config;
    trainer_config.batch_size = 16;
    trainer_config.sgd.learning_rate = 0.05;
    return nn::Trainer(nn::build_lenet5(model_config), *split.train, *split.test,
                       trainer_config);
}

/// One dispatch-substrate run: kDispatchPairs producer threads race the same
/// number of consumer threads over one bounded queue until every item has
/// crossed it. Thread spawn/join is inside the clock but is microseconds
/// against a run of kDispatchPairs * kDispatchItemsPerProducer crossings.
template <typename PushFn, typename PopFn>
void dispatch_run(PushFn push, PopFn pop) {
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(2 * kDispatchPairs);
    for (std::size_t t = 0; t < kDispatchPairs; ++t)
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
            for (std::size_t i = 0; i < kDispatchItemsPerProducer; ++i) push();
        });
    for (std::size_t t = 0; t < kDispatchPairs; ++t)
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
            for (std::size_t i = 0; i < kDispatchItemsPerProducer; ++i) pop();
        });
    go.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
}

Comparison measure_dispatch() {
    Comparison result;
    result.name = "dispatch_16_threads";
    auto [before, after] = bench::measure_paired(
        [] {
            sched::JobQueue<int> queue(kDispatchCapacity, sched::OverflowPolicy::kBlock);
            dispatch_run([&] { (void)queue.push(1); },
                         [&] {
                             std::uint64_t id;
                             int item;
                             (void)queue.pop(&id, &item);
                         });
        },
        [] {
            sched::MpmcRing<int> ring(kDispatchCapacity);
            dispatch_run(
                [&] {
                    while (!ring.try_push(1)) std::this_thread::yield();
                },
                [&] {
                    int item;
                    while (!ring.try_pop(&item)) std::this_thread::yield();
                });
        },
        kDispatchReps, 1);
    result.before = before;
    result.after = after;
    result.speedup = result.before.min_s / result.after.min_s;
    return result;
}

/// Jobs/s through a ClusterScheduler at kSchedulerSlots slots: one batch of
/// trivial jobs submitted and drained per repetition, workers reused across
/// repetitions so thread spawn stays out of the clock.
bench::TimingSummary measure_scheduler(bool lock_light) {
    obs::ObsContext obs;  // telemetry attached on BOTH sides — gauge-flush
                          // batching is part of what the gate measures
    sched::SchedulerConfig config;
    config.worker_slots = kSchedulerSlots;
    config.queue_capacity = 2 * kSchedulerJobsPerRep;  // pushes never block
    config.lock_light = lock_light;
    config.obs = &obs;
    sched::ClusterScheduler scheduler(config);
    std::atomic<std::size_t> executed{0};
    const auto one_batch = [&] {
        for (std::size_t i = 0; i < kSchedulerJobsPerRep; ++i)
            (void)scheduler.submit(
                [&](sched::JobContext&) { executed.fetch_add(1, std::memory_order_relaxed); });
        scheduler.drain();
    };
    auto summary = bench::measure(one_batch, kSchedulerReps, 1);
    scheduler.shutdown(true);
    if (executed.load() != (kSchedulerReps + 1) * kSchedulerJobsPerRep)
        throw std::runtime_error("scheduler bench lost jobs");
    return summary;
}

/// The end-to-end rows cannot be noise-paired the way the kernel and
/// dispatch rows are: two live 16-worker pools on a small host perturb each
/// other (the idle pool's wakeups steal cycles from the measured one). So
/// the two modes run sequentially, each pool torn down before the next
/// starts, and the ratio is taken at p50 — for a blocking-heavy workload
/// the median is the stable statistic, min is a lottery over futex timing.
Comparison measure_scheduler_pair() {
    Comparison result;
    result.name = "scheduler_e2e_16_slots";
    result.before = measure_scheduler(/*lock_light=*/false);
    result.after = measure_scheduler(/*lock_light=*/true);
    result.speedup = result.before.p50_s / result.after.p50_s;
    return result;
}

std::string ms(double seconds) { return util::Table::num(1e3 * seconds, 3); }

}  // namespace

int main() {
    bench::print_header("BENCH micro",
                        "hot-path before/after gate: scalar vs AVX2 kernels, coarse vs "
                        "lock-light scheduler");
    const bool has_avx2 = tensor::simd::best_isa() == tensor::simd::Isa::kAvx2;
    std::cout << "host ISA: best=" << tensor::simd::to_string(tensor::simd::best_isa())
              << " active=" << tensor::simd::to_string(tensor::simd::active_isa()) << "\n\n";

    util::Json doc = util::Json::object();
    doc["bench"] = "micro";
    doc["best_isa"] = tensor::simd::to_string(tensor::simd::best_isa());
    std::vector<bench::Claim> claims;
    util::Table table({"substrate", "before p50 ms", "after p50 ms", "after p99 ms", "speedup"});

    // ---- Kernel substrate: scalar vs AVX2 -------------------------------
    if (has_avx2) {
        util::Rng rng(1);
        const tensor::Tensor a = tensor::Tensor::uniform({kGemmDim, kGemmDim}, rng);
        const tensor::Tensor b = tensor::Tensor::uniform({kGemmDim, kGemmDim}, rng);
        auto gemm = compare_isa("gemm_" + std::to_string(kGemmDim),
                                [&] { tensor::matmul(a, b); });

        const tensor::Tensor input = tensor::Tensor::uniform({8, 1, 28, 28}, rng);
        const tensor::Tensor kernel = tensor::Tensor::uniform({6, 1, 5, 5}, rng);
        const tensor::Tensor bias({6});
        auto conv = compare_isa("conv2d_8x1x28x28",
                                [&] { tensor::conv2d(input, kernel, bias); });

        data::ImageDatasetConfig data_config;
        data_config.classes = 4;
        data_config.samples = 64;
        data_config.image_size = 20;
        data_config.seed = 3;
        auto split = data::make_image_split(data_config, "bench", 16);
        auto trainer = make_trainer(split);
        auto epoch = compare_isa("epoch_lenet", [&] { trainer.run_epoch(1); },
                                 /*repetitions=*/7, /*min_rep_s=*/0.0);

        for (const auto* c : {&gemm, &conv, &epoch})
            table.add_row({c->name, ms(c->before.p50_s), ms(c->after.p50_s),
                           ms(c->after.p99_s), util::Table::num(c->speedup, 2) + "x"});
        util::Json kernels = util::Json::object();
        for (const auto* c : {&gemm, &conv, &epoch})
            kernels[c->name] = c->to_json("scalar", "avx2");
        doc["kernels"] = std::move(kernels);

        claims.push_back({"vectorised GEMM beats scalar", ">= 2x",
                          util::Table::num(gemm.speedup, 2) + "x", gemm.speedup >= 2.0});
        claims.push_back({"im2col conv rides the GEMM speedup", ">= 1.5x",
                          util::Table::num(conv.speedup, 2) + "x", conv.speedup >= 1.5});
        claims.push_back({"epoch throughput (the paper's trial clock)", ">= 2x",
                          util::Table::num(epoch.speedup, 2) + "x", epoch.speedup >= 2.0});
    } else {
        // Scalar-only host: nothing to compare against — the gate is about
        // the AVX2 build, so record the skip instead of a fake pass/fail.
        doc["kernels"] = "skipped: host lacks AVX2";
        std::cout << "kernel substrate skipped: host lacks AVX2\n";
    }

    // ---- Scheduler substrate: coarse vs lock-light ----------------------
    Comparison dispatch = measure_dispatch();
    const double dispatch_items =
        static_cast<double>(kDispatchPairs * kDispatchItemsPerProducer);
    Comparison sched_cmp = measure_scheduler_pair();
    for (const auto* c : {&dispatch, &sched_cmp})
        table.add_row({c->name, ms(c->before.p50_s), ms(c->after.p50_s), ms(c->after.p99_s),
                       util::Table::num(c->speedup, 2) + "x"});
    std::cout << table.render() << "\n";
    std::cout << "dispatch substrate (" << 2 * kDispatchPairs << " threads, capacity "
              << kDispatchCapacity << "): mutex queue "
              << util::Table::num(dispatch_items / dispatch.before.p50_s, 0)
              << " jobs/s, MPMC ring "
              << util::Table::num(dispatch_items / dispatch.after.p50_s, 0) << " jobs/s\n";
    std::cout << "end-to-end scheduler (" << kSchedulerJobsPerRep << "-job batches, "
              << kSchedulerSlots << " slots): coarse "
              << util::Table::num(kSchedulerJobsPerRep * sched_cmp.before.ops_per_s(), 0)
              << " jobs/s, lock-light "
              << util::Table::num(kSchedulerJobsPerRep * sched_cmp.after.ops_per_s(), 0)
              << " jobs/s\n";

    util::Json dispatch_json = dispatch.to_json("mutex_queue", "mpmc_ring");
    dispatch_json["threads"] = 2 * kDispatchPairs;
    dispatch_json["capacity"] = kDispatchCapacity;
    dispatch_json["items_per_run"] = dispatch_items;
    dispatch_json["mutex_queue_jobs_per_s"] = dispatch_items / dispatch.before.p50_s;
    dispatch_json["mpmc_ring_jobs_per_s"] = dispatch_items / dispatch.after.p50_s;
    util::Json sched_json = sched_cmp.to_json("coarse", "lock_light");
    sched_json["worker_slots"] = kSchedulerSlots;
    sched_json["jobs_per_batch"] = kSchedulerJobsPerRep;
    sched_json["coarse_jobs_per_s"] = kSchedulerJobsPerRep * sched_cmp.before.ops_per_s();
    sched_json["lock_light_jobs_per_s"] = kSchedulerJobsPerRep * sched_cmp.after.ops_per_s();
    util::Json scheduler = util::Json::object();
    scheduler["dispatch"] = std::move(dispatch_json);
    scheduler["end_to_end"] = std::move(sched_json);
    doc["scheduler"] = std::move(scheduler);

    claims.push_back({"lock-light dispatch beats the mutex queue at 16 threads",
                      ">= 2x jobs/s", util::Table::num(dispatch.speedup, 2) + "x",
                      dispatch.speedup >= 2.0});
    // End-to-end on a single-core host: per-job costs shared by both modes
    // (job record allocation, telemetry span) dominate, and a mutex that is
    // never held by a preempted thread is nearly free — so the honest
    // end-to-end claim is "the lock-light path costs nothing", with the
    // structural win isolated in the dispatch row above.
    claims.push_back({"lock-light end-to-end does not regress at 16 slots",
                      ">= 0.8x jobs/s", util::Table::num(sched_cmp.speedup, 2) + "x",
                      sched_cmp.speedup >= 0.8});

    bench::print_claims(claims);

    const std::string out = "BENCH_micro.json";
    auto written = util::try_write_file_atomic(out, doc.dump(2) + "\n");
    if (!written.ok()) {
        std::cerr << "failed to write " << out << ": " << written.error() << "\n";
        return 1;
    }
    std::cout << "\nwrote " << out << "\n";
    return 0;
}
