// google-benchmark microbenchmarks of the substrates: tensor GEMM and conv,
// one data-parallel training epoch, k-means fit, PMU measurement and the
// analytic cost model. These quantify the constant factors behind the
// simulation's instant turnaround and the real engine's epoch times.

#include <benchmark/benchmark.h>

#include "pipetune/data/synthetic.hpp"
#include "pipetune/mlcore/kmeans.hpp"
#include "pipetune/nn/models.hpp"
#include "pipetune/nn/trainer.hpp"
#include "pipetune/perf/counter_model.hpp"
#include "pipetune/sim/cost_model.hpp"
#include "pipetune/tensor/ops.hpp"

namespace {

using namespace pipetune;

void BM_TensorMatmul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(1);
    const tensor::Tensor a = tensor::Tensor::uniform({n, n}, rng);
    const tensor::Tensor b = tensor::Tensor::uniform({n, n}, rng);
    for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
    util::Rng rng(2);
    const tensor::Tensor input = tensor::Tensor::uniform({8, 1, 28, 28}, rng);
    const tensor::Tensor kernel = tensor::Tensor::uniform({6, 1, 5, 5}, rng);
    const tensor::Tensor bias({6});
    for (auto _ : state) benchmark::DoNotOptimize(tensor::conv2d(input, kernel, bias));
}
BENCHMARK(BM_Conv2dForward);

void BM_LeNetEpoch(benchmark::State& state) {
    const auto workers = static_cast<std::size_t>(state.range(0));
    data::ImageDatasetConfig data_config;
    data_config.classes = 4;
    data_config.samples = 64;
    data_config.image_size = 20;
    data_config.seed = 3;
    auto split = data::make_image_split(data_config, "bench", 16);
    nn::ImageModelConfig model_config;
    model_config.image_size = 20;
    model_config.classes = 4;
    model_config.seed = 3;
    nn::TrainerConfig trainer_config;
    trainer_config.batch_size = 16;
    trainer_config.sgd.learning_rate = 0.05;
    nn::Trainer trainer(nn::build_lenet5(model_config), *split.train, *split.test,
                        trainer_config);
    for (auto _ : state) benchmark::DoNotOptimize(trainer.run_epoch(workers));
}
BENCHMARK(BM_LeNetEpoch)->Arg(1)->Arg(2);

void BM_KMeansFit(benchmark::State& state) {
    util::Rng rng(4);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 200; ++i) {
        std::vector<double> row(58);
        for (auto& v : row) v = rng.normal(i % 2 ? 5.0 : 0.0, 1.0);
        rows.push_back(std::move(row));
    }
    for (auto _ : state) {
        mlcore::KMeans kmeans({.k = 2, .max_iterations = 50, .tolerance = 1e-6, .seed = 1});
        benchmark::DoNotOptimize(kmeans.fit(rows));
    }
}
BENCHMARK(BM_KMeansFit);

void BM_PmuMeasureEpoch(benchmark::State& state) {
    perf::PmuSimulator pmu;
    util::Rng rng(5);
    const auto rates = perf::true_event_rates({.model_family = "lenet",
                                               .dataset_family = "mnist",
                                               .compute_scale = 1.0,
                                               .memory_scale = 1.0,
                                               .batch_size = 64,
                                               .cores = 8});
    for (auto _ : state) benchmark::DoNotOptimize(pmu.measure_epoch(rates, 60.0, rng));
}
BENCHMARK(BM_PmuMeasureEpoch);

void BM_CostModelEpoch(benchmark::State& state) {
    sim::CostModel cost;
    const auto& workload = workload::find_workload("lenet-mnist");
    workload::HyperParams hyper;
    hyper.batch_size = 128;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cost.epoch_seconds(workload, hyper, {.cores = 8, .memory_gb = 16}));
}
BENCHMARK(BM_CostModelEpoch);

}  // namespace

BENCHMARK_MAIN();
