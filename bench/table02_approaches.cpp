// Table 2 reproduction: accuracy, training time and tuning time for the four
// approaches (Arbitrary, Tune V1, Tune V2, PipeTune) on LeNet + MNIST.
//
// Paper values: Arbitrary 84.47% / 445s / -;  Tune V1 91.54% / 272s / 4575s;
//               Tune V2 81.76% / 187s / 4817s;  PipeTune 92.70% / 188s / 3415s.
// Expected shape: acc(PipeTune) ~ acc(V1) > acc(Arbitrary) > acc(V2);
//                 train(PipeTune) ~ train(V2) < train(V1) < train(Arbitrary);
//                 tune(PipeTune) < tune(V1) < tune(V2).

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

int main() {
    using namespace pipetune;
    bench::print_header("Table 2", "Accuracy / training / tuning time per approach (LeNet+MNIST)");

    sim::SimBackend backend({.seed = 42});
    const auto& workload = workload::find_workload("lenet-mnist");
    hpt::HptJobConfig job;
    job.seed = 42;

    // PipeTune's initial similarity model comes from the paper's offline
    // profiling campaign (§7.2) — the baselines need no such preparation.
    core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});
    core::ApproachComparison comparison;
    comparison.arbitrary = hpt::run_arbitrary(backend, workload, job);
    comparison.tune_v1 = hpt::run_tune_v1(backend, workload, job);
    comparison.tune_v2 = hpt::run_tune_v2(backend, workload, job);
    comparison.pipetune = core::run_pipetune(backend, workload, job, {}, &warm);

    util::Table table({"Approach", "Accuracy [%]", "Training Time [s]", "Tuning Time [s]"});
    auto row = [&](const std::string& name, const hpt::BaselineResult& r, bool tuned) {
        table.add_row({name, util::Table::num(r.final_accuracy, 2),
                       util::Table::num(r.training_time_s, 0),
                       tuned ? util::Table::num(r.tuning.tuning_duration_s, 0) : "-"});
    };
    row("Arbitrary", comparison.arbitrary, false);
    row("Tune V1", comparison.tune_v1, true);
    row("Tune V2", comparison.tune_v2, true);
    row("PipeTune", comparison.pipetune.baseline, true);
    std::cout << table.render();
    std::cout << "\nPipeTune internals: " << comparison.pipetune.ground_truth_hits
              << " ground-truth hits, " << comparison.pipetune.probes_started
              << " probes, store size " << comparison.pipetune.ground_truth_size << "\n";

    util::CsvWriter csv("table02_approaches.csv",
                        {"approach", "accuracy", "training_s", "tuning_s"});
    csv.add_row({std::string("arbitrary"),
                 util::Table::num(comparison.arbitrary.final_accuracy, 3),
                 util::Table::num(comparison.arbitrary.training_time_s, 1), "0"});
    csv.add_row({std::string("tune_v1"), util::Table::num(comparison.tune_v1.final_accuracy, 3),
                 util::Table::num(comparison.tune_v1.training_time_s, 1),
                 util::Table::num(comparison.tune_v1.tuning.tuning_duration_s, 1)});
    csv.add_row({std::string("tune_v2"), util::Table::num(comparison.tune_v2.final_accuracy, 3),
                 util::Table::num(comparison.tune_v2.training_time_s, 1),
                 util::Table::num(comparison.tune_v2.tuning.tuning_duration_s, 1)});
    csv.add_row({std::string("pipetune"),
                 util::Table::num(comparison.pipetune.baseline.final_accuracy, 3),
                 util::Table::num(comparison.pipetune.baseline.training_time_s, 1),
                 util::Table::num(comparison.pipetune.baseline.tuning.tuning_duration_s, 1)});

    const auto& arb = comparison.arbitrary;
    const auto& v1 = comparison.tune_v1;
    const auto& v2 = comparison.tune_v2;
    const auto& pt = comparison.pipetune.baseline;
    std::vector<bench::Claim> claims;
    claims.push_back({"PipeTune accuracy on par with V1 (within 2 points)",
                      "92.70 vs 91.54",
                      util::Table::num(pt.final_accuracy, 2) + " vs " +
                          util::Table::num(v1.final_accuracy, 2),
                      pt.final_accuracy >= v1.final_accuracy - 2.0});
    claims.push_back({"V2 accuracy below V1 (ratio objective trades accuracy)",
                      "81.76 < 91.54",
                      util::Table::num(v2.final_accuracy, 2) + " < " +
                          util::Table::num(v1.final_accuracy, 2),
                      v2.final_accuracy < v1.final_accuracy});
    claims.push_back({"Arbitrary accuracy below tuned V1",
                      "84.47 < 91.54",
                      util::Table::num(arb.final_accuracy, 2) + " < " +
                          util::Table::num(v1.final_accuracy, 2),
                      arb.final_accuracy < v1.final_accuracy});
    claims.push_back({"PipeTune training time ~ V2, both below V1",
                      "188 ~ 187 < 272",
                      util::Table::num(pt.training_time_s, 0) + " ~ " +
                          util::Table::num(v2.training_time_s, 0) + " < " +
                          util::Table::num(v1.training_time_s, 0),
                      pt.training_time_s < v1.training_time_s &&
                          v2.training_time_s < v1.training_time_s});
    claims.push_back({"PipeTune tuning time below V1",
                      "3415 < 4575 (-25%)",
                      util::Table::num(pt.tuning.tuning_duration_s, 0) + " < " +
                          util::Table::num(v1.tuning.tuning_duration_s, 0),
                      pt.tuning.tuning_duration_s < v1.tuning.tuning_duration_s});
    claims.push_back({"V2 tuning time above V1 (larger space, harder objective)",
                      "4817 > 4575 (+5-18%)",
                      util::Table::num(v2.tuning.tuning_duration_s, 0) + " > " +
                          util::Table::num(v1.tuning.tuning_duration_s, 0),
                      v2.tuning.tuning_duration_s > v1.tuning.tuning_duration_s});
    bench::print_claims(claims);
    return 0;
}
