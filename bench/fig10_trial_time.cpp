// Figure 10 reproduction: training-trial time evolution over the tuning run
// (CNN on News20). The paper observes that PipeTune "consistently presents
// shorter trial times than the other two approaches during the entire tuning
// process", and that V1 — which ignores runtime — can end up with slower
// trials than V2.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"
#include "pipetune/util/stats.hpp"

namespace {

using namespace pipetune;

// Mean per-epoch trial time of the completions in [from, to) of the run.
double mean_epoch_normalized_trial_time(const std::vector<hpt::ConvergencePoint>& convergence) {
    util::RunningStats stats;
    for (const auto& point : convergence)
        if (point.trial_duration_s > 0) stats.add(point.trial_duration_s);
    return stats.mean();
}

}  // namespace

int main() {
    bench::print_header("Figure 10", "Training-trial time evolution (CNN on News20)");

    const auto& workload = workload::find_workload("cnn-news20");
    sim::SimBackend backend({.seed = 100});
    hpt::HptJobConfig job;
    job.seed = 100;

    const auto v1 = hpt::run_tune_v1(backend, workload, job);
    const auto v2 = hpt::run_tune_v2(backend, workload, job);
    core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});  // paper SS7.2
    const auto pipetune = core::run_pipetune(backend, workload, job, {}, &warm);

    util::CsvWriter csv("fig10_trial_time.csv", {"approach", "time_s", "trial_duration_s"});
    auto dump = [&](const char* name, const std::vector<hpt::ConvergencePoint>& convergence) {
        for (const auto& point : convergence)
            csv.add_row({std::string(name), util::Table::num(point.time_s, 1),
                         util::Table::num(point.trial_duration_s, 1)});
    };
    dump("pipetune", pipetune.baseline.tuning.convergence);
    dump("tune_v1", v1.tuning.convergence);
    dump("tune_v2", v2.tuning.convergence);

    // Quartile view of trial durations along the run.
    auto quartiles = [](const std::vector<hpt::ConvergencePoint>& convergence) {
        std::vector<double> durations;
        for (const auto& point : convergence) durations.push_back(point.trial_duration_s);
        return std::array<double, 3>{util::percentile(durations, 25),
                                     util::percentile(durations, 50),
                                     util::percentile(durations, 75)};
    };
    util::Table table({"approach", "p25 trial time [s]", "median [s]", "p75 [s]", "mean [s]"});
    const auto q_pt = quartiles(pipetune.baseline.tuning.convergence);
    const auto q_v1 = quartiles(v1.tuning.convergence);
    const auto q_v2 = quartiles(v2.tuning.convergence);
    const double mean_pt = mean_epoch_normalized_trial_time(pipetune.baseline.tuning.convergence);
    const double mean_v1 = mean_epoch_normalized_trial_time(v1.tuning.convergence);
    const double mean_v2 = mean_epoch_normalized_trial_time(v2.tuning.convergence);
    table.add_row({"PipeTune", util::Table::num(q_pt[0], 0), util::Table::num(q_pt[1], 0),
                   util::Table::num(q_pt[2], 0), util::Table::num(mean_pt, 0)});
    table.add_row({"Tune V1", util::Table::num(q_v1[0], 0), util::Table::num(q_v1[1], 0),
                   util::Table::num(q_v1[2], 0), util::Table::num(mean_v1, 0)});
    table.add_row({"Tune V2", util::Table::num(q_v2[0], 0), util::Table::num(q_v2[1], 0),
                   util::Table::num(q_v2[2], 0), util::Table::num(mean_v2, 0)});
    std::cout << table.render();

    std::vector<bench::Claim> claims;
    // Divergence note: in our substrate V2's ratio objective promotes
    // genuinely fast configurations, so its completed trials are short; the
    // paper's V2 fares worse here. We therefore check PipeTune strictly
    // against V1 and within a band of V2 (see EXPERIMENTS.md).
    claims.push_back({"PipeTune mean trial time below V1, near V2",
                      "lowest curve in Fig 10",
                      util::Table::num(mean_pt, 0) + " vs V1 " + util::Table::num(mean_v1, 0) +
                          " / V2 " + util::Table::num(mean_v2, 0),
                      mean_pt <= mean_v1 && mean_pt <= 1.35 * mean_v2});
    claims.push_back({"PipeTune median trial time within 10% of the best", "shorter throughout",
                      util::Table::num(q_pt[1], 0) + " vs min(" + util::Table::num(q_v1[1], 0) +
                          ", " + util::Table::num(q_v2[1], 0) + ")",
                      q_pt[1] <= 1.1 * std::min(q_v1[1], q_v2[1])});
    claims.push_back({"PipeTune mean trial time below V1", "shorter throughout",
                      util::Table::num(mean_pt, 0) + " < " + util::Table::num(mean_v1, 0),
                      mean_pt < mean_v1});
    bench::print_claims(claims);
    return 0;
}
