// Ablation: DVFS frequency as a third tuned system parameter — the extension
// the paper names in §7.1.4 ("the same mechanisms can be applied to any other
// parameter of interest (e.g., CPU frequency, CPU voltage)").
//
// Whether a lower clock saves energy depends on the platform's static/dynamic
// power split: on the paper's quad-socket nodes static (idle) power dominates,
// so stretching runtime at lower clocks wastes energy — "race-to-idle" wins
// and PipeTune's probing correctly rejects sub-base clocks under either
// objective. On a dynamic-power-dominated platform (low idle), the energy
// objective picks lower clocks and saves energy at a runtime cost. This
// ablation measures both regimes; the probing mechanism needs no change.

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

using namespace pipetune;

struct Cell {
    double tuning_s = 0.0;
    double energy_kj = 0.0;
};

Cell run(const energy::PowerModelConfig& power, bool tune_frequency,
         core::PipeTuneConfig::ProbeObjective objective) {
    sim::SimBackendConfig backend_config;
    backend_config.power = power;
    backend_config.seed = 700;
    sim::SimBackend backend(backend_config);
    const auto& workload = workload::find_workload("lenet-mnist");
    hpt::HptJobConfig job;
    job.seed = 700;
    core::PipeTuneConfig config;
    config.tune_frequency = tune_frequency;
    config.probe_objective = objective;
    const auto result = core::run_pipetune(backend, workload, job, config);
    return {result.baseline.tuning.tuning_duration_s,
            result.baseline.tuning.tuning_energy_j / 1000.0};
}

}  // namespace

int main() {
    bench::print_header("Ablation",
                        "DVFS frequency probing: race-to-idle vs dynamic-power platforms");

    // Platform A: the evaluation default — static power dominates (120 W idle).
    energy::PowerModelConfig idle_heavy;
    // Platform B: dynamic power dominates (aggressive power gating, 15 W idle,
    // beefier per-core draw).
    energy::PowerModelConfig dynamic_heavy;
    dynamic_heavy.idle_watts = 15.0;
    dynamic_heavy.per_core_watts = 18.0;

    util::Table table({"platform", "probe objective", "DVFS", "tuning [s]", "energy [kJ]"});
    util::CsvWriter csv("ablation_frequency.csv",
                        {"platform", "objective", "dvfs", "tuning_s", "energy_kj"});
    auto row = [&](const char* platform, const char* objective, const char* dvfs,
                   const Cell& cell) {
        table.add_row({platform, objective, dvfs, util::Table::num(cell.tuning_s, 0),
                       util::Table::num(cell.energy_kj, 0)});
        csv.add_row(std::vector<std::string>{platform, objective, dvfs,
                                             util::Table::num(cell.tuning_s, 1),
                                             util::Table::num(cell.energy_kj, 1)});
    };

    const Cell a_duration = run(idle_heavy, true, core::PipeTuneConfig::ProbeObjective::kDuration);
    const Cell a_energy_off = run(idle_heavy, false, core::PipeTuneConfig::ProbeObjective::kEnergy);
    const Cell a_energy_on = run(idle_heavy, true, core::PipeTuneConfig::ProbeObjective::kEnergy);
    row("idle-heavy", "duration", "on", a_duration);
    row("idle-heavy", "energy", "off", a_energy_off);
    row("idle-heavy", "energy", "on", a_energy_on);

    const Cell b_energy_off =
        run(dynamic_heavy, false, core::PipeTuneConfig::ProbeObjective::kEnergy);
    const Cell b_energy_on =
        run(dynamic_heavy, true, core::PipeTuneConfig::ProbeObjective::kEnergy);
    row("dynamic-heavy", "energy", "off", b_energy_off);
    row("dynamic-heavy", "energy", "on", b_energy_on);
    std::cout << table.render();

    std::vector<bench::Claim> claims;
    claims.push_back(
        {"Idle-heavy platform: DVFS adds no energy benefit (race-to-idle)",
         "probing rejects slow clocks",
         util::Table::num(a_energy_on.energy_kj, 0) + " vs " +
             util::Table::num(a_energy_off.energy_kj, 0) + " kJ",
         a_energy_on.energy_kj >= 0.97 * a_energy_off.energy_kj});
    claims.push_back(
        {"Idle-heavy platform: DVFS probing overhead is small",
         "< 3% extra tuning time",
         util::Table::num(a_energy_on.tuning_s, 0) + " vs " +
             util::Table::num(a_energy_off.tuning_s, 0) + " s",
         a_energy_on.tuning_s <= 1.03 * a_energy_off.tuning_s});
    claims.push_back(
        {"Dynamic-heavy platform: energy objective + DVFS saves energy",
         "lower clocks cut cubic dynamic power",
         util::Table::num(b_energy_on.energy_kj, 0) + " < " +
             util::Table::num(b_energy_off.energy_kj, 0) + " kJ",
         b_energy_on.energy_kj < b_energy_off.energy_kj});
    claims.push_back(
        {"Dynamic-heavy platform: the saving costs runtime",
         "slower but cheaper",
         util::Table::num(b_energy_on.tuning_s, 0) + " >= " +
             util::Table::num(b_energy_off.tuning_s, 0) + " s",
         b_energy_on.tuning_s >= b_energy_off.tuning_s * 0.98});
    bench::print_claims(claims);
    return 0;
}
