#pragma once
// Unified wall-clock measurement for the bench harness (DESIGN.md §12,
// "Perf methodology"). Every BENCH_* artifact times through this header so
// calibration, repetition counts and p50/p99 summaries mean the same thing
// in every file: previously bench_serve.cpp, bench_sched.hpp and the figure
// benches each carried their own steady_clock arithmetic.
//
// Protocol (the one DESIGN.md §12 documents):
//   1. CALIBRATE — grow the inner iteration count geometrically until one
//      repetition runs for at least `min_rep_s`, so a repetition is long
//      enough that clock granularity and scheduling jitter stay in the
//      noise floor.
//   2. WARM UP — run (and discard) `warmup` repetitions: first-touch page
//      faults, cold caches and lazy initialisation are not the steady state
//      being claimed.
//   3. REPEAT — time `repetitions` independent repetitions and summarise
//      the per-iteration seconds as p50 (the reported central value — robust
//      to a noisy neighbour in a way the mean is not) and p99 (the tail).
// Percentiles come from util::percentile (linear interpolation), the same
// estimator the serving bench and the cluster simulator report.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <utility>
#include <vector>

#include "pipetune/util/json.hpp"
#include "pipetune/util/stats.hpp"

namespace pipetune::bench {

using Clock = std::chrono::steady_clock;

/// Seconds elapsed since `start` on the monotonic bench clock.
inline double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Wall-clock seconds of one invocation of `fn`.
template <typename Fn>
double time_once(Fn&& fn) {
    const auto start = Clock::now();
    fn();
    return seconds_since(start);
}

/// Result of one measure() run. All latencies are seconds PER ITERATION
/// (repetition time / inner_iterations); throughput helpers invert p50.
struct TimingSummary {
    std::size_t repetitions = 0;
    std::size_t inner_iterations = 1;  ///< fn calls per timed repetition
    double total_s = 0.0;              ///< wall clock across all repetitions
    double mean_s = 0.0;
    double p50_s = 0.0;
    double p99_s = 0.0;
    double min_s = 0.0;

    /// Iterations per second at the median repetition.
    double ops_per_s() const { return p50_s > 0.0 ? 1.0 / p50_s : 0.0; }

    util::Json to_json() const {
        util::Json doc = util::Json::object();
        doc["repetitions"] = repetitions;
        doc["inner_iterations"] = inner_iterations;
        doc["mean_s"] = mean_s;
        doc["p50_s"] = p50_s;
        doc["p99_s"] = p99_s;
        doc["min_s"] = min_s;
        doc["ops_per_s"] = ops_per_s();
        return doc;
    }
};

/// Step 1 of the protocol: smallest iteration count whose repetition runs
/// for at least `min_rep_s` (grown geometrically, capped at 2^20).
template <typename Fn>
std::size_t calibrate_iterations(Fn&& fn, double min_rep_s = 0.01) {
    std::size_t iterations = 1;
    for (;;) {
        const auto start = Clock::now();
        for (std::size_t i = 0; i < iterations; ++i) fn();
        const double elapsed = seconds_since(start);
        if (elapsed >= min_rep_s || iterations >= (std::size_t{1} << 20)) return iterations;
        // Overshoot the projection slightly so calibration converges in a
        // couple of rounds instead of creeping up on the threshold.
        const double projected =
            elapsed > 0.0 ? static_cast<double>(iterations) * (min_rep_s / elapsed) * 1.4
                          : static_cast<double>(iterations) * 2.0;
        iterations = std::max(iterations + 1, static_cast<std::size_t>(projected));
    }
}

/// Summarise per-iteration timings (seconds per fn call) into the reported
/// statistics; `total_s` is the sum of timed repetition wall clock.
inline TimingSummary summarize(const std::vector<double>& per_iteration_s,
                               std::size_t inner_iterations) {
    TimingSummary summary;
    summary.repetitions = per_iteration_s.size();
    summary.inner_iterations = inner_iterations;
    for (double s : per_iteration_s) summary.total_s += s * static_cast<double>(inner_iterations);
    summary.mean_s = util::mean(per_iteration_s);
    summary.p50_s = util::percentile(per_iteration_s, 50.0);
    summary.p99_s = util::percentile(per_iteration_s, 99.0);
    summary.min_s = util::min_of(per_iteration_s);
    return summary;
}

/// Steps 2–3: discard `warmup` repetitions, then time `repetitions`
/// repetitions of `inner_iterations` calls each and summarise.
template <typename Fn>
TimingSummary measure(Fn&& fn, std::size_t repetitions, std::size_t inner_iterations,
                      std::size_t warmup = 1) {
    for (std::size_t r = 0; r < warmup; ++r)
        for (std::size_t i = 0; i < inner_iterations; ++i) fn();
    std::vector<double> per_iteration_s;
    per_iteration_s.reserve(repetitions);
    for (std::size_t r = 0; r < repetitions; ++r) {
        const auto rep_start = Clock::now();
        for (std::size_t i = 0; i < inner_iterations; ++i) fn();
        per_iteration_s.push_back(seconds_since(rep_start) /
                                  static_cast<double>(inner_iterations));
    }
    return summarize(per_iteration_s, inner_iterations);
}

/// Paired before/after variant of measure(): repetitions of the two sides
/// are interleaved (A, B, A, B, ...) so an ambient noise episode — another
/// tenant, a frequency excursion, the VM hypervisor — lands on both sides
/// instead of biasing whichever side it happened to coincide with. Every
/// before/after speedup in BENCH_micro.json is a ratio of the two min_s
/// values from one paired run: on a shared host interference only ever adds
/// time, so min-of-reps is the least biased estimate of intrinsic cost.
template <typename FnA, typename FnB>
std::pair<TimingSummary, TimingSummary> measure_paired(FnA&& before_fn, FnB&& after_fn,
                                                       std::size_t repetitions,
                                                       std::size_t inner_iterations,
                                                       std::size_t warmup = 1) {
    for (std::size_t r = 0; r < warmup; ++r) {
        for (std::size_t i = 0; i < inner_iterations; ++i) before_fn();
        for (std::size_t i = 0; i < inner_iterations; ++i) after_fn();
    }
    std::vector<double> before_s, after_s;
    before_s.reserve(repetitions);
    after_s.reserve(repetitions);
    for (std::size_t r = 0; r < repetitions; ++r) {
        auto rep_start = Clock::now();
        for (std::size_t i = 0; i < inner_iterations; ++i) before_fn();
        before_s.push_back(seconds_since(rep_start) / static_cast<double>(inner_iterations));
        rep_start = Clock::now();
        for (std::size_t i = 0; i < inner_iterations; ++i) after_fn();
        after_s.push_back(seconds_since(rep_start) / static_cast<double>(inner_iterations));
    }
    return {summarize(before_s, inner_iterations), summarize(after_s, inner_iterations)};
}

/// The full protocol in one call: calibrate, warm up, repeat, summarise.
template <typename Fn>
TimingSummary measure_calibrated(Fn&& fn, std::size_t repetitions = 11,
                                 double min_rep_s = 0.01, std::size_t warmup = 1) {
    const std::size_t inner = calibrate_iterations(fn, min_rep_s);
    return measure(fn, repetitions, inner, warmup);
}

}  // namespace pipetune::bench
