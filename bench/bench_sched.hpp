#pragma once
// Scheduler-backed replay for the multi-tenancy benches (Figs 13-14): run the
// same arrival trace through sched::ConcurrentPipeTuneService on real worker
// threads instead of the FifoClusterSim virtual-time loop. Arrival gaps are
// compressed by `compress` and slept on the submitting thread, so job overlap,
// queueing, and ground-truth sharing all happen under genuine concurrency.

#include <chrono>
#include <thread>
#include <vector>

#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/obs/obs_context.hpp"
#include "pipetune/sched/concurrent_service.hpp"
#include "pipetune/sim/sim_backend.hpp"

namespace pipetune::bench {

struct SchedReplayResult {
    cluster::TraceStats stats;
    std::size_t jobs_completed = 0;
    std::size_t ground_truth_hits = 0;  ///< summed over all jobs in the replay
    std::size_t store_size = 0;         ///< shared-store entries after the replay
};

inline SchedReplayResult run_scheduler_replay(const std::vector<cluster::ArrivedJob>& jobs,
                                              const std::vector<workload::Workload>& base_mix,
                                              std::size_t worker_slots,
                                              std::size_t parallel_slots, double compress,
                                              std::uint64_t seed,
                                              obs::ObsContext* obs = nullptr) {
    sim::SimBackend backend({.seed = seed});
    core::ServiceOptions options;
    options.concurrency = worker_slots;
    // Large enough that submit never blocks; admission timing must track the
    // trace's arrival process, not queue backpressure.
    options.queue_capacity = jobs.size() + 1;
    options.obs = obs;
    sched::ConcurrentPipeTuneService service(backend, options);

    // Seed the shared store from the offline profiling campaign (§7.2), the
    // same warm start the virtual-time PipeTune rows get; the trace's unseen
    // variants still have to probe.
    const auto warm = core::build_warm_ground_truth(backend, base_mix);
    for (const auto& entry : warm.entries())
        service.cluster_state().ground_truth().record(entry.features, entry.best_system,
                                                      entry.metric);

    std::vector<core::TuningService::Submission> submissions;
    double prev_arrival_s = 0.0;
    std::uint64_t job_seed = seed;
    for (const auto& job : jobs) {
        const double gap_s = (job.arrival_s - prev_arrival_s) * compress;
        prev_arrival_s = job.arrival_s;
        if (gap_s > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(gap_s));
        hpt::HptJobConfig job_config;
        job_config.seed = ++job_seed;
        job_config.parallel_slots = parallel_slots;
        auto submission =
            service.submit(job.workload, job_config, {.label = job.workload.name});
        if (submission.has_value()) submissions.push_back(std::move(*submission));
    }

    SchedReplayResult result;
    for (auto& submission : submissions)
        result.ground_truth_hits += submission.result.get().ground_truth_hits;
    service.drain();
    const auto trace = service.trace();
    result.jobs_completed = trace.size();
    result.stats = cluster::summarize_trace(trace, worker_slots);
    result.store_size = service.cluster_state().ground_truth_size();
    return result;
}

}  // namespace pipetune::bench
