// Figure 8 reproduction: k-means (k = 2) over epoch profiles groups the
// Type-I (image) and Type-II (text) workloads into separate clusters — the
// evidence that low-level hardware counters capture workload similarity
// without seeing the user's model or dataset (§5.4, §5.5).
//
// Profiles are collected under the paper's training-instance sweep (§7.2):
// memory {4, 8, 16, 32} GB x cores {4, 8, 16} x batch {32, 64, 512, 1024},
// i.e. 48 configurations per workload, each profiled twice.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "pipetune/mlcore/similarity.hpp"
#include "pipetune/perf/profiler.hpp"
#include "pipetune/sim/cost_model.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

int main() {
    using namespace pipetune;
    bench::print_header("Figure 8", "k-means clusters of workload profiles (k = 2)");

    const std::vector<std::string> names{"lenet-mnist", "lenet-fashion", "cnn-news20",
                                         "lstm-news20"};
    sim::CostModel cost;
    perf::Profiler profiler({}, 88);

    std::vector<std::vector<double>> features;
    std::vector<std::string> feature_workload;
    for (const auto& name : names) {
        const auto& workload = workload::find_workload(name);
        for (std::size_t mem : {4, 8, 16, 32})
            for (std::size_t cores : {4, 8, 16})
                for (std::size_t batch : {32, 64, 512, 1024})
                    for (int repeat = 0; repeat < 2; ++repeat) {
                        workload::HyperParams hyper;
                        hyper.batch_size = batch;
                        const workload::SystemParams system{.cores = cores, .memory_gb = mem};
                        const double duration = cost.epoch_seconds(workload, hyper, system);
                        const auto profile = profiler.profile_epoch(
                            sim::SimBackend::fingerprint(workload, hyper, system), duration, 0.0,
                            1);
                        features.push_back(perf::profile_features(profile));
                        feature_workload.push_back(name);
                    }
    }

    mlcore::KMeansSimilarity similarity(
        {.k = 2, .max_iterations = 200, .tolerance = 1e-9, .seed = 8});
    similarity.fit(features);

    // Assignment histogram per workload.
    std::map<std::string, std::array<std::size_t, 2>> histogram;
    for (std::size_t i = 0; i < features.size(); ++i) {
        const auto match = similarity.match(features[i]);
        ++histogram[feature_workload[i]][match->cluster % 2];
    }

    util::Table table({"workload", "type", "cluster 1", "cluster 2", "majority"});
    util::CsvWriter csv("fig08_clustering.csv", {"workload", "type", "cluster1", "cluster2"});
    std::map<std::string, std::size_t> majority;
    for (const auto& name : names) {
        const auto& workload = workload::find_workload(name);
        const auto& counts = histogram[name];
        majority[name] = counts[0] >= counts[1] ? 0 : 1;
        table.add_row({name, to_string(workload.type), std::to_string(counts[0]),
                       std::to_string(counts[1]),
                       "cluster " + std::to_string(majority[name] + 1)});
        csv.add_row({name, to_string(workload.type), std::to_string(counts[0]),
                     std::to_string(counts[1])});
    }
    std::cout << table.render();

    const bool type1_together = majority["lenet-mnist"] == majority["lenet-fashion"];
    const bool type2_together = majority["cnn-news20"] == majority["lstm-news20"];
    const bool types_separate = majority["lenet-mnist"] != majority["cnn-news20"];
    // Purity: fraction of profiles in their workload's majority cluster.
    std::size_t pure = 0, total = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
        const auto match = similarity.match(features[i]);
        if (match->cluster % 2 == majority[feature_workload[i]]) ++pure;
        ++total;
    }
    const double purity = static_cast<double>(pure) / static_cast<double>(total);

    std::vector<bench::Claim> claims;
    claims.push_back({"Type-I workloads share a cluster", "lenet-* together",
                      type1_together ? "together" : "split", type1_together});
    claims.push_back({"Type-II workloads share a cluster", "cnn/lstm-news20 together",
                      type2_together ? "together" : "split", type2_together});
    claims.push_back({"Type-I and Type-II land in different clusters", "separated",
                      types_separate ? "separated" : "mixed", types_separate});
    claims.push_back({"Clustering is clean (majority purity)", "most data fits its cluster",
                      pipetune::bench::pct(purity), purity > 0.9});
    bench::print_claims(claims);
    return 0;
}
