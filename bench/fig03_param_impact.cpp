// Figure 3 reproduction (LeNet + MNIST):
//  (a) batch-size impact on accuracy / duration / energy, baseline batch 32;
//  (b) cores impact on epoch duration per batch size, baseline 1 core;
//  (c) cores impact on energy per batch size, baseline 1 core.
//
// Paper shapes: larger batches -> worse accuracy but shorter, cheaper epochs;
// extra cores speed up large batches but *slow down* small ones (synchronous
// SGD sync overhead); energy tracks runtime.

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/energy/power.hpp"
#include "pipetune/sim/accuracy_model.hpp"
#include "pipetune/sim/cost_model.hpp"
#include "pipetune/util/csv.hpp"

namespace {

using namespace pipetune;

double epoch_energy(const sim::CostModel& cost, const energy::PowerModel& power,
                    const workload::Workload& workload, const workload::HyperParams& hyper,
                    const workload::SystemParams& system) {
    const double duration = cost.epoch_seconds(workload, hyper, system);
    const double watts = power.power_watts(system.cores,
                                           cost.compute_utilization(workload, hyper, system),
                                           static_cast<double>(system.memory_gb));
    return watts * duration;
}

double pct_diff(double value, double baseline) { return 100.0 * (value - baseline) / baseline; }

}  // namespace

int main() {
    bench::print_header("Figure 3", "Hyper & system parameter impact on LeNet+MNIST");

    const auto& workload = workload::find_workload("lenet-mnist");
    sim::CostModel cost;
    sim::AccuracyModel accuracy;
    energy::PowerModel power;
    const std::size_t kEpochBudget = 10;

    auto hp_for = [&](std::size_t batch) {
        workload::HyperParams hp;
        hp.batch_size = batch;
        hp.learning_rate = 0.02;
        hp.dropout = 0.2;
        return hp;
    };

    // ---- (a) batch-size impact vs batch 32 ----
    std::cout << "(a) Batch-size impact [% difference vs batch 32]\n";
    const workload::SystemParams default_system = workload::default_system_params();
    const auto hp32 = hp_for(32);
    const double acc_base = accuracy.accuracy_at(workload, hp32, kEpochBudget);
    const double dur_base = cost.epoch_seconds(workload, hp32, default_system);
    const double energy_base = epoch_energy(cost, power, workload, hp32, default_system);

    util::Table table_a({"batch", "accuracy diff [%]", "duration diff [%]", "energy diff [%]"});
    util::CsvWriter csv_a("fig03a_batch_impact.csv",
                          {"batch", "accuracy_diff_pct", "duration_diff_pct", "energy_diff_pct"});
    double acc_diff_1024 = 0, dur_diff_1024 = 0;
    for (std::size_t batch : {64, 256, 1024}) {
        const auto hp = hp_for(batch);
        const double acc_diff =
            pct_diff(accuracy.accuracy_at(workload, hp, kEpochBudget), acc_base);
        const double dur_diff = pct_diff(cost.epoch_seconds(workload, hp, default_system), dur_base);
        const double energy_diff =
            pct_diff(epoch_energy(cost, power, workload, hp, default_system), energy_base);
        if (batch == 1024) {
            acc_diff_1024 = acc_diff;
            dur_diff_1024 = dur_diff;
        }
        table_a.add_row({std::to_string(batch), util::Table::num(acc_diff, 1),
                         util::Table::num(dur_diff, 1), util::Table::num(energy_diff, 1)});
        csv_a.add_row(std::vector<double>{static_cast<double>(batch), acc_diff, dur_diff,
                                          energy_diff});
    }
    std::cout << table_a.render() << "\n";

    // ---- (b)/(c) cores impact per batch size, baseline 1 core ----
    std::cout << "(b) Cores impact on duration / (c) on energy [% difference vs 1 core]\n";
    util::Table table_bc({"cores", "dur batch64", "dur batch256", "dur batch1024", "en batch64",
                          "en batch256", "en batch1024"});
    util::CsvWriter csv_bc("fig03bc_cores_impact.csv",
                           {"cores", "dur64", "dur256", "dur1024", "en64", "en256", "en1024"});
    double dur64_at8 = 0, dur1024_at8 = 0, en64_at8 = 0, en1024_at8 = 0;
    for (std::size_t cores : {2, 4, 8}) {
        std::vector<std::string> row{std::to_string(cores)};
        std::vector<double> csv_row{static_cast<double>(cores)};
        std::vector<double> duration_diffs, energy_diffs;
        for (std::size_t batch : {64, 256, 1024}) {
            const auto hp = hp_for(batch);
            const workload::SystemParams one{.cores = 1, .memory_gb = 16};
            const workload::SystemParams many{.cores = cores, .memory_gb = 16};
            duration_diffs.push_back(pct_diff(cost.epoch_seconds(workload, hp, many),
                                              cost.epoch_seconds(workload, hp, one)));
            energy_diffs.push_back(pct_diff(epoch_energy(cost, power, workload, hp, many),
                                            epoch_energy(cost, power, workload, hp, one)));
        }
        for (double d : duration_diffs) {
            row.push_back(util::Table::num(d, 1));
            csv_row.push_back(d);
        }
        for (double e : energy_diffs) {
            row.push_back(util::Table::num(e, 1));
            csv_row.push_back(e);
        }
        if (cores == 8) {
            dur64_at8 = duration_diffs[0];
            dur1024_at8 = duration_diffs[2];
            en64_at8 = energy_diffs[0];
            en1024_at8 = energy_diffs[2];
        }
        table_bc.add_row(row);
        csv_bc.add_row(csv_row);
    }
    std::cout << table_bc.render();

    std::vector<bench::Claim> claims;
    claims.push_back({"(a) Larger batch worsens accuracy", "negative diff, worst at 1024",
                      util::Table::num(acc_diff_1024, 1) + "% at batch 1024",
                      acc_diff_1024 < -10.0});
    claims.push_back({"(a) Larger batch shortens epochs", "~-50% at batch 1024",
                      util::Table::num(dur_diff_1024, 1) + "% at batch 1024",
                      dur_diff_1024 < -30.0});
    claims.push_back({"(b) 8 cores SLOW DOWN batch 64", "+40..+60%",
                      util::Table::num(dur64_at8, 1) + "%", dur64_at8 > 5.0});
    claims.push_back({"(b) 8 cores SPEED UP batch 1024", "-40%",
                      util::Table::num(dur1024_at8, 1) + "%", dur1024_at8 < -15.0});
    claims.push_back({"(c) Energy correlates with runtime gains",
                      "energy sign follows duration sign",
                      "batch64 " + util::Table::num(en64_at8, 1) + "%, batch1024 " +
                          util::Table::num(en1024_at8, 1) + "%",
                      en64_at8 > 0.0 && en1024_at8 < 0.0});
    bench::print_claims(claims);
    return 0;
}
