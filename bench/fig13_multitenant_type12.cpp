// Figure 13 reproduction: multi-tenancy — HPT jobs arrive with exponential
// interarrival times on the 4-node cluster and are scheduled FIFO; reported
// metric is the average response time for Type-I jobs, Type-II jobs, and an
// equally balanced mix ("all"), with 20% unseen jobs (§7.4).
//
// Paper shape: PipeTune cuts average response time by up to ~30% vs both
// Tune V1 and Tune V2; its ground truth persists across jobs, so later
// similar jobs skip probing entirely.

#include <iostream>

#include "bench_common.hpp"
#include "bench_sched.hpp"
#include "bench_timing.hpp"
#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/service.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

namespace {

using namespace pipetune;

enum class Approach { kV1, kV2, kPipeTune };

double run_trace(const std::vector<cluster::ArrivedJob>& jobs,
                 const std::vector<workload::Workload>& base_mix, Approach approach,
                 std::size_t nodes, std::uint64_t seed) {
    sim::SimBackend backend({.seed = seed});
    cluster::FifoClusterSim sim({.nodes = nodes});
    // PipeTune jobs share one persistent ground truth (§5.4); this is what
    // turns the probing investment of early/unseen jobs into warm starts for
    // later ones.
    // The shared ground truth starts from the paper's offline profiling
    // campaign over the base workload catalogue (SS7.2); the 20% unseen job
    // variants are NOT in it and must probe.
    core::GroundTruth shared = approach == Approach::kPipeTune
                                   ? core::build_warm_ground_truth(backend, base_mix)
                                   : core::GroundTruth{};
    std::uint64_t job_seed = seed;
    const auto records = sim.run(jobs, [&](const cluster::ArrivedJob& job) {
        hpt::HptJobConfig config;
        config.seed = ++job_seed;
        // Each HPT job runs its trials on its assigned node's slots.
        config.parallel_slots = 4;
        switch (approach) {
            case Approach::kV1: {
                const auto r = hpt::run_tune_v1(backend, job.workload, config);
                return r.tuning.tuning_duration_s + r.training_time_s;
            }
            case Approach::kV2: {
                const auto r = hpt::run_tune_v2(backend, job.workload, config);
                return r.tuning.tuning_duration_s + r.training_time_s;
            }
            case Approach::kPipeTune: {
                const auto r = core::run_pipetune(backend, job.workload, config, {}, &shared);
                return r.baseline.tuning.tuning_duration_s + r.baseline.training_time_s;
            }
        }
        return 0.0;
    });
    return cluster::average_response_time(records);
}

}  // namespace

int main() {
    bench::print_header("Figure 13", "Multi-tenancy avg response time (Type-I / Type-II / all)");

    struct Scenario {
        const char* label;
        std::vector<workload::Workload> mix;
        std::size_t jobs;
    };
    std::vector<Scenario> scenarios;
    scenarios.push_back({"Type-I", workload::workloads_of_type(workload::WorkloadType::kType1), 10});
    scenarios.push_back({"Type-II", workload::workloads_of_type(workload::WorkloadType::kType2), 10});
    {
        auto mix = workload::workloads_of_type(workload::WorkloadType::kType1);
        for (const auto& w : workload::workloads_of_type(workload::WorkloadType::kType2))
            mix.push_back(w);
        scenarios.push_back({"all", std::move(mix), 14});
    }

    util::Table table({"scenario", "Tune V1 [s]", "Tune V2 [s]", "PipeTune [s]",
                       "PT vs V1", "PT vs V2"});
    util::CsvWriter csv("fig13_multitenant_type12.csv",
                        {"scenario", "v1_response_s", "v2_response_s", "pipetune_response_s"});
    double worst_gain_vs_v1 = 1e9;
    bool always_better = true;
    for (const auto& scenario : scenarios) {
        cluster::ArrivalConfig arrivals;
        arrivals.mean_interarrival_s = 2500.0;
        arrivals.job_count = scenario.jobs;
        arrivals.unseen_fraction = 0.2;
        arrivals.seed = 13;
        const auto jobs = cluster::generate_arrivals(scenario.mix, arrivals);

        const double v1 = run_trace(jobs, scenario.mix, Approach::kV1, 4, 1300);
        const double v2 = run_trace(jobs, scenario.mix, Approach::kV2, 4, 1300);
        const double pipetune = run_trace(jobs, scenario.mix, Approach::kPipeTune, 4, 1300);
        const double gain_v1 = 100.0 * (1.0 - pipetune / v1);
        const double gain_v2 = 100.0 * (1.0 - pipetune / v2);
        worst_gain_vs_v1 = std::min(worst_gain_vs_v1, gain_v1);
        always_better = always_better && pipetune < v1 && pipetune < v2;
        table.add_row({scenario.label, util::Table::num(v1, 0), util::Table::num(v2, 0),
                       util::Table::num(pipetune, 0), "-" + util::Table::num(gain_v1, 1) + "%",
                       "-" + util::Table::num(gain_v2, 1) + "%"});
        csv.add_row(std::vector<std::string>{scenario.label, util::Table::num(v1, 1),
                                             util::Table::num(v2, 1),
                                             util::Table::num(pipetune, 1)});
    }
    std::cout << table.render();

    // Scheduler-backed mode: the "all" trace once more, but on real worker
    // threads through sched::ConcurrentPipeTuneService (arrival gaps
    // compressed ~50000x). Same sharing effect, genuine concurrency.
    cluster::ArrivalConfig replay_arrivals;
    replay_arrivals.mean_interarrival_s = 2500.0;
    replay_arrivals.job_count = scenarios.back().jobs;
    replay_arrivals.unseen_fraction = 0.2;
    replay_arrivals.seed = 13;
    const auto replay_jobs = cluster::generate_arrivals(scenarios.back().mix, replay_arrivals);
    const auto replay =
        bench::run_scheduler_replay(replay_jobs, scenarios.back().mix, /*worker_slots=*/4,
                                    /*parallel_slots=*/4, /*compress=*/2e-5, 1300);
    util::Table replay_table({"mode", "jobs", "p50 resp [s]", "mean resp [s]",
                              "max queue depth", "GT hits", "store entries"});
    replay_table.add_row({"sched (4 slots)", util::Table::num(replay.jobs_completed, 0),
                          util::Table::num(replay.stats.p50_response_s, 3),
                          util::Table::num(replay.stats.mean_response_s, 3),
                          util::Table::num(replay.stats.max_queue_depth, 0),
                          util::Table::num(replay.ground_truth_hits, 0),
                          util::Table::num(replay.store_size, 0)});
    std::cout << replay_table.render();

    // Telemetry overhead (DESIGN.md §9 budget): the same job stream through
    // the serial service with an ObsContext attached vs detached. Spans plus
    // cached-counter increments must stay under 5%. Machine drift on this
    // scale dwarfs the signal, so the two modes are interleaved one ~20ms
    // job at a time with alternating order — every drift regime taxes both
    // accumulators equally and only the telemetry delta survives the sum.
    obs::ObsContext obs;
    sim::SimBackend backend_off({.seed = 1300});
    sim::SimBackend backend_on({.seed = 1300});
    core::PipeTuneService service_off(backend_off, {});
    core::ServiceOptions on_options;
    on_options.obs = &obs;
    core::PipeTuneService service_on(backend_on, on_options);
    std::uint64_t off_seed = 9000;
    std::uint64_t on_seed = 9000;
    const auto run_one = [](core::PipeTuneService& service, const workload::Workload& w,
                            std::uint64_t seed) {
        hpt::HptJobConfig config;
        config.seed = seed;
        config.parallel_slots = 1;  // keep pool scheduling out of the clock
        return bench::time_once([&] { service.run(w, config); });
    };
    for (const auto& job : replay_jobs) {  // warm-up: code + allocator, untimed
        run_one(service_off, job.workload, ++off_seed);
        run_one(service_on, job.workload, ++on_seed);
    }
    double total_off = 0.0;
    double total_on = 0.0;
    for (int pass = 0; pass < 10; ++pass) {
        std::size_t index = 0;
        for (const auto& job : replay_jobs) {
            // Identical job, back to back, order alternating: both modes see
            // the same ~20ms slice of whatever the machine is doing.
            if ((pass + index++) % 2 == 0) {
                total_off += run_one(service_off, job.workload, ++off_seed);
                total_on += run_one(service_on, job.workload, ++on_seed);
            } else {
                total_on += run_one(service_on, job.workload, ++on_seed);
                total_off += run_one(service_off, job.workload, ++off_seed);
            }
        }
    }
    const double overhead_pct = 100.0 * (total_on - total_off) / total_off;

    // And the scheduler path with telemetry on: the full metric surface
    // (queue depth, wait histogram, per-phase counters) from one replay.
    obs::ObsContext replay_obs;
    bench::run_scheduler_replay(replay_jobs, scenarios.back().mix, /*worker_slots=*/4,
                                /*parallel_slots=*/4, /*compress=*/2e-5, 1300, &replay_obs);
    util::Table obs_table({"telemetry", "value"});
    obs_table.add_row({"overhead (serial, interleaved)", util::Table::num(overhead_pct, 2) + "%"});
    obs_table.add_row({"series exported (sched replay)",
                       util::Table::num(replay_obs.metrics().series_count(), 0)});
    obs_table.add_row({"spans recorded (sched replay)",
                       util::Table::num(replay_obs.tracer().completed().size(), 0)});
    std::cout << obs_table.render();

    std::vector<bench::Claim> claims;
    claims.push_back({"Telemetry keeps the hot path within the overhead budget",
                      "< 5% wall-clock vs disabled",
                      util::Table::num(overhead_pct, 2) + "%", overhead_pct < 5.0});
    claims.push_back({"One scheduler replay exports a full metrics snapshot",
                      ">= 10 distinct series",
                      util::Table::num(replay_obs.metrics().series_count(), 0) + " series",
                      replay_obs.metrics().series_count() >= 10});
    claims.push_back({"Concurrent scheduler replays the trace with shared warm starts",
                      "all jobs complete, later jobs reuse recordings",
                      util::Table::num(replay.jobs_completed, 0) + " jobs, " +
                          util::Table::num(replay.ground_truth_hits, 0) + " hits",
                      replay.jobs_completed == replay_jobs.size() &&
                          replay.ground_truth_hits > 0});
    claims.push_back({"PipeTune lowers avg response time vs V1 and V2 in every mix",
                      "up to 30% reduction", always_better ? "all scenarios lower" : "not all",
                      always_better});
    claims.push_back({"Reduction holds even in the worst scenario", "positive everywhere",
                      util::Table::num(worst_gain_vs_v1, 1) + "%", worst_gain_vs_v1 > 3.0});
    bench::print_claims(claims);
    return 0;
}
