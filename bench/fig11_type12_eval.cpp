// Figure 11 reproduction: single-tenancy evaluation of Tune V1, Tune V2 and
// PipeTune over the four Type-I/Type-II workloads — (a) model accuracy,
// (b) training duration, (c) tuning duration, (d) tuning energy.
// Also prints the Table 3 workload catalogue the sweep runs over.
//
// Paper shapes (§7.3): PipeTune accuracy on par with V1 while V2 drops (up to
// 43%); PipeTune training time up to 1.7x faster than V1; tuning time at
// least 18% below V1 while V2 is up to 18% above; tuning energy up to 29%
// below V1 while V2 is up to 22% above.

#include <iostream>

#include "bench_common.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/csv.hpp"

int main() {
    using namespace pipetune;
    bench::print_header("Figure 11",
                        "Single-tenancy: accuracy / training / tuning / energy (Type-I & II)");

    // Table 3 catalogue for the workloads under evaluation.
    util::Table catalogue({"workload", "type", "datasize [MB]", "train files", "test files"});
    for (const auto& workload : workload::catalogue())
        if (!workload.is_kernel())
            catalogue.add_row({workload.name, to_string(workload.type),
                               util::Table::num(workload.datasize_mb, 0),
                               std::to_string(workload.train_files),
                               std::to_string(workload.test_files)});
    std::cout << "Workloads (Table 3):\n" << catalogue.render() << "\n";

    util::Table table({"workload", "approach", "accuracy [%]", "training [s]", "tuning [s]",
                       "tuning energy [kJ]"});
    util::CsvWriter csv("fig11_type12_eval.csv",
                        {"workload", "approach", "accuracy", "training_s", "tuning_s",
                         "tuning_energy_kj"});

    struct Row {
        double accuracy = 0, training = 0, tuning = 0, energy = 0;
    };
    std::map<std::string, std::map<std::string, Row>> results;

    // Each (workload, approach) cell is the mean over kRepeats independent
    // seeds — single HyperBand runs have noticeable makespan variance from
    // slot packing.
    constexpr int kRepeats = 3;
    std::uint64_t seed = 1100;
    for (const auto& workload : workload::catalogue()) {
        if (workload.is_kernel()) continue;
        std::map<std::string, Row> sums;
        for (int repeat = 0; repeat < kRepeats; ++repeat) {
            sim::SimBackend backend({.seed = seed});
            hpt::HptJobConfig job;
            job.seed = seed++;
            const auto v1 = hpt::run_tune_v1(backend, workload, job);
            const auto v2 = hpt::run_tune_v2(backend, workload, job);
            core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});
            const auto pipetune = core::run_pipetune(backend, workload, job, {}, &warm);
            auto accumulate = [&](const char* approach, const hpt::BaselineResult& r) {
                Row& row = sums[approach];
                row.accuracy += r.final_accuracy / kRepeats;
                row.training += r.training_time_s / kRepeats;
                row.tuning += r.tuning.tuning_duration_s / kRepeats;
                row.energy += r.tuning.tuning_energy_j / 1000.0 / kRepeats;
            };
            accumulate("tune_v1", v1);
            accumulate("tune_v2", v2);
            accumulate("pipetune", pipetune.baseline);
        }
        for (const char* approach : {"tune_v1", "tune_v2", "pipetune"}) {
            const Row& row = sums[approach];
            results[workload.name][approach] = row;
            table.add_row({workload.name, approach, util::Table::num(row.accuracy, 1),
                           util::Table::num(row.training, 0), util::Table::num(row.tuning, 0),
                           util::Table::num(row.energy, 0)});
            csv.add_row({workload.name, std::string(approach),
                         util::Table::num(row.accuracy, 2), util::Table::num(row.training, 1),
                         util::Table::num(row.tuning, 1), util::Table::num(row.energy, 2)});
        }
    }
    std::cout << table.render();

    // Aggregate shape checks across the four workloads.
    int acc_on_par = 0, v2_acc_below = 0, pt_tuning_below = 0, v2_tuning_above = 0;
    int pt_energy_below = 0, pt_energy_not_worse = 0, pt_training_not_worse = 0;
    double worst_pt_tuning_reduction = 1.0, best_pt_tuning_reduction = 0.0;
    double best_pt_energy_reduction = 0.0;
    int workloads = 0;
    for (const auto& [name, rows] : results) {
        ++workloads;
        const Row& v1 = rows.at("tune_v1");
        const Row& v2 = rows.at("tune_v2");
        const Row& pt = rows.at("pipetune");
        if (pt.accuracy >= v1.accuracy - 2.0) ++acc_on_par;
        if (v2.accuracy < v1.accuracy) ++v2_acc_below;
        if (pt.tuning < v1.tuning) ++pt_tuning_below;
        if (v2.tuning > v1.tuning) ++v2_tuning_above;
        if (pt.energy < v1.energy) ++pt_energy_below;
        if (pt.energy <= v1.energy * 1.02) ++pt_energy_not_worse;
        if (pt.training <= v1.training * 1.05) ++pt_training_not_worse;
        const double reduction = 1.0 - pt.tuning / v1.tuning;
        worst_pt_tuning_reduction = std::min(worst_pt_tuning_reduction, reduction);
        best_pt_tuning_reduction = std::max(best_pt_tuning_reduction, reduction);
        best_pt_energy_reduction = std::max(best_pt_energy_reduction, 1.0 - pt.energy / v1.energy);
    }

    std::vector<bench::Claim> claims;
    claims.push_back({"(a) PipeTune accuracy on par with V1 everywhere", "no degradation",
                      std::to_string(acc_on_par) + "/" + std::to_string(workloads),
                      acc_on_par == workloads});
    claims.push_back({"(a) V2 accuracy below V1 (up to 43% in paper)", "lower on all",
                      std::to_string(v2_acc_below) + "/" + std::to_string(workloads),
                      v2_acc_below >= workloads - 1});
    claims.push_back({"(b) PipeTune training time not worse than V1", "up to 1.7x faster",
                      std::to_string(pt_training_not_worse) + "/" + std::to_string(workloads),
                      pt_training_not_worse >= workloads - 1});
    claims.push_back({"(c) PipeTune tuning below V1 on every workload", "-18..-23%",
                      "best " + pipetune::bench::pct(best_pt_tuning_reduction) + ", worst " +
                          pipetune::bench::pct(worst_pt_tuning_reduction),
                      pt_tuning_below == workloads});
    claims.push_back({"(c) V2 tuning above V1", "+ up to 18%",
                      std::to_string(v2_tuning_above) + "/" + std::to_string(workloads),
                      v2_tuning_above >= workloads - 1});
    claims.push_back({"(d) PipeTune tuning energy reduced (never meaningfully worse)",
                      "- up to 29%",
                      std::to_string(pt_energy_below) + "/" + std::to_string(workloads) +
                          " reduced, best " + pipetune::bench::pct(best_pt_energy_reduction),
                      pt_energy_below >= workloads - 1 && pt_energy_not_worse == workloads &&
                          best_pt_energy_reduction > 0.15});
    bench::print_claims(claims);
    return 0;
}
