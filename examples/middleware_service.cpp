// The middleware deployment view: a PipeTuneService owns one cluster's
// persistent tuning state (ground truth + metrics database on disk) and
// serves a stream of HPT jobs, each warm-starting from everything the
// cluster has learned — including across service restarts.
//
//   build/examples/middleware_service

#include <filesystem>
#include <iostream>

#include "pipetune/core/service.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/table.hpp"

int main() {
    using namespace pipetune;
    const std::string state_dir =
        (std::filesystem::temp_directory_path() / "pipetune_state").string();
    std::filesystem::remove_all(state_dir);

    sim::SimBackend backend({.seed = 77});
    util::Table table({"job", "workload", "hits", "probes", "tuning [s]", "store size"});

    {
        core::ServiceOptions config;
        config.state_dir = state_dir;
        core::PipeTuneService service(backend, config);
        std::cout << "== Service instance 1 (state dir: " << state_dir << ")\n";
        std::uint64_t seed = 770;
        for (const char* name : {"lenet-mnist", "cnn-news20", "lenet-mnist"}) {
            hpt::HptJobConfig job;
            job.seed = ++seed;
            const auto result = service.run(workload::find_workload(name), job);
            table.add_row({std::to_string(service.jobs_served()), name,
                           std::to_string(result.ground_truth_hits),
                           std::to_string(result.probes_started),
                           util::Table::num(result.baseline.tuning.tuning_duration_s, 0),
                           std::to_string(service.ground_truth().size())});
        }
    }  // service shuts down; state is on disk

    {
        std::cout << "== Service instance 2 (restarted from the same state dir)\n";
        core::ServiceOptions config;
        config.state_dir = state_dir;
        sim::SimBackend backend2({.seed = 78});
        core::PipeTuneService service(backend2, config);
        hpt::HptJobConfig job;
        job.seed = 780;
        const auto result = service.run(workload::find_workload("cnn-news20"), job);
        table.add_row({"4 (restart)", "cnn-news20", std::to_string(result.ground_truth_hits),
                       std::to_string(result.probes_started),
                       util::Table::num(result.baseline.tuning.tuning_duration_s, 0),
                       std::to_string(service.ground_truth().size())});
        std::cout << table.render();
        std::cout << "\nMetrics recorded: " << service.metrics().total_points()
                  << " points across " << service.metrics().series_names().size()
                  << " series (persisted at " << service.metrics_path() << ")\n"
                  << "Repeat jobs hit the warm store — probing is paid once per workload\n"
                     "per cluster, and the knowledge survives restarts.\n";
    }
    std::filesystem::remove_all(state_dir);
    return 0;
}
