// Quickstart: tune a LeNet-on-MNIST workload with PipeTune in ~30 lines.
//
// PipeTune runs a normal hyperparameter search (HyperBand over the paper's
// five hyperparameters) while, inside every trial, profiling the first epoch,
// matching the profile against its ground truth, and probing/applying the
// best system configuration (cores, memory) for the remaining epochs.
//
//   build/examples/quickstart

#include <iostream>

#include "pipetune/core/experiment.hpp"
#include "pipetune/sim/sim_backend.hpp"

int main() {
    using namespace pipetune;

    // A backend supplies trials; the simulation backend runs on virtual time
    // (swap in sim::RealBackend to train the bundled NN engine for real).
    sim::SimBackend backend({.seed = 7});

    // Pick a workload from the catalogue (model + dataset pair, Table 3).
    const workload::Workload& workload = workload::find_workload("lenet-mnist");

    // Configure the HPT job: HyperBand with R = 27 epochs, eta = 3, four
    // parallel trial slots.
    hpt::HptJobConfig job;
    job.seed = 7;

    // Run PipeTune end-to-end: hyperparameter search + pipelined system
    // tuning + final training of the winner.
    const core::PipeTuneJobResult result = core::run_pipetune(backend, workload, job);

    std::cout << "Best hyperparameters: " << result.baseline.best_hyper.to_string() << "\n"
              << "Final accuracy:       " << result.baseline.final_accuracy << " %\n"
              << "Training time:        " << result.baseline.training_time_s << " s\n"
              << "Tuning time:          " << result.baseline.tuning.tuning_duration_s << " s\n"
              << "Tuning energy:        " << result.baseline.tuning.tuning_energy_j / 1000.0
              << " kJ\n"
              << "Ground-truth reuse:   " << result.ground_truth_hits << " hits, "
              << result.probes_started << " probes\n";
    return 0;
}
