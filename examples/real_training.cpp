// The real substrate end-to-end: train the bundled from-scratch NN engine
// (LeNet-5 on a synthetic MNIST-like dataset) under the PipeTune per-epoch
// policy, on actual wall-clock time — no simulation. This is the path a
// downstream user takes to attach PipeTune to their own training loop.
//
//   build/examples/real_training

#include <iostream>

#include "pipetune/core/pipetune_policy.hpp"
#include "pipetune/sim/real_backend.hpp"
#include "pipetune/util/table.hpp"

int main() {
    using namespace pipetune;

    sim::RealBackendConfig config;
    config.train_samples = 128;
    config.test_samples = 48;
    config.seed = 5;
    sim::RealBackend backend(config);

    const auto& workload = workload::find_workload("lenet-mnist");
    workload::HyperParams hyper;
    hyper.batch_size = 64;
    hyper.learning_rate = 0.05;
    hyper.dropout = 0.1;
    hyper.epochs = 10;

    core::PipeTunePolicy policy;
    auto session = backend.start_trial(workload, hyper);

    std::cout << "Training LeNet-5 on a synthetic MNIST-like dataset (real SGD, "
              << config.train_samples << " samples)...\n";
    util::Table table({"epoch", "mode", "system", "loss", "accuracy [%]", "duration [ms]"});
    std::vector<workload::EpochResult> history;
    for (std::size_t epoch = 1; epoch <= hyper.epochs; ++epoch) {
        const workload::SystemParams system = policy.choose(
            /*trial_id=*/1, workload, hyper, epoch, history, workload::default_system_params());
        auto result = session->run_epoch(system);
        result.system = system;
        const char* mode = epoch == 1                  ? "profiling"
                           : policy.probes_started() > 0 && epoch <= 7 ? "probing"
                                                       : "tuned";
        table.add_row({std::to_string(epoch), mode, system.to_string(),
                       util::Table::num(result.train_loss, 3),
                       util::Table::num(result.accuracy, 1),
                       util::Table::num(result.duration_s * 1000, 1)});
        history.push_back(result);
    }
    policy.trial_finished(1, workload, hyper, history);
    std::cout << table.render();
    std::cout << "\nFinal accuracy " << util::Table::num(history.back().accuracy, 1)
              << " % — the engine genuinely learns; PipeTune profiled epoch 1, probed system\n"
              << "configurations one epoch at a time, then locked in the fastest.\n";
    return 0;
}
