// Type-II pipeline: two different models (TextCNN, LSTM) tuned on the same
// dataset (News20) — the "computer vision"/"NLP team" pattern of paper §5.1 —
// comparing all three tuning approaches side by side.
//
//   build/examples/text_pipeline

#include <iostream>

#include "pipetune/core/experiment.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/table.hpp"

int main() {
    using namespace pipetune;

    sim::SimBackend backend({.seed = 33});
    util::Table table({"workload", "approach", "accuracy [%]", "training [s]", "tuning [s]"});

    for (const char* name : {"cnn-news20", "lstm-news20"}) {
        const auto& workload = workload::find_workload(name);
        hpt::HptJobConfig job;
        job.seed = 33;

        const auto v1 = hpt::run_tune_v1(backend, workload, job);
        const auto v2 = hpt::run_tune_v2(backend, workload, job);
        // PipeTune with the offline warm-start campaign (paper §7.2).
        core::GroundTruth warm = core::build_warm_ground_truth(backend, {workload});
        const auto pipetune = core::run_pipetune(backend, workload, job, {}, &warm);

        auto row = [&](const char* approach, const hpt::BaselineResult& r) {
            table.add_row({name, approach, util::Table::num(r.final_accuracy, 2),
                           util::Table::num(r.training_time_s, 0),
                           util::Table::num(r.tuning.tuning_duration_s, 0)});
        };
        row("Tune V1 (accuracy only)", v1);
        row("Tune V2 (system as hyperparams)", v2);
        row("PipeTune", pipetune.baseline);
    }

    std::cout << table.render()
              << "\nPipeTune keeps V1's accuracy at V2-like training cost and the lowest\n"
                 "tuning time — the Table 2 trade-off, here on the Type-II workloads.\n";
    return 0;
}
