// Multi-tenant cluster walkthrough: HPT jobs arrive randomly (Poisson), are
// scheduled FIFO onto a 4-node cluster, and PipeTune jobs share one
// persistent ground truth — so the probing paid by early jobs turns into
// instant warm starts for later similar jobs (paper §7.4).
//
//   build/examples/multitenant_cluster

#include <iostream>

#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/table.hpp"

int main() {
    using namespace pipetune;

    // A balanced Type-I + Type-II mix; 20% of arrivals are "unseen" variants
    // the ground truth has never profiled.
    auto mix = workload::workloads_of_type(workload::WorkloadType::kType1);
    for (const auto& w : workload::workloads_of_type(workload::WorkloadType::kType2))
        mix.push_back(w);

    cluster::ArrivalConfig arrivals;
    arrivals.mean_interarrival_s = 2500.0;
    arrivals.job_count = 12;
    arrivals.unseen_fraction = 0.2;
    arrivals.seed = 99;
    const auto jobs = cluster::generate_arrivals(mix, arrivals);

    sim::SimBackend backend({.seed = 99});
    cluster::FifoClusterSim sim({.nodes = 4});
    core::GroundTruth shared;  // one store for the whole cluster

    std::uint64_t job_seed = 990;
    util::Table table({"job", "workload", "unseen", "arrival [s]", "wait [s]", "response [s]",
                       "store size"});
    const auto records = sim.run(jobs, [&](const cluster::ArrivedJob& job) {
        hpt::HptJobConfig config;
        config.seed = ++job_seed;
        const auto result = core::run_pipetune(backend, job.workload, config, {}, &shared);
        return result.baseline.tuning.tuning_duration_s + result.baseline.training_time_s;
    });
    for (const auto& record : records)
        table.add_row({std::to_string(record.index), record.workload_name,
                       record.unseen ? "yes" : "no", util::Table::num(record.arrival_s, 0),
                       util::Table::num(record.wait_time_s(), 0),
                       util::Table::num(record.response_time_s(), 0),
                       std::to_string(shared.size())});
    std::cout << table.render();
    std::cout << "\nAverage response time: "
              << util::Table::num(cluster::average_response_time(records), 0) << " s; ground "
              << "truth grew to " << shared.size() << " profiles over the trace.\n";
    return 0;
}
