// Type-I pipeline: the same model (LeNet) tuned for successive datasets — the
// "recommendation engine" pattern of paper §5.1 — with the ground truth
// persisted to disk between jobs (PipeTune's InfluxDB role).
//
// Three jobs tell the whole story:
//   1. lenet-mnist, cold store      -> every decision probes;
//   2. lenet-fashion, warm store    -> new data, profiles miss -> probes
//      (and the probes enrich the store);
//   3. lenet-fashion again          -> profiles now match -> instant reuse.
//
//   build/examples/image_pipeline

#include <cstdio>
#include <iostream>

#include "pipetune/core/experiment.hpp"
#include "pipetune/sim/sim_backend.hpp"

namespace {

void report(const char* label, const pipetune::core::PipeTuneJobResult& result) {
    std::cout << "   " << label << ": accuracy " << result.baseline.final_accuracy
              << " %, tuning " << result.baseline.tuning.tuning_duration_s << " s, "
              << result.ground_truth_hits << " hits / " << result.probes_started << " probes\n";
}

}  // namespace

int main() {
    using namespace pipetune;
    const std::string store_path = "pipetune_ground_truth.json";

    sim::SimBackend backend({.seed = 21});
    hpt::HptJobConfig job;
    job.seed = 21;

    std::cout << "== Job 1: lenet-mnist (cold ground truth)\n";
    core::GroundTruth store;
    const auto first =
        core::run_pipetune(backend, workload::find_workload("lenet-mnist"), job, {}, &store);
    report("lenet-mnist", first);
    store.save(store_path);
    std::cout << "   ground truth persisted to " << store_path << " (" << store.size()
              << " profiles)\n";

    std::cout << "== Job 2: lenet-fashion (same model, NEW dataset)\n";
    core::GroundTruth restored = core::GroundTruth::load(store_path);
    job.seed = 22;
    const auto second = core::run_pipetune(backend, workload::find_workload("lenet-fashion"),
                                           job, {}, &restored);
    report("lenet-fashion", second);
    std::cout << "   unseen data -> profiles miss the stored cluster -> probing, exactly\n"
                 "   the paper's re-clustering path (SS5.6); the store now covers fashion.\n";
    restored.save(store_path);

    std::cout << "== Job 3: lenet-fashion again (store now knows it)\n";
    core::GroundTruth enriched = core::GroundTruth::load(store_path);
    job.seed = 23;
    const auto third = core::run_pipetune(backend, workload::find_workload("lenet-fashion"),
                                          job, {}, &enriched);
    report("lenet-fashion", third);

    std::cout << "== Warm start effect\n"
              << "   probes per job: " << first.probes_started << " -> "
              << second.probes_started << " -> " << third.probes_started
              << (third.probes_started < second.probes_started
                      ? "  (reuse kicks in once the store covers the workload)\n"
                      : "\n");
    std::remove(store_path.c_str());
    return 0;
}
