// pipetune — command-line front end for the library.
//
//   pipetune list-workloads
//   pipetune tune <workload> [--approach pipetune|v1|v2] [--seed N]
//                 [--slots N] [--resource R] [--state-dir DIR] [--dvfs]
//                 [--objective duration|energy] [--backend sim|real]
//   pipetune compare <workload> [--seed N]          # all approaches side by side
//   pipetune warm-start --state-dir DIR [--seed N]  # §7.2 offline campaign
//   pipetune replay [--jobs N] [--workers N] ...    # §7.4 multi-tenant trace on
//                                                   # the concurrent scheduler
//   pipetune resume <journal>                       # re-run a crashed run's
//                                                   # pending jobs from its journal
//
// `tune` and `replay` accept --metrics-out FILE (Prometheus text snapshot)
// and --trace-out FILE (Chrome trace-event JSON) to dump the run's telemetry,
// plus the fault-tolerance flags (DESIGN.md §10): --journal FILE records a
// durable write-ahead journal, --inject-faults RATE injects seeded epoch
// failures (absorbed by epoch-level retry), --crash-after N kills the run
// with a simulated crash on the Nth epoch (then `pipetune resume` finishes
// the work).
//
// Everything runs on the simulation backend by default (instant, virtual
// time); --backend real trains the bundled NN engine instead.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <system_error>
#include <thread>

#include "pipetune/cluster/cluster_sim.hpp"
#include "pipetune/core/experiment.hpp"
#include "pipetune/core/service.hpp"
#include "pipetune/core/warm_start.hpp"
#include "pipetune/ft/errors.hpp"
#include "pipetune/ft/fault_injector.hpp"
#include "pipetune/ft/ft_backend.hpp"
#include "pipetune/ft/journal.hpp"
#include "pipetune/ft/recovery.hpp"
#include "pipetune/net/auth.hpp"
#include "pipetune/net/client.hpp"
#include "pipetune/net/loadgen.hpp"
#include "pipetune/net/server.hpp"
#include "pipetune/obs/build_info.hpp"
#include "pipetune/sched/concurrent_service.hpp"
#include "pipetune/sim/real_backend.hpp"
#include "pipetune/sim/sim_backend.hpp"
#include "pipetune/util/args.hpp"
#include "pipetune/util/build_info.hpp"
#include "pipetune/util/fs.hpp"
#include "pipetune/util/table.hpp"

namespace {

using namespace pipetune;

// ---------------------------------------------------------------- signals
// One flag + one server pointer, both async-signal-safe to touch. `serve`
// points g_server at its live instance so SIGTERM/SIGINT start a fast drain
// (running jobs finish and journal; queued jobs stay journal-pending for
// `pipetune resume`). `tune` has no server: its observer sees the flag and
// throws ft::SimulatedCrash, unwinding the run WITHOUT a terminal journal
// record — the same resumable shape a --crash-after run leaves behind.
std::atomic<int> g_signal{0};
std::atomic<net::TuningServer*> g_server{nullptr};

extern "C" void pipetune_handle_signal(int sig) {
    g_signal.store(sig, std::memory_order_relaxed);
    net::TuningServer* server = g_server.load(std::memory_order_relaxed);
    if (server != nullptr) server->request_stop(net::DrainMode::kFast);
}

void install_signal_handlers() {
    std::signal(SIGINT, pipetune_handle_signal);
    std::signal(SIGTERM, pipetune_handle_signal);
}

/// EpochObserver that aborts the run (ft::SimulatedCrash) once a signal has
/// arrived, checking before each epoch so the journal stays consistent; any
/// inner observer (the fault injector) is consulted after the signal check.
class SignalAbortObserver final : public workload::EpochObserver {
public:
    explicit SignalAbortObserver(workload::EpochObserver* inner) : inner_(inner) {}

    void before_epoch(const workload::Workload& workload, const workload::HyperParams& hyper,
                      std::size_t epoch, const workload::SystemParams& system) override {
        int sig = g_signal.load(std::memory_order_relaxed);
        if (sig != 0)
            throw ft::SimulatedCrash("interrupted by signal " + std::to_string(sig));
        if (inner_ != nullptr) inner_->before_epoch(workload, hyper, epoch, system);
    }

    void after_epoch(const workload::Workload& workload, std::size_t epoch,
                     workload::EpochResult& result) override {
        if (inner_ != nullptr) inner_->after_epoch(workload, epoch, result);
    }

private:
    workload::EpochObserver* inner_;
};

std::vector<std::string> split_csv(const std::string& text) {
    std::vector<std::string> out;
    std::stringstream stream(text);
    std::string item;
    while (std::getline(stream, item, ','))
        if (!item.empty()) out.push_back(item);
    return out;
}

int usage() {
    std::cout <<
        R"(pipetune — pipelined hyper & system parameter tuning

usage:
  pipetune list-workloads
  pipetune tune <workload> [--approach pipetune|v1|v2] [--seed N] [--slots N]
                [--resource R] [--state-dir DIR] [--dvfs]
                [--objective duration|energy] [--backend sim|real]
                [--metrics-out FILE] [--trace-out FILE]
                [--journal FILE] [--inject-faults RATE] [--crash-after N]
  pipetune compare <workload> [--seed N] [--backend sim|real]
  pipetune warm-start --state-dir DIR [--seed N] [--backend sim|real]
  pipetune replay [--jobs N] [--interarrival S] [--unseen F] [--mix type1|type2|type3|all]
                  [--workers N] [--queue-capacity N] [--compress X] [--slots N]
                  [--state-dir DIR] [--seed N] [--backend sim|real]
                  [--metrics-out FILE] [--trace-out FILE]
                  [--journal FILE] [--inject-faults RATE] [--crash-after N]
  pipetune resume <journal> [--state-dir DIR] [--backend sim|real]
                  [--metrics-out FILE] [--trace-out FILE]
  pipetune serve [--port N] [--bind ADDR] [--workers N] [--queue-capacity N]
                 [--tenants name=token[:quota],...] [--anonymous-quota N]
                 [--max-connections N] [--state-dir DIR] [--journal FILE]
                 [--seed N] [--backend sim|real] [--slots N] [--resource R]
                 [--port-file FILE] [--metrics-out FILE] [--trace-out FILE]
  pipetune loadgen --port N [--host ADDR] [--rate R | --sweep R1,R2,...]
                   [--requests N] [--tokens T1,T2,...] [--workloads W1,W2,...]
                   [--resource R] [--slots N] [--seed N] [--timeout S]
                   [--out FILE]
  pipetune --version

replay generates a §7.4 arrival trace and runs it through the tuning service
(concurrent scheduler when --workers > 1) on real worker threads; arrival
gaps are multiplied by --compress (default 2e-5) before sleeping.

--metrics-out dumps a Prometheus text snapshot of every counter/gauge/
histogram the run touched; --trace-out dumps the hierarchical span tree
(job -> trial -> epoch -> probe) as Chrome trace-event JSON (load in
chrome://tracing or Perfetto).

serve turns the tuning service into a network daemon speaking the
newline-delimited JSON protocol of DESIGN.md §11 (submit/status/cancel/
stats/metrics/drain) with per-tenant bearer-token auth and quotas; the same
port answers HTTP `GET /metrics` with the Prometheus export. SIGINT/SIGTERM
drain gracefully: running jobs finish and journal, queued jobs stay
journal-pending so `pipetune resume` completes them. loadgen drives a
running server open-loop (Poisson arrivals at --rate, or one point per
--sweep rate) and reports p50/p99/p999 latency, goodput and reject rate.

resume replays the journal of a crashed run: jobs with a completed record
contribute their ground truth, jobs without one re-run deterministically
with their recorded config and seeds. Exit codes: 0 jobs were resumed,
3 nothing to resume, 4 journal unreadable.

workloads: run `pipetune list-workloads` for the catalogue (paper Table 3).
)";
    return 2;
}

std::unique_ptr<workload::Backend> make_backend(const util::Args& args, std::uint64_t seed,
                                                workload::EpochObserver* observer = nullptr) {
    if (args.get_or("backend", "sim") == "real") {
        sim::RealBackendConfig config;
        config.seed = seed;
        config.epoch_observer = observer;
        return std::make_unique<sim::RealBackend>(config);
    }
    sim::SimBackendConfig config;
    config.seed = seed;
    config.epoch_observer = observer;
    return std::make_unique<sim::SimBackend>(config);
}

// Fault-tolerance wiring shared by tune/replay/resume: an optional durable
// journal, an optional seeded fault injector observing every epoch, and —
// whenever faults are injected — a FaultTolerantBackend decorator so the
// injected epoch failures are retried instead of killing the job.
struct FtSetup {
    std::unique_ptr<ft::Journal> journal;
    std::unique_ptr<ft::FaultInjector> injector;
    std::unique_ptr<ft::FaultTolerantBackend> retry_backend;

    static FtSetup from_args(const util::Args& args, std::uint64_t seed,
                             obs::ObsContext* obs) {
        FtSetup out;
        const std::string journal_path = args.get_or("journal", "");
        if (!journal_path.empty()) out.journal = std::make_unique<ft::Journal>(journal_path);
        const double fault_rate = args.get_number_or("inject-faults", 0.0);
        const auto crash_after = static_cast<std::size_t>(args.get_uint_or("crash-after", 0));
        if (fault_rate > 0.0 || crash_after > 0) {
            ft::FaultInjectorConfig config;
            config.epoch_failure_rate = fault_rate;
            config.crash_after_epochs = crash_after;
            config.seed = seed;
            config.obs = obs;
            out.injector = std::make_unique<ft::FaultInjector>(config);
        }
        return out;
    }

    /// Decorate `inner` with epoch-level retry when faults are injected.
    workload::Backend& wrap(workload::Backend& inner, std::uint64_t seed,
                            obs::ObsContext* obs) {
        if (!injector) return inner;
        ft::FaultTolerantBackendConfig config;
        config.retry.max_retries = 8;
        config.seed = seed;
        config.obs = obs;
        retry_backend = std::make_unique<ft::FaultTolerantBackend>(inner, config);
        return *retry_backend;
    }

    void report() const {
        if (injector)
            std::cout << "fault injection: " << injector->injected_epoch_failures()
                      << " epoch failures, " << injector->injected_stalls() << " stalls, "
                      << injector->injected_crashes() << " crashes over "
                      << injector->epochs_seen() << " epochs\n";
        if (retry_backend)
            std::cout << "epoch retry: " << retry_backend->retries_total() << " retries, "
                      << retry_backend->recoveries_total() << " recoveries, "
                      << retry_backend->gave_up_total() << " gave up\n";
        if (journal)
            std::cout << "journal: " << journal->last_seq() << " records in "
                      << journal->path() << "\n";
    }
};

// Telemetry sinks requested on the command line. The context is only
// constructed when at least one output flag is present, so default runs pay
// nothing (services see a null obs pointer).
struct ObsOutputs {
    std::unique_ptr<obs::ObsContext> context;
    std::string metrics_out;
    std::string trace_out;

    static ObsOutputs from_args(const util::Args& args) {
        ObsOutputs out;
        out.metrics_out = args.get_or("metrics-out", "");
        out.trace_out = args.get_or("trace-out", "");
        if (!out.metrics_out.empty() || !out.trace_out.empty()) {
            out.context = std::make_unique<obs::ObsContext>();
            out.context->mirror_logs();
        }
        return out;
    }

    obs::ObsContext* get() const { return context.get(); }

    void write() const {
        if (!context) return;
        if (!metrics_out.empty()) {
            context->write_prometheus(metrics_out);
            std::cout << "metrics snapshot (" << context->metrics().series_count()
                      << " series) written to " << metrics_out << "\n";
        }
        if (!trace_out.empty()) {
            context->write_chrome_trace(trace_out);
            std::cout << "trace (" << context->tracer().completed().size()
                      << " spans) written to " << trace_out << "\n";
        }
    }
};

hpt::HptJobConfig job_config(const util::Args& args, std::uint64_t seed) {
    hpt::HptJobConfig job;
    job.seed = seed;
    job.parallel_slots = static_cast<std::size_t>(args.get_uint_or("slots", 4));
    job.hyperband_resource = static_cast<std::size_t>(args.get_uint_or("resource", 27));
    job.final_epochs = job.hyperband_resource;
    return job;
}

void print_result(const std::string& approach, const hpt::BaselineResult& result) {
    util::Table table({"metric", "value"});
    table.add_row({"approach", approach});
    table.add_row({"best hyperparameters", result.best_hyper.to_string()});
    table.add_row({"final system config", result.final_system.to_string()});
    table.add_row({"final accuracy [%]", util::Table::num(result.final_accuracy, 2)});
    table.add_row({"training time [s]", util::Table::num(result.training_time_s, 1)});
    table.add_row({"tuning time [s]", util::Table::num(result.tuning.tuning_duration_s, 1)});
    table.add_row({"tuning energy [kJ]",
                   util::Table::num(result.tuning.tuning_energy_j / 1000.0, 1)});
    table.add_row({"trials / epochs", std::to_string(result.tuning.trials) + " / " +
                                          std::to_string(result.tuning.epochs)});
    std::cout << table.render();
}

int cmd_list_workloads() {
    util::Table table({"name", "type", "model", "dataset", "datasize [MB]", "train files"});
    for (const auto& workload : workload::catalogue())
        table.add_row({workload.name, to_string(workload.type), workload.model_family,
                       workload.dataset_family, util::Table::num(workload.datasize_mb, 0),
                       std::to_string(workload.train_files)});
    std::cout << table.render();
    return 0;
}

int cmd_tune(const util::Args& args) {
    if (args.positionals().empty()) return usage();
    const auto& workload = workload::find_workload(args.positionals()[0]);
    const auto seed = args.get_uint_or("seed", 1);
    const auto job = job_config(args, seed);
    const std::string approach = args.get_or("approach", "pipetune");

    if (approach == "v1") {
        print_result("Tune V1", hpt::run_tune_v1(*make_backend(args, seed), workload, job));
        return 0;
    }
    if (approach == "v2") {
        print_result("Tune V2", hpt::run_tune_v2(*make_backend(args, seed), workload, job));
        return 0;
    }
    if (approach != "pipetune") {
        std::cerr << "unknown --approach '" << approach << "'\n";
        return usage();
    }

    const auto obs_outputs = ObsOutputs::from_args(args);
    auto ft_setup = FtSetup::from_args(args, seed, obs_outputs.get());

    // SIGINT/SIGTERM abort the run between epochs as a simulated crash: no
    // terminal journal record is written, so the journal stays resumable.
    install_signal_handlers();
    SignalAbortObserver signal_observer(ft_setup.injector.get());

    // With a journal the backend is rebuilt per job from an id-derived seed
    // (ReseedingBackend), so `pipetune resume` can re-run the job bit-equal
    // to this attempt; without one a plain backend suffices.
    std::unique_ptr<workload::Backend> plain;
    std::unique_ptr<ft::ReseedingBackend> reseeding;
    workload::Backend* base = nullptr;
    std::uint64_t derived_seed = 0;
    if (ft_setup.journal) {
        reseeding = std::make_unique<ft::ReseedingBackend>(
            [&args, observer = &signal_observer](std::uint64_t job_seed) {
                return make_backend(args, job_seed, observer);
            },
            seed);
        // The serial service numbers jobs from 1; this run submits exactly one.
        derived_seed = ft::ReseedingBackend::job_seed(seed, 1);
        reseeding->begin_job(derived_seed);
        base = reseeding.get();
    } else {
        plain = make_backend(args, seed, &signal_observer);
        base = plain.get();
    }
    workload::Backend& active = ft_setup.wrap(*base, seed, obs_outputs.get());

    core::ServiceOptions service_options;
    service_options.state_dir = args.get_or("state-dir", "");
    service_options.pipetune.tune_frequency = args.get_flag("dvfs");
    if (args.get_or("objective", "duration") == "energy")
        service_options.pipetune.probe_objective = core::PipeTuneConfig::ProbeObjective::kEnergy;
    service_options.obs = obs_outputs.get();
    service_options.journal = ft_setup.journal.get();
    const auto service = sched::make_tuning_service(active, service_options);
    core::SubmitOptions submit_options;
    submit_options.backend_seed = derived_seed;
    core::PipeTuneJobResult result;
    try {
        result = service->run(workload, job, submit_options);
    } catch (const ft::SimulatedCrash& crash) {
        if (g_signal.load(std::memory_order_relaxed) == 0) throw;  // --crash-after path
        std::cout << "interrupted (" << crash.what() << ")\n";
        if (ft_setup.journal)
            std::cout << "journal " << ft_setup.journal->path()
                      << " left resumable; run `pipetune resume " << ft_setup.journal->path()
                      << "` to finish\n";
        obs_outputs.write();
        return 130;
    }
    print_result("PipeTune", result.baseline);
    if (args.get_flag("verbose")) {
        util::Table decisions({"trial", "similarity", "decision", "applied config"});
        for (const auto& decision : result.decisions)
            // Reserved high ids mark the post-search final-training run.
            decisions.add_row({decision.trial_id > (1ULL << 62) ? "final"
                                                                : std::to_string(decision.trial_id),
                               util::Table::num(decision.similarity_score, 3),
                               decision.hit ? "reuse" : "probe",
                               decision.applied_known ? decision.applied.to_string()
                                                      : "(probe incomplete)"});
        std::cout << "\nPer-trial decisions:\n" << decisions.render();
    }
    std::cout << "ground truth: " << result.ground_truth_hits << " hits, "
              << result.probes_started << " probes, store size " << result.ground_truth_size
              << "\n";
    if (!service->ground_truth_path().empty())
        std::cout << "state persisted under " << args.get_or("state-dir", "") << "\n";
    ft_setup.report();
    obs_outputs.write();
    return 0;
}

int cmd_compare(const util::Args& args) {
    if (args.positionals().empty()) return usage();
    const auto& workload = workload::find_workload(args.positionals()[0]);
    const auto seed = args.get_uint_or("seed", 1);
    auto backend = make_backend(args, seed);
    const auto comparison = core::compare_approaches(*backend, workload, job_config(args, seed));

    util::Table table({"approach", "accuracy [%]", "training [s]", "tuning [s]"});
    auto row = [&](const char* name, const hpt::BaselineResult& r, bool tuned) {
        table.add_row({name, util::Table::num(r.final_accuracy, 2),
                       util::Table::num(r.training_time_s, 0),
                       tuned ? util::Table::num(r.tuning.tuning_duration_s, 0) : "-"});
    };
    row("Arbitrary", comparison.arbitrary, false);
    row("Tune V1", comparison.tune_v1, true);
    row("Tune V2", comparison.tune_v2, true);
    row("PipeTune", comparison.pipetune.baseline, true);
    std::cout << table.render();
    return 0;
}

int cmd_warm_start(const util::Args& args) {
    const std::string state_dir = args.get_or("state-dir", "");
    if (state_dir.empty()) {
        std::cerr << "warm-start requires --state-dir\n";
        return usage();
    }
    const auto seed = args.get_uint_or("seed", 1);
    auto backend = make_backend(args, seed);
    core::WarmStartConfig config;
    config.seed = seed;
    const auto store = core::build_warm_ground_truth(*backend, workload::catalogue(), config);
    std::error_code ec;
    std::filesystem::create_directories(state_dir, ec);
    store.save(state_dir + "/ground_truth.json");
    std::cout << "recorded " << store.size() << " profiles into " << state_dir
              << "/ground_truth.json\n";
    return 0;
}

int cmd_replay(const util::Args& args) {
    const auto seed = args.get_uint_or("seed", 1);
    const auto obs_outputs = ObsOutputs::from_args(args);
    auto ft_setup = FtSetup::from_args(args, seed, obs_outputs.get());
    auto backend = make_backend(args, seed, ft_setup.injector.get());
    workload::Backend& active = ft_setup.wrap(*backend, seed, obs_outputs.get());

    std::vector<workload::Workload> mix;
    const std::string mix_name = args.get_or("mix", "all");
    if (mix_name == "all") mix = workload::catalogue();
    else if (mix_name == "type1") mix = workload::workloads_of_type(workload::WorkloadType::kType1);
    else if (mix_name == "type2") mix = workload::workloads_of_type(workload::WorkloadType::kType2);
    else if (mix_name == "type3") mix = workload::workloads_of_type(workload::WorkloadType::kType3);
    else {
        std::cerr << "unknown --mix '" << mix_name << "'\n";
        return usage();
    }

    cluster::ArrivalConfig arrivals;
    arrivals.job_count = static_cast<std::size_t>(args.get_uint_or("jobs", 12));
    arrivals.mean_interarrival_s = args.get_number_or("interarrival", 2000.0);
    arrivals.unseen_fraction = args.get_number_or("unseen", 0.2);
    arrivals.seed = seed;
    const auto jobs = cluster::generate_arrivals(mix, arrivals);

    core::ServiceOptions options;
    options.state_dir = args.get_or("state-dir", "");
    // The scheduler clamps 0 slots to 1 internally; mirror that here so the
    // trace summary sees the same node count.
    options.concurrency = std::max<std::size_t>(1, args.get_uint_or("workers", 4));
    options.queue_capacity = static_cast<std::size_t>(args.get_uint_or("queue-capacity", 64));
    options.obs = obs_outputs.get();
    options.journal = ft_setup.journal.get();
    // Injected faults are mostly absorbed by the epoch-level retry decorator;
    // give the scheduler a job-level retry budget for the ones that escape.
    if (ft_setup.injector) options.retry.max_retries = 3;
    // One interface for both shapes: --workers 1 gets the in-process serial
    // service, anything above gets the concurrent scheduler.
    const auto service = sched::make_tuning_service(active, options);
    const double compress = args.get_number_or("compress", 2e-5);

    struct Pending {
        core::TuningService::Submission submission;
        std::string name;
        bool unseen;
    };
    std::vector<Pending> pending;
    double prev_arrival_s = 0.0;
    std::uint64_t job_seed = seed;
    for (const auto& job : jobs) {
        const double gap_s = (job.arrival_s - prev_arrival_s) * compress;
        prev_arrival_s = job.arrival_s;
        if (gap_s > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(gap_s));
        auto submission =
            service->submit(job.workload, job_config(args, ++job_seed),
                            {.label = job.workload.name, .backend_seed = seed});
        if (!submission.has_value()) {
            std::cerr << "job " << job.index << " (" << job.workload.name << ") rejected\n";
            continue;
        }
        pending.push_back({std::move(*submission), job.workload.name, job.unseen});
    }

    std::size_t total_hits = 0;
    std::vector<std::pair<std::string, std::string>> outcomes;  // (hits, probes) per job
    for (auto& p : pending) {
        std::string hits = "-";
        std::string probes = "-";
        try {
            const auto result = p.submission.result.get();
            total_hits += result.ground_truth_hits;
            hits = std::to_string(result.ground_truth_hits);
            probes = std::to_string(result.probes_started);
        } catch (const std::exception&) {
            // state column already tells the story (cancelled / timed out)
        }
        outcomes.emplace_back(hits, probes);
    }
    service->drain();  // futures resolve inside the job fn; wait for terminal states

    std::map<std::uint64_t, core::JobTiming> timings;
    for (auto& timing : service->job_timings()) timings[timing.id] = std::move(timing);
    util::Table table({"job", "workload", "unseen", "state", "response [s]", "GT hits",
                       "probes"});
    for (std::size_t i = 0; i < pending.size(); ++i) {
        const auto& p = pending[i];
        const auto it = timings.find(p.submission.id);
        const bool timed = it != timings.end() && it->second.finish_s >= 0;
        const double response = timed ? it->second.finish_s - it->second.submit_s : 0.0;
        const std::string state = it == timings.end() ? "unknown"
                                  : it->second.ok      ? "completed"
                                                       : it->second.error;
        table.add_row({std::to_string(p.submission.id), p.name, p.unseen ? "yes" : "no",
                       state, util::Table::num(response, 3), outcomes[i].first,
                       outcomes[i].second});
    }
    std::cout << table.render();

    const auto stats = service->stats();
    util::Table summary({"metric", "value"});
    summary.add_row({"jobs completed", std::to_string(stats.completed)});
    summary.add_row({"jobs failed", std::to_string(stats.failed)});
    summary.add_row({"max queue depth", std::to_string(stats.max_queue_depth)});
    summary.add_row({"ground-truth hits (total)", std::to_string(total_hits)});
    summary.add_row({"store entries", std::to_string(service->ground_truth_snapshot().size())});
    summary.add_row(
        {"metric points", std::to_string(service->metrics_snapshot().total_points())});
    // The node-level trace summary needs the scheduler's per-slot trace; only
    // the concurrent implementation has one.
    if (const auto* concurrent =
            dynamic_cast<const sched::ConcurrentPipeTuneService*>(service.get())) {
        const auto trace = concurrent->trace();
        if (!trace.empty()) {
            const auto trace_stats = cluster::summarize_trace(trace, options.concurrency);
            summary.add_row({"p50 response [s]", util::Table::num(trace_stats.p50_response_s, 3)});
            summary.add_row({"p95 response [s]", util::Table::num(trace_stats.p95_response_s, 3)});
            summary.add_row({"makespan [s]", util::Table::num(trace_stats.makespan_s, 3)});
            summary.add_row({"utilization", util::Table::num(trace_stats.utilization, 2)});
        }
    }
    std::cout << summary.render();
    if (!options.state_dir.empty())
        std::cout << "state persisted under " << options.state_dir << "\n";
    ft_setup.report();
    obs_outputs.write();
    return 0;
}

int cmd_resume(const util::Args& args) {
    if (args.positionals().empty()) {
        std::cerr << "resume requires a journal path\n";
        return usage();
    }
    const std::string journal_path = args.positionals()[0];
    const auto analyzed = ft::Recovery::analyze(journal_path);
    if (!analyzed) {
        std::cerr << "error: unreadable journal '" << journal_path << "': " << analyzed.error()
                  << "\n";
        return 4;
    }
    const ft::RecoveryPlan& plan = analyzed.value();
    const auto pending = plan.pending_jobs();
    std::cout << "journal " << journal_path << ": " << plan.records_read << " records ("
              << plan.completed_count() << " jobs completed, " << plan.failed_count()
              << " failed, " << pending.size() << " pending)"
              << (plan.truncated_tail ? ", truncated tail dropped" : "") << "\n";
    // Consume the run options before the nothing-to-resume exit, or a clean
    // second resume would warn about "unrecognized" flags it simply never
    // needed.
    const std::string state_dir = args.get_or("state-dir", "");
    const auto obs_outputs = ObsOutputs::from_args(args);
    if (pending.empty()) {
        std::cout << "nothing to resume\n";
        return 3;
    }

    // Pending jobs re-run from scratch on a per-job reseeded backend: the
    // recorded backend_seed plus the job id reproduce the exact seed stream
    // the crashed attempt used, so the re-run regenerates precisely the
    // observations the crash threw away (see DESIGN.md §10).
    ft::ReseedingBackend backend(
        [&args](std::uint64_t job_seed) { return make_backend(args, job_seed); }, 1);
    ft::Journal journal(journal_path);  // resumed run extends the same journal
    core::ServiceOptions service_options;
    service_options.state_dir = state_dir;
    service_options.obs = obs_outputs.get();
    service_options.journal = &journal;
    // Number the re-runs after every id the journal already knows, so the
    // records this run appends never collide with the crashed run's.
    for (const ft::RecoveredJob& job : plan.jobs)
        service_options.first_job_id = std::max(service_options.first_job_id, job.job_id);
    core::PipeTuneService service(backend, service_options);

    std::vector<core::GroundTruthEntry> recovered;
    recovered.reserve(plan.ground_truth.size());
    for (const ft::RecoveredGtMutation& mutation : plan.ground_truth)
        recovered.push_back({mutation.features, mutation.best_system, mutation.metric});
    service.seed_ground_truth(recovered);

    util::Table table({"job", "workload", "state", "accuracy [%]", "GT hits", "probes"});
    std::size_t resumed = 0;
    for (const ft::RecoveredJob& job : pending) {
        if (job.workload.empty()) {
            std::cerr << "job " << job.job_id
                      << ": no job_submitted record in the journal, skipping\n";
            continue;
        }
        const auto& workload = workload::find_workload(job.workload);
        auto submit_options = core::submit_options_from_journal(job.submit);
        // Re-run under the original id: its journal completion record is what
        // marks the pending job terminal, making resume idempotent.
        submit_options.job_id = job.job_id;
        // backend_seed is the fully derived per-job seed the crashed attempt
        // used (or 0: derive a deterministic one from the job id).
        backend.begin_job(submit_options.backend_seed != 0
                              ? submit_options.backend_seed
                              : ft::ReseedingBackend::job_seed(1, job.job_id));
        try {
            const auto result = service.run(
                workload, core::job_config_from_journal(job.submit), submit_options);
            ++resumed;
            table.add_row({std::to_string(job.job_id), job.workload, "completed",
                           util::Table::num(result.baseline.final_accuracy, 2),
                           std::to_string(result.ground_truth_hits),
                           std::to_string(result.probes_started)});
        } catch (const std::exception& error) {
            table.add_row(
                {std::to_string(job.job_id), job.workload, error.what(), "-", "-", "-"});
        }
    }
    std::cout << table.render();
    std::cout << "resumed " << resumed << "/" << pending.size() << " pending jobs; store size "
              << service.ground_truth_snapshot().size() << "\n";
    if (!service.ground_truth_path().empty())
        std::cout << "state persisted under " << service_options.state_dir << "\n";
    obs_outputs.write();
    return 0;
}

int cmd_serve(const util::Args& args) {
    const auto seed = args.get_uint_or("seed", 1);

    // /metrics is part of the served surface, so serve always runs with a
    // live ObsContext (unlike the batch commands, which only build one when
    // an output flag asks for it).
    auto obs_outputs = ObsOutputs::from_args(args);
    if (!obs_outputs.context) {
        obs_outputs.context = std::make_unique<obs::ObsContext>();
        obs_outputs.context->mirror_logs();
    }
    obs::register_build_info(obs_outputs.context->metrics());

    auto ft_setup = FtSetup::from_args(args, seed, obs_outputs.get());
    auto backend = make_backend(args, seed, ft_setup.injector.get());
    workload::Backend& active = ft_setup.wrap(*backend, seed, obs_outputs.get());

    core::ServiceOptions service_options;
    service_options.state_dir = args.get_or("state-dir", "");
    service_options.concurrency = std::max<std::size_t>(1, args.get_uint_or("workers", 2));
    service_options.queue_capacity =
        static_cast<std::size_t>(args.get_uint_or("queue-capacity", 16));
    // Overload must surface as a 429 on the wire, not as a parked dispatch
    // thread: the server's bounded-queueing contract.
    service_options.reject_when_full = true;
    service_options.obs = obs_outputs.get();
    service_options.journal = ft_setup.journal.get();
    const auto service = sched::make_tuning_service(active, service_options);

    auto tenants = net::TenantRegistry::from_spec(
        args.get_or("tenants", ""),
        static_cast<std::size_t>(args.get_uint_or("anonymous-quota", 0)));
    if (!tenants) {
        std::cerr << "error: --tenants: " << tenants.error() << "\n";
        return 2;
    }

    net::ServerConfig server_config;
    server_config.bind_address = args.get_or("bind", "127.0.0.1");
    server_config.port = static_cast<std::uint16_t>(args.get_uint_or("port", 0));
    server_config.max_connections =
        static_cast<std::size_t>(args.get_uint_or("max-connections", 256));
    server_config.service = service.get();
    server_config.tenants = &tenants.value();
    server_config.obs = obs_outputs.get();
    server_config.default_job = job_config(args, seed);
    // Keep default served jobs small unless the operator says otherwise:
    // a daemon's default should answer in seconds, not minutes.
    if (!args.has("resource")) {
        server_config.default_job.hyperband_resource = 9;
        server_config.default_job.final_epochs = 9;
    }

    net::TuningServer server(server_config);
    auto started = server.start();
    if (!started) {
        std::cerr << "error: " << started.error() << "\n";
        return 1;
    }
    std::cout << "pipetune serve: listening on " << server_config.bind_address << ":"
              << server.port() << " (" << service_options.concurrency << " worker(s), queue "
              << service_options.queue_capacity << ", "
              << (tenants.value().open_mode()
                      ? "open mode"
                      : std::to_string(tenants.value().tenant_count()) + " tenant(s)")
              << ")\n"
              << "GET /metrics on the same port; SIGTERM drains gracefully\n";
    const std::string port_file = args.get_or("port-file", "");
    if (!port_file.empty())
        util::write_file_atomic(port_file, std::to_string(server.port()) + "\n");

    g_server.store(&server, std::memory_order_relaxed);
    install_signal_handlers();
    server.wait();
    g_server.store(nullptr, std::memory_order_relaxed);

    service->drain();
    const auto counters = server.counters();
    util::Table summary({"metric", "value"});
    summary.add_row({"connections", std::to_string(counters.connections)});
    summary.add_row({"requests", std::to_string(counters.requests)});
    summary.add_row({"jobs submitted", std::to_string(counters.jobs_submitted)});
    summary.add_row({"jobs completed", std::to_string(counters.jobs_completed)});
    summary.add_row({"rejects", std::to_string(counters.rejects)});
    summary.add_row({"bad frames", std::to_string(counters.bad_frames)});
    summary.add_row({"auth failures", std::to_string(counters.auth_failures)});
    std::cout << "server stopped\n" << summary.render();
    ft_setup.report();
    obs_outputs.write();
    return 0;
}

int cmd_loadgen(const util::Args& args) {
    net::LoadGenConfig config;
    config.host = args.get_or("host", "127.0.0.1");
    config.port = static_cast<std::uint16_t>(args.get_uint_or("port", 0));
    if (config.port == 0) {
        std::cerr << "loadgen requires --port\n";
        return usage();
    }
    config.tokens = split_csv(args.get_or("tokens", ""));
    const auto workloads = split_csv(args.get_or("workloads", ""));
    if (!workloads.empty()) config.workloads = workloads;
    config.total_requests = static_cast<std::size_t>(args.get_uint_or("requests", 32));
    config.seed = args.get_uint_or("seed", 1);
    config.request_timeout_s = args.get_number_or("timeout", 120.0);
    if (args.has("resource")) {
        config.submit_params["hyperband_resource"] = args.get_number_or("resource", 9);
        config.submit_params["final_epochs"] = args.get_number_or("resource", 9);
    }
    if (args.has("slots"))
        config.submit_params["parallel_slots"] = args.get_number_or("slots", 4);

    std::vector<double> rates;
    for (const auto& token : split_csv(args.get_or("sweep", "")))
        rates.push_back(std::stod(token));
    if (rates.empty()) rates.push_back(args.get_number_or("rate", 4.0));

    util::Table table({"offered [req/s]", "completed", "rejected", "errors", "goodput [/s]",
                       "p50 [s]", "p99 [s]", "p999 [s]"});
    util::Json points = util::Json::array();
    for (double rate : rates) {
        config.rate_per_s = rate;
        auto run = net::run_loadgen(config);
        if (!run) {
            std::cerr << "error: " << run.error() << "\n";
            return 1;
        }
        const net::LoadGenReport& report = run.value();
        table.add_row({util::Table::num(report.offered_rate_per_s, 2),
                       std::to_string(report.completed), std::to_string(report.rejected),
                       std::to_string(report.errors), util::Table::num(report.goodput_per_s, 2),
                       util::Table::num(report.latency_p50_s, 3),
                       util::Table::num(report.latency_p99_s, 3),
                       util::Table::num(report.latency_p999_s, 3)});
        points.push_back(report.to_json());
    }
    std::cout << table.render();

    const std::string out = args.get_or("out", "");
    if (!out.empty()) {
        util::Json doc = util::Json::object();
        doc["bench"] = "serve";
        doc["requests_per_point"] = config.total_requests;
        doc["seed"] = config.seed;
        doc["points"] = std::move(points);
        util::write_file_atomic(out, doc.dump(2) + "\n");
        std::cout << "report written to " << out << "\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const auto args = util::Args::parse(argc, argv);
        if (args.get_flag("version") || args.command() == "version") {
            std::cout << util::build_banner() << "\n";
            return 0;
        }
        int status;
        if (args.command() == "list-workloads") status = cmd_list_workloads();
        else if (args.command() == "tune") status = cmd_tune(args);
        else if (args.command() == "compare") status = cmd_compare(args);
        else if (args.command() == "warm-start") status = cmd_warm_start(args);
        else if (args.command() == "replay") status = cmd_replay(args);
        else if (args.command() == "resume") status = cmd_resume(args);
        else if (args.command() == "serve") status = cmd_serve(args);
        else if (args.command() == "loadgen") status = cmd_loadgen(args);
        else return usage();

        for (const auto& key : args.unused_keys())
            std::cerr << "warning: unrecognized option --" << key << "\n";
        return status;
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
}
